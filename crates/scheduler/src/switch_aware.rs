//! Reconfiguration-aware multi-pattern scheduling.
//!
//! On the Montium, changing the active pattern between cycles costs a
//! sequencer configuration load — the tile's energy model charges every
//! switch, and `mps-montium`'s replay counts them (`config_loads`). The
//! paper's Fig. 3 scheduler ignores this: it re-ranks patterns from scratch
//! each cycle, happily alternating between two patterns whose priorities
//! seesaw.
//!
//! [`schedule_switch_aware`] keeps the Fig. 3 loop but biases the per-cycle
//! pattern choice toward the pattern configured in the previous cycle:
//! the incumbent is kept whenever its priority is within `keep_factor` of
//! the best challenger. `keep_factor = 1.0` changes nothing except pure
//! ties (which already preferred the incumbent only by list order);
//! lowering it trades cycles for fewer reconfigurations — the
//! `mps-bench --bin reconfig` sweep quantifies the frontier.

use crate::error::ScheduleError;
use crate::multi_pattern::{selected_set, MultiPatternConfig, PatternPriority, TieBreak};
use crate::priority::NodePriorities;
use crate::schedule::{Schedule, ScheduledCycle};
use mps_dfg::{AnalyzedDfg, NodeId};
use mps_patterns::PatternSet;

/// Configuration of [`schedule_switch_aware`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SwitchAwareConfig {
    /// Base scheduler settings (pattern priority function, tie-break).
    pub base: MultiPatternConfig,
    /// Keep the previous cycle's pattern whenever
    /// `priority(incumbent) ≥ keep_factor · priority(best)`. Must be in
    /// `(0, 1]`: `1.0` keeps only on exact ties, `0.5` tolerates covering
    /// half the priority mass to save a reconfiguration.
    pub keep_factor: f64,
}

impl Default for SwitchAwareConfig {
    fn default() -> SwitchAwareConfig {
        SwitchAwareConfig {
            base: MultiPatternConfig::default(),
            keep_factor: 1.0,
        }
    }
}

/// Result of switch-aware scheduling.
#[derive(Clone, Debug)]
pub struct SwitchAwareResult {
    /// The schedule.
    pub schedule: Schedule,
    /// Number of pattern changes between consecutive cycles (the first
    /// cycle's configuration load is not counted — any schedule pays it).
    pub switches: usize,
}

/// Count pattern changes between consecutive cycles of any schedule.
pub fn count_switches(schedule: &Schedule) -> usize {
    schedule
        .cycles()
        .windows(2)
        .filter(|w| w[0].pattern != w[1].pattern)
        .count()
}

/// Fig. 3 scheduling with an incumbent-pattern bias (see module docs).
pub fn schedule_switch_aware(
    adfg: &AnalyzedDfg,
    patterns: &PatternSet,
    cfg: SwitchAwareConfig,
) -> Result<SwitchAwareResult, ScheduleError> {
    assert!(
        cfg.keep_factor > 0.0 && cfg.keep_factor <= 1.0,
        "keep_factor must be in (0, 1]"
    );
    let n = adfg.len();
    if n == 0 {
        return Ok(SwitchAwareResult {
            schedule: Schedule::default(),
            switches: 0,
        });
    }
    if patterns.is_empty() {
        return Err(ScheduleError::NoPatterns);
    }
    let provided = patterns.color_set();
    for id in adfg.dfg().node_ids() {
        let c = adfg.dfg().color(id);
        if !provided.contains(c) {
            return Err(ScheduleError::UncoveredColor(c));
        }
    }

    let prio = NodePriorities::compute(adfg);
    let sort_key = |id: NodeId| -> (u64, u64, u64) {
        match cfg.base.tie_break {
            TieBreak::AsapThenHigherId => (
                prio.f(id),
                u64::MAX - adfg.levels().asap(id) as u64,
                id.0 as u64,
            ),
            TieBreak::HigherId => (prio.f(id), 0, id.0 as u64),
            TieBreak::LowerId => (prio.f(id), 0, u64::MAX - id.0 as u64),
        }
    };

    let mut unscheduled_preds: Vec<u32> = adfg
        .dfg()
        .node_ids()
        .map(|v| adfg.dfg().preds(v).len() as u32)
        .collect();
    let mut candidates: Vec<NodeId> = adfg
        .dfg()
        .node_ids()
        .filter(|&v| unscheduled_preds[v.index()] == 0)
        .collect();

    let mut cycles: Vec<ScheduledCycle> = Vec::new();
    let mut remaining = n;
    let mut incumbent: Option<usize> = None;
    let mut switches = 0usize;

    while remaining > 0 {
        candidates.sort_by_key(|&x| std::cmp::Reverse(sort_key(x)));

        let mut best: Option<(u128, usize, Vec<NodeId>)> = None;
        let mut incumbent_choice: Option<(u128, Vec<NodeId>)> = None;
        for (pi, pat) in patterns.iter().enumerate() {
            let sel = selected_set(adfg, pat, &candidates);
            let value: u128 = match cfg.base.pattern_priority {
                PatternPriority::F1 => sel.len() as u128,
                PatternPriority::F2 => sel.iter().map(|&x| prio.f(x) as u128).sum(),
            };
            if Some(pi) == incumbent {
                incumbent_choice = Some((value, sel.clone()));
            }
            if best.as_ref().is_none_or(|(bv, _, _)| value > *bv) {
                best = Some((value, pi, sel));
            }
        }
        let (best_value, best_idx, best_nodes) = best.expect("at least one pattern");

        // Prefer the incumbent when it covers enough priority mass.
        let (chosen_idx, chosen_nodes) = match (incumbent, incumbent_choice) {
            (Some(pi), Some((iv, isel)))
                if !isel.is_empty() && iv as f64 >= cfg.keep_factor * best_value as f64 =>
            {
                (pi, isel)
            }
            _ => (best_idx, best_nodes),
        };
        debug_assert!(!chosen_nodes.is_empty(), "coverage was checked upfront");

        if incumbent.is_some_and(|pi| pi != chosen_idx) {
            switches += 1;
        }
        incumbent = Some(chosen_idx);

        let committed: std::collections::HashSet<NodeId> = chosen_nodes.iter().copied().collect();
        candidates.retain(|x| !committed.contains(x));
        for &u in &chosen_nodes {
            for &v in adfg.dfg().succs(u) {
                unscheduled_preds[v.index()] -= 1;
                if unscheduled_preds[v.index()] == 0 {
                    candidates.push(v);
                }
            }
        }
        remaining -= chosen_nodes.len();
        cycles.push(ScheduledCycle {
            pattern: *patterns.patterns().get(chosen_idx).expect("chosen pattern"),
            nodes: chosen_nodes,
        });
    }

    let schedule = Schedule::from_cycles(cycles);
    debug_assert_eq!(switches, count_switches(&schedule));
    Ok(SwitchAwareResult { schedule, switches })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi_pattern::schedule_multi_pattern;
    use mps_dfg::{Color, DfgBuilder};

    fn c(ch: char) -> Color {
        Color::from_char(ch).unwrap()
    }

    /// Alternating workload: layers of 'a' work and 'b' work that a
    /// switch-oblivious scheduler serves by ping-ponging patterns.
    fn ping_pong() -> AnalyzedDfg {
        let mut b = DfgBuilder::new();
        let mut prev: Vec<mps_dfg::NodeId> = Vec::new();
        for layer in 0..6 {
            let col = if layer % 2 == 0 { c('a') } else { c('b') };
            let n0 = b.add_node(format!("l{layer}x"), col);
            let n1 = b.add_node(format!("l{layer}y"), col);
            for &p in &prev {
                b.add_edge(p, n0).unwrap();
                b.add_edge(p, n1).unwrap();
            }
            prev = vec![n0, n1];
        }
        AnalyzedDfg::new(b.build().unwrap())
    }

    #[test]
    fn keep_factor_one_matches_greedy_cycles() {
        let adfg = ping_pong();
        let ps = PatternSet::parse("aab abb").unwrap();
        let aware = schedule_switch_aware(&adfg, &ps, SwitchAwareConfig::default()).unwrap();
        let greedy = schedule_multi_pattern(&adfg, &ps, MultiPatternConfig::default()).unwrap();
        // With keep_factor = 1.0 the incumbent only wins exact ties, which
        // cannot lengthen the schedule relative to "earliest pattern wins".
        assert_eq!(aware.schedule.len(), greedy.schedule.len());
        aware.schedule.validate(&adfg, Some(&ps)).unwrap();
    }

    #[test]
    fn low_keep_factor_reduces_switches() {
        let adfg = ping_pong();
        // Both patterns can execute either color, at different widths, so
        // the relaxed scheduler has real slack to exploit.
        let ps = PatternSet::parse("aabb ab").unwrap();
        let strict = schedule_switch_aware(
            &adfg,
            &ps,
            SwitchAwareConfig {
                keep_factor: 1.0,
                ..Default::default()
            },
        )
        .unwrap();
        let relaxed = schedule_switch_aware(
            &adfg,
            &ps,
            SwitchAwareConfig {
                keep_factor: 0.4,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            relaxed.switches <= strict.switches,
            "relaxed {} > strict {}",
            relaxed.switches,
            strict.switches
        );
        relaxed.schedule.validate(&adfg, Some(&ps)).unwrap();
    }

    #[test]
    fn switch_count_matches_helper() {
        let adfg = ping_pong();
        let ps = PatternSet::parse("aa bb").unwrap();
        let r = schedule_switch_aware(&adfg, &ps, SwitchAwareConfig::default()).unwrap();
        assert_eq!(r.switches, count_switches(&r.schedule));
        // Alternating layers with disjoint single-color patterns must
        // switch every layer boundary.
        assert!(r.switches >= 5);
    }

    #[test]
    fn incumbent_must_make_progress() {
        // After 'a' work dries up, an incumbent "aaaa" selects nothing and
        // must be abandoned even at tiny keep factors.
        let mut b = DfgBuilder::new();
        b.add_node("a0", c('a'));
        let b0 = b.add_node("b0", c('b'));
        let b1 = b.add_node("b1", c('b'));
        b.add_edge(b0, b1).unwrap();
        let adfg = AnalyzedDfg::new(b.build().unwrap());
        let ps = PatternSet::parse("aaaa b").unwrap();
        let r = schedule_switch_aware(
            &adfg,
            &ps,
            SwitchAwareConfig {
                keep_factor: 0.01,
                ..Default::default()
            },
        )
        .unwrap();
        r.schedule.validate(&adfg, Some(&ps)).unwrap();
        assert_eq!(r.schedule.scheduled_nodes(), 3);
    }

    #[test]
    fn errors_and_empty_graph() {
        let adfg = ping_pong();
        assert!(matches!(
            schedule_switch_aware(&adfg, &PatternSet::new(), SwitchAwareConfig::default()),
            Err(ScheduleError::NoPatterns)
        ));
        let empty = AnalyzedDfg::new(DfgBuilder::new().build().unwrap());
        let r = schedule_switch_aware(&empty, &PatternSet::new(), SwitchAwareConfig::default())
            .unwrap();
        assert!(r.schedule.is_empty());
        assert_eq!(r.switches, 0);
    }

    #[test]
    #[should_panic(expected = "keep_factor")]
    fn rejects_bad_keep_factor() {
        let adfg = ping_pong();
        let ps = PatternSet::parse("ab").unwrap();
        let _ = schedule_switch_aware(
            &adfg,
            &ps,
            SwitchAwareConfig {
                keep_factor: 0.0,
                ..Default::default()
            },
        );
    }
}
