//! Modulo scheduling (software pipelining) under pattern constraints.
//!
//! The paper schedules one kernel invocation for minimal *latency*. When
//! the kernel runs in a loop — every DSP workload the Montium targets does
//! — the figure of merit is *throughput*: the **initiation interval** `II`,
//! the number of cycles between consecutive iterations entering the
//! pipeline. A modulo schedule lets iteration `k+1` start while iteration
//! `k` is still in flight, so at steady state the tile executes, in cycle
//! slot `r`, the union of every node scheduled at a cycle `≡ r (mod II)` —
//! and under the Montium's restriction that union bag must fit **one
//! pattern**, because the sequencer configures exactly one pattern per
//! cycle.
//!
//! [`schedule_modulo`] extends the paper's Fig. 3 list scheduler with a
//! modulo reservation table: slot `r` carries the pattern chosen the first
//! time the scheduler commits work to `r`, and later cycles mapping to `r`
//! may only issue nodes into that pattern's *remaining* slots. Infeasible
//! `II`s fail and the driver retries with `II + 1`, mirroring classic
//! iterative modulo scheduling (Rau, MICRO'94) with patterns in place of a
//! plain resource table.

use crate::error::ScheduleError;
use crate::priority::NodePriorities;
use crate::schedule::{Schedule, ScheduledCycle};
use mps_dfg::{AnalyzedDfg, Color, NodeId};
use mps_patterns::{Pattern, PatternSet};

/// Configuration of [`schedule_modulo`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModuloConfig {
    /// Hard cap on the initiation interval tried. Defaults to 64 — far
    /// beyond anything useful on a 5-ALU tile.
    pub max_ii: usize,
    /// Cap on the schedule depth per attempt, as a multiple of the node
    /// count (safety valve against pathological pattern sets).
    pub depth_factor: usize,
}

impl Default for ModuloConfig {
    fn default() -> ModuloConfig {
        ModuloConfig {
            max_ii: 64,
            depth_factor: 4,
        }
    }
}

/// A modulo schedule of one loop iteration.
#[derive(Clone, Debug)]
pub struct ModuloResult {
    /// Achieved initiation interval: a new iteration starts every `ii`
    /// cycles at steady state.
    pub ii: usize,
    /// The flat single-iteration schedule (latency = `schedule.len()`).
    pub schedule: Schedule,
    /// Pattern configured in each of the `ii` steady-state slots. Slot
    /// `r` hosts every cycle `t` of the flat schedule with `t ≡ r`.
    pub slot_patterns: Vec<Pattern>,
    /// The throughput-bound lower limit on `II` that was computed before
    /// searching (`ii == mii` means the result is provably optimal).
    pub mii: usize,
}

impl ModuloResult {
    /// `true` when the achieved `II` matches the resource lower bound.
    pub fn is_optimal(&self) -> bool {
        self.ii == self.mii
    }

    /// Steady-state color bag of one slot: every node of every cycle of
    /// the flat schedule that maps onto slot `r`.
    pub fn slot_bag(&self, adfg: &AnalyzedDfg, r: usize) -> Pattern {
        modulo_slot_bag(adfg, &self.schedule, self.ii, r)
    }
}

/// Steady-state color bag of modulo slot `r` of any flat schedule pipelined
/// at interval `ii`: the union of every cycle `t ≡ r (mod ii)`. The one
/// definition behind [`ModuloResult::slot_bag`] and the callers (e.g. the
/// CLI's reservation-table printout) that hold a flat [`Schedule`] + `ii`
/// instead of a [`ModuloResult`].
pub fn modulo_slot_bag(adfg: &AnalyzedDfg, schedule: &Schedule, ii: usize, r: usize) -> Pattern {
    Pattern::from_colors(
        schedule
            .cycles()
            .iter()
            .enumerate()
            .filter(|(t, _)| t % ii == r)
            .flat_map(|(_, cyc)| cyc.nodes.iter().map(|&n| adfg.dfg().color(n))),
    )
}

/// Resource lower bound on the initiation interval: color `c` occurs
/// `N_c` times and no pattern offers more than `m_c` slots of `c`, so at
/// least `⌈N_c / m_c⌉` slot-cycles are needed. (A DAG kernel has no
/// loop-carried recurrence, so the recurrence bound is 1.)
pub fn modulo_mii(adfg: &AnalyzedDfg, patterns: &PatternSet) -> usize {
    let hist = adfg.dfg().color_histogram();
    let mut mii = 1usize;
    for (ci, &count) in hist.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let best = patterns
            .iter()
            .map(|p| p.count_of(Color(ci as u8)))
            .max()
            .unwrap_or(0);
        if best == 0 {
            return usize::MAX; // uncovered color: no II works
        }
        mii = mii.max(count.div_ceil(best));
    }
    mii
}

/// Steady-state capacity check: after (hypothetically) locking `slot` to
/// pattern `locked`, can the remaining capacity of all slots still hold
/// every unscheduled node? Free slots count as the best any pattern
/// offers per color; locked slots count their pattern minus what earlier
/// cycles consumed. Pruning locks that fail this keeps the greedy from
/// wedging on scarce colors (e.g. a 7-add chain at II = 7 must keep an
/// 'a' slot in *every* residue class).
#[allow(clippy::too_many_arguments)]
fn lock_is_feasible(
    patterns: &PatternSet,
    slot_pattern: &[Option<usize>],
    consumed: &[[u8; 256]],
    unscheduled: &[u32; 256],
    slot: usize,
    candidate_pattern: usize,
    best_per_color: &[u32; 256],
) -> bool {
    for ci in 0..256usize {
        if unscheduled[ci] == 0 {
            continue;
        }
        let mut cap = 0u32;
        for (r, sp) in slot_pattern.iter().enumerate() {
            let effective = if r == slot {
                Some(candidate_pattern)
            } else {
                *sp
            };
            cap += match effective {
                Some(pi) => {
                    let have = patterns.patterns()[pi].count_of(mps_dfg::Color(ci as u8)) as u32;
                    have.saturating_sub(consumed[r][ci] as u32)
                }
                None => best_per_color[ci],
            };
        }
        if cap < unscheduled[ci] {
            return false;
        }
    }
    true
}

/// Attempt one `II`; `None` when the greedy placement wedges.
fn try_ii(
    adfg: &AnalyzedDfg,
    patterns: &PatternSet,
    ii: usize,
    cfg: ModuloConfig,
    prio: &NodePriorities,
) -> Option<(Schedule, Vec<Pattern>)> {
    let n = adfg.len();
    // Reservation table: the pattern locked to each slot (None = free),
    // and the capacity already consumed per color in that slot.
    let mut slot_pattern: Vec<Option<usize>> = vec![None; ii];
    let mut consumed: Vec<[u8; 256]> = vec![[0u8; 256]; ii];
    // Per-color bookkeeping for the feasibility guard.
    let mut unscheduled = [0u32; 256];
    for v in adfg.dfg().node_ids() {
        unscheduled[adfg.dfg().color(v).index()] += 1;
    }
    let mut best_per_color = [0u32; 256];
    for p in patterns.iter() {
        for (c, count) in p.color_counts() {
            best_per_color[c.index()] = best_per_color[c.index()].max(count as u32);
        }
    }

    let mut unscheduled_preds: Vec<u32> = adfg
        .dfg()
        .node_ids()
        .map(|v| adfg.dfg().preds(v).len() as u32)
        .collect();
    let mut candidates: Vec<NodeId> = adfg
        .dfg()
        .node_ids()
        .filter(|&v| unscheduled_preds[v.index()] == 0)
        .collect();

    let mut cycles: Vec<ScheduledCycle> = Vec::new();
    let mut remaining = n;
    let max_depth = cfg.depth_factor.max(1) * n.max(1);

    while remaining > 0 {
        let t = cycles.len();
        if t >= max_depth {
            return None; // wedged: some candidate never fits its slot
        }
        let r = t % ii;
        candidates.sort_by_key(|&x| std::cmp::Reverse((prio.f(x), x.0 as u64)));

        // Decide / reuse the slot's pattern, then fill remaining capacity.
        let (pat_idx, sel) = match slot_pattern[r] {
            Some(pi) => {
                let pat = &patterns.patterns()[pi];
                (pi, fill(adfg, pat, &consumed[r], &candidates))
            }
            None => {
                // Free slot: pick the pattern with the best F2 mass over
                // the current candidates (ties: earliest pattern), but
                // never lock in a pattern that makes some color's
                // steady-state demand unsatisfiable.
                let mut best: Option<(u128, usize, Vec<NodeId>)> = None;
                for (pi, pat) in patterns.iter().enumerate() {
                    if !lock_is_feasible(
                        patterns,
                        &slot_pattern,
                        &consumed,
                        &unscheduled,
                        r,
                        pi,
                        &best_per_color,
                    ) {
                        continue;
                    }
                    let sel = fill(adfg, pat, &consumed[r], &candidates);
                    let mass: u128 = sel.iter().map(|&x| prio.f(x) as u128).sum();
                    if best.as_ref().is_none_or(|(bv, _, _)| mass > *bv) {
                        best = Some((mass, pi, sel));
                    }
                }
                let Some((_, pi, sel)) = best else {
                    return None; // every lock is infeasible: II too small
                };
                (pi, sel)
            }
        };

        // Commit the cycle (possibly empty: the slot's locked pattern may
        // not serve any current candidate — iterate to the next cycle).
        if !sel.is_empty() {
            slot_pattern[r] = Some(pat_idx);
            for &u in &sel {
                let ci = adfg.dfg().color(u).index();
                consumed[r][ci] += 1;
                unscheduled[ci] -= 1;
                for &v in adfg.dfg().succs(u) {
                    unscheduled_preds[v.index()] -= 1;
                    if unscheduled_preds[v.index()] == 0 {
                        candidates.push(v);
                    }
                }
            }
            let committed: std::collections::HashSet<NodeId> = sel.iter().copied().collect();
            candidates.retain(|x| !committed.contains(x));
            remaining -= sel.len();
        }
        cycles.push(ScheduledCycle {
            pattern: patterns.patterns()[pat_idx],
            nodes: sel,
        });
    }

    // Trim trailing empty cycles (they carry no work and no constraint).
    while cycles.last().is_some_and(|c| c.nodes.is_empty()) {
        cycles.pop();
    }
    let slots: Vec<Pattern> = (0..ii)
        .map(|r| match slot_pattern[r] {
            Some(pi) => patterns.patterns()[pi],
            None => Pattern::empty(),
        })
        .collect();
    Some((Schedule::from_cycles(cycles), slots))
}

/// Nodes from the priority-sorted candidate list that fit the pattern's
/// capacity *minus what earlier cycles of the same slot already consumed*.
fn fill(
    adfg: &AnalyzedDfg,
    pattern: &Pattern,
    consumed: &[u8; 256],
    sorted_cl: &[NodeId],
) -> Vec<NodeId> {
    let mut cap = [0u8; 256];
    for &c in pattern.colors() {
        cap[c.index()] += 1;
    }
    for (cap_c, &used) in cap.iter_mut().zip(consumed.iter()) {
        *cap_c = cap_c.saturating_sub(used);
    }
    let mut out = Vec::new();
    for &n in sorted_cl {
        let ci = adfg.dfg().color(n).index();
        if cap[ci] > 0 {
            cap[ci] -= 1;
            out.push(n);
        }
    }
    out
}

/// Find the smallest feasible initiation interval and its modulo schedule.
///
/// Errors like the flat scheduler on empty/uncovering pattern sets;
/// returns the first `II ≤ cfg.max_ii` the greedy placement manages
/// (retrying upward from the resource bound [`modulo_mii`]).
pub fn schedule_modulo(
    adfg: &AnalyzedDfg,
    patterns: &PatternSet,
    cfg: ModuloConfig,
) -> Result<ModuloResult, ScheduleError> {
    let n = adfg.len();
    if patterns.is_empty() {
        return Err(ScheduleError::NoPatterns);
    }
    let provided = patterns.color_set();
    for id in adfg.dfg().node_ids() {
        let c = adfg.dfg().color(id);
        if !provided.contains(c) {
            return Err(ScheduleError::UncoveredColor(c));
        }
    }
    if n == 0 {
        return Ok(ModuloResult {
            ii: 1,
            schedule: Schedule::default(),
            slot_patterns: vec![Pattern::empty()],
            mii: 1,
        });
    }

    let prio = NodePriorities::compute(adfg);
    let mii = modulo_mii(adfg, patterns);
    debug_assert_ne!(mii, usize::MAX, "coverage was checked above");
    for ii in mii..=cfg.max_ii.max(mii) {
        if let Some((schedule, slot_patterns)) = try_ii(adfg, patterns, ii, cfg, &prio) {
            let result = ModuloResult {
                ii,
                schedule,
                slot_patterns,
                mii,
            };
            debug_assert!(validate_modulo(adfg, &result).is_ok());
            return Ok(result);
        }
    }
    // Guaranteed fallback: a flat schedule *is* a modulo schedule with
    // II = its length (every slot hosts exactly one cycle, so every slot
    // bag trivially fits its cycle's pattern). The retry loop normally
    // reaches a feasible II long before this, but pathological pattern
    // sets that wedge the greedy at every II ≤ max_ii still get a
    // correct, if unpipelined, answer.
    let flat = crate::multi_pattern::schedule_multi_pattern(
        adfg,
        patterns,
        crate::multi_pattern::MultiPatternConfig::default(),
    )?
    .schedule;
    let slot_patterns: Vec<Pattern> = flat.cycles().iter().map(|c| c.pattern).collect();
    let result = ModuloResult {
        ii: flat.len(),
        schedule: flat,
        slot_patterns,
        mii,
    };
    debug_assert!(validate_modulo(adfg, &result).is_ok());
    Ok(result)
}

/// Validate a modulo schedule: flat-schedule correctness (dependencies,
/// one placement per node) plus the steady-state constraint that every
/// slot's union color bag fits the slot's single pattern.
pub fn validate_modulo(adfg: &AnalyzedDfg, result: &ModuloResult) -> Result<(), ScheduleError> {
    // Flat correctness (pattern membership is checked per slot instead).
    result.schedule.validate(adfg, None)?;
    for r in 0..result.ii {
        let bag = result.slot_bag(adfg, r);
        let slot = &result.slot_patterns[r];
        if !bag.is_subpattern_of(slot) {
            return Err(ScheduleError::PatternOverflow { cycle: r });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dfg::DfgBuilder;

    fn c(ch: char) -> Color {
        Color::from_char(ch).unwrap()
    }

    fn chain(len: usize) -> AnalyzedDfg {
        let mut b = DfgBuilder::new();
        let ids: Vec<_> = (0..len)
            .map(|i| b.add_node(format!("n{i}"), c('a')))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        AnalyzedDfg::new(b.build().unwrap())
    }

    #[test]
    fn chain_pipelines_to_ii_matching_capacity() {
        // 6-deep 'a' chain. With an "aa" pattern, steady state packs two
        // chain stages (from different iterations) per cycle: II = 3.
        let adfg = chain(6);
        let ps = PatternSet::parse("aa").unwrap();
        let r = schedule_modulo(&adfg, &ps, ModuloConfig::default()).unwrap();
        assert_eq!(r.mii, 3);
        assert_eq!(r.ii, 3, "6 'a' nodes / 2 slots per cycle");
        assert!(r.is_optimal());
        validate_modulo(&adfg, &r).unwrap();
        // Latency stays 6 (the chain cannot be shortened)…
        assert_eq!(r.schedule.len(), 6);
        // …but throughput triples relative to latency-only execution.
        assert!(r.ii < r.schedule.len());
    }

    #[test]
    fn ii_one_needs_a_pattern_holding_everything() {
        let adfg = chain(4);
        let wide = PatternSet::parse("aaaa").unwrap();
        let r = schedule_modulo(&adfg, &wide, ModuloConfig::default()).unwrap();
        assert_eq!(r.ii, 1, "one pattern holds all four stages");
        validate_modulo(&adfg, &r).unwrap();
        let bag = r.slot_bag(&adfg, 0);
        assert_eq!(bag.size(), 4);
    }

    #[test]
    fn mii_accounts_for_scarcest_color() {
        let mut b = DfgBuilder::new();
        for i in 0..6 {
            b.add_node(format!("c{i}"), c('c'));
        }
        b.add_node("a0", c('a'));
        let adfg = AnalyzedDfg::new(b.build().unwrap());
        // Patterns offer at most 2 'c' slots → MII = ⌈6/2⌉ = 3.
        let ps = PatternSet::parse("acc").unwrap();
        assert_eq!(modulo_mii(&adfg, &ps), 3);
        let r = schedule_modulo(&adfg, &ps, ModuloConfig::default()).unwrap();
        assert_eq!(r.ii, 3);
        validate_modulo(&adfg, &r).unwrap();
    }

    #[test]
    fn uncovered_color_is_an_error() {
        let adfg = chain(3);
        let ps = PatternSet::parse("b").unwrap();
        assert!(matches!(
            schedule_modulo(&adfg, &ps, ModuloConfig::default()),
            Err(ScheduleError::UncoveredColor(_))
        ));
        assert_eq!(modulo_mii(&adfg, &ps), usize::MAX);
    }

    #[test]
    fn empty_inputs() {
        let empty = AnalyzedDfg::new(DfgBuilder::new().build().unwrap());
        let ps = PatternSet::parse("a").unwrap();
        let r = schedule_modulo(&empty, &ps, ModuloConfig::default()).unwrap();
        assert_eq!(r.ii, 1);
        assert!(r.schedule.is_empty());
        assert!(matches!(
            schedule_modulo(&empty, &PatternSet::new(), ModuloConfig::default()),
            Err(ScheduleError::NoPatterns)
        ));
    }

    #[test]
    fn modulo_ii_never_exceeds_flat_latency() {
        // A flat schedule is trivially a modulo schedule with II = length,
        // so the search must always do at least as well.
        let adfg = chain(5);
        for pats in ["a", "aa", "aaa"] {
            let ps = PatternSet::parse(pats).unwrap();
            let flat = crate::multi_pattern::schedule_multi_pattern(
                &adfg,
                &ps,
                crate::multi_pattern::MultiPatternConfig::default(),
            )
            .unwrap()
            .schedule;
            let r = schedule_modulo(&adfg, &ps, ModuloConfig::default()).unwrap();
            assert!(
                r.ii <= flat.len(),
                "{pats}: II {} > flat latency {}",
                r.ii,
                flat.len()
            );
            validate_modulo(&adfg, &r).unwrap();
        }
    }

    #[test]
    fn two_color_kernel_interleaves_slots() {
        // Layered a→b kernel: slots must alternate colors or use mixed
        // patterns; either way the steady state validates.
        let mut b = DfgBuilder::new();
        let mut prev: Option<NodeId> = None;
        for i in 0..4 {
            let x = b.add_node(format!("a{i}"), c('a'));
            let y = b.add_node(format!("b{i}"), c('b'));
            b.add_edge(x, y).unwrap();
            if let Some(p) = prev {
                b.add_edge(p, x).unwrap();
            }
            prev = Some(y);
        }
        let adfg = AnalyzedDfg::new(b.build().unwrap());
        let ps = PatternSet::parse("ab aabb").unwrap();
        let r = schedule_modulo(&adfg, &ps, ModuloConfig::default()).unwrap();
        validate_modulo(&adfg, &r).unwrap();
        assert!(r.ii >= r.mii);
        assert_eq!(r.schedule.scheduled_nodes(), 8);
    }

    #[test]
    fn exhausted_search_falls_back_to_flat() {
        // a→b→a→b chain with single-color patterns: II = 1 is infeasible
        // (one slot cannot hold both colors), and max_ii = 1 forbids the
        // feasible II = 2, so the flat fallback must fire.
        let mut b = DfgBuilder::new();
        let n0 = b.add_node("a0", c('a'));
        let n1 = b.add_node("b0", c('b'));
        let n2 = b.add_node("a1", c('a'));
        let n3 = b.add_node("b1", c('b'));
        b.add_edge(n0, n1).unwrap();
        b.add_edge(n1, n2).unwrap();
        b.add_edge(n2, n3).unwrap();
        let adfg = AnalyzedDfg::new(b.build().unwrap());
        let ps = PatternSet::parse("aa bb").unwrap();
        let r = schedule_modulo(
            &adfg,
            &ps,
            ModuloConfig {
                max_ii: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.ii, r.schedule.len(), "fallback is the flat schedule");
        assert_eq!(r.ii, 4);
        validate_modulo(&adfg, &r).unwrap();
        // Without the cap the search finds the real II.
        let free = schedule_modulo(&adfg, &ps, ModuloConfig::default()).unwrap();
        assert_eq!(free.ii, 2);
    }

    #[test]
    fn slot_bag_reports_steady_state_union() {
        let adfg = chain(4);
        let ps = PatternSet::parse("aa").unwrap();
        let r = schedule_modulo(&adfg, &ps, ModuloConfig::default()).unwrap();
        let total: usize = (0..r.ii).map(|s| r.slot_bag(&adfg, s).size()).sum();
        assert_eq!(total, 4, "every node lands in exactly one slot bag");
    }
}
