//! The DFG partitioning stage: cut a graph into per-tile node sets.
//!
//! The heuristic is **topological contiguity**: nodes are laid out in
//! the graph's (deterministic) topological order and each tile receives
//! one contiguous slice — so every edge flows from a tile to itself or a
//! *later* tile, the quotient graph is acyclic by construction, and
//! tiles can be scheduled in fabric order with all producer cycles
//! known. Boundary placement is a two-step heuristic:
//!
//! 1. **Balance**: initial boundaries split the order proportionally to
//!    each tile's share of the fabric's ALUs (a 5-ALU tile gets ~5/8 of
//!    the nodes next to a 3-ALU tile).
//! 2. **Min-cut refinement**: each boundary slides inside a bounded
//!    window around its initial position to the split point crossed by
//!    the fewest edges (ties: the smallest position), left to right.
//!
//! [`partition`] counts boundary crossings for *all* candidate positions
//! at once with a difference array over the edge intervals — O(V + E)
//! total; [`partition_reference`] rescans every edge per candidate
//! position — O(E) per candidate. Both are deterministic and
//! **decision-identical** (property-tested in the fabric suites).

use crate::params::FabricParams;
use mps_dfg::{Dfg, NodeId};
use serde::{Deserialize, Serialize};

/// A tile assignment for every node, plus the severed edges.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// Tile index per node (indexed by `NodeId::index`). Edges only ever
    /// flow toward equal-or-higher tiles.
    pub tile_of: Vec<usize>,
    /// The cut edges `(producer, consumer)`, in the graph's canonical
    /// edge order; each needs one inter-tile transfer.
    pub cuts: Vec<(NodeId, NodeId)>,
}

impl Partition {
    /// Nodes assigned to `tile`, in insertion (id) order.
    pub fn members(&self, tile: usize) -> Vec<NodeId> {
        self.tile_of
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t == tile)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Check the partition against its graph and fabric: every node
    /// mapped to a real tile, every edge tile-monotone, and `cuts`
    /// exactly the tile-crossing edges in canonical order.
    pub fn validate(&self, dfg: &Dfg, params: &FabricParams) -> Result<(), String> {
        if self.tile_of.len() != dfg.len() {
            return Err(format!(
                "tile_of covers {} nodes, graph has {}",
                self.tile_of.len(),
                dfg.len()
            ));
        }
        if let Some(&t) = self.tile_of.iter().find(|&&t| t >= params.tiles.len()) {
            return Err(format!(
                "node assigned to tile {t}, fabric has {}",
                params.tiles.len()
            ));
        }
        let mut expected_cuts = Vec::new();
        for (u, v) in dfg.edges() {
            let (tu, tv) = (self.tile_of[u.index()], self.tile_of[v.index()]);
            if tu > tv {
                return Err(format!(
                    "edge {u:?} -> {v:?} flows backward (tile {tu} -> {tv})"
                ));
            }
            if tu != tv {
                expected_cuts.push((u, v));
            }
        }
        if self.cuts != expected_cuts {
            return Err("cuts differ from the tile-crossing edges".to_string());
        }
        Ok(())
    }
}

/// Partition `dfg` across the fabric's tiles (the engine: difference
/// array over edge intervals, one pass). See the module docs for the
/// heuristic; `params` must hold at least one tile.
pub fn partition(dfg: &Dfg, params: &FabricParams) -> Partition {
    let pos = positions(dfg);
    // crossings[p] = number of edges (u, v) with pos[u] < p <= pos[v]:
    // each edge contributes 1 to every p in [pos[u]+1, pos[v]], which a
    // difference array accumulates in O(1) per edge.
    let mut diff = vec![0i64; dfg.len() + 2];
    for (u, v) in dfg.edges() {
        diff[pos[u.index()] + 1] += 1;
        diff[pos[v.index()] + 1] -= 1;
    }
    let mut crossings = vec![0i64; dfg.len() + 1];
    let mut acc = 0i64;
    for (p, slot) in crossings.iter_mut().enumerate() {
        acc += diff[p];
        *slot = acc;
    }
    from_boundaries(dfg, params, |p| crossings[p] as usize)
}

/// The partitioning oracle: same balance + refinement walk, but each
/// candidate boundary rescans every edge. Decision-identical to
/// [`partition`]; kept as the reference for the property tests.
pub fn partition_reference(dfg: &Dfg, params: &FabricParams) -> Partition {
    let pos = positions(dfg);
    let crossing = |p: usize| -> usize {
        dfg.edges()
            .filter(|&(u, v)| pos[u.index()] < p && p <= pos[v.index()])
            .count()
    };
    from_boundaries(dfg, params, crossing)
}

/// Topological position of every node (indexed by `NodeId::index`).
fn positions(dfg: &Dfg) -> Vec<usize> {
    let mut pos = vec![0usize; dfg.len()];
    for (i, &id) in dfg.topo_order().iter().enumerate() {
        pos[id.index()] = i;
    }
    pos
}

/// Shared boundary placement + assignment, parameterized over the
/// crossing counter (the only part the engine and the reference differ
/// in — and only in *how* they compute it, never in the value).
fn from_boundaries(
    dfg: &Dfg,
    params: &FabricParams,
    crossing: impl Fn(usize) -> usize,
) -> Partition {
    let n = dfg.len();
    let t_count = params.tiles.len().max(1);
    let total_alus = params.total_alus().max(1);

    // Initial boundaries: cumulative-ALU-proportional split points.
    // b[t]..b[t+1] is tile t's slice of the topological order.
    let mut cum = 0usize;
    let mut b: Vec<usize> = Vec::with_capacity(t_count + 1);
    b.push(0);
    for tile in &params.tiles {
        cum += tile.alus;
        b.push(n * cum / total_alus);
    }
    b[t_count] = n;

    // Refinement: slide each internal boundary within a window around
    // its initial position to the least-crossed split point; ties go to
    // the smallest position. Left to right, clamped to keep boundaries
    // monotone (and tiles non-empty wherever the initial split managed
    // to be).
    let window = (n / (4 * t_count)).max(1);
    for t in 1..t_count {
        let lo = (b[t - 1] + 1).max(b[t].saturating_sub(window));
        let hi = (b[t] + window).min(b[t + 1].saturating_sub(1));
        if lo > hi {
            continue;
        }
        let best = (lo..=hi)
            .min_by_key(|&p| (crossing(p), p))
            .expect("non-empty window");
        b[t] = best;
    }

    let topo = dfg.topo_order();
    let mut tile_of = vec![0usize; n];
    for t in 0..t_count {
        for i in b[t]..b[t + 1] {
            tile_of[topo[i].index()] = t;
        }
    }
    let cuts = dfg
        .edges()
        .filter(|&(u, v)| tile_of[u.index()] != tile_of[v.index()])
        .collect();
    Partition { tile_of, cuts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dfg::{Color, DfgBuilder};
    use mps_montium::TileParams;

    fn chain(n: usize) -> Dfg {
        let mut b = DfgBuilder::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| b.add_node(format!("n{i}"), Color(0)))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn single_tile_partition_is_trivial() {
        let g = chain(7);
        let p = partition(&g, &FabricParams::default());
        assert_eq!(p.tile_of, vec![0; 7]);
        assert!(p.cuts.is_empty());
        p.validate(&g, &FabricParams::default()).unwrap();
    }

    #[test]
    fn chain_splits_contiguously_with_one_cut_per_boundary() {
        let g = chain(8);
        let params = FabricParams::uniform(2, TileParams::default());
        let p = partition(&g, &params);
        p.validate(&g, &params).unwrap();
        assert_eq!(p.cuts.len(), 1, "a chain crosses each boundary once");
        assert_eq!(p.members(0).len() + p.members(1).len(), 8);
    }

    #[test]
    fn heterogeneous_tiles_split_proportionally() {
        // 6 ALUs vs 2 ALUs over 8 independent nodes: the initial split
        // lands at 6; with no edges the refinement window cannot move it
        // by more than `window`.
        let mut b = DfgBuilder::new();
        for i in 0..8 {
            b.add_node(format!("n{i}"), Color(0));
        }
        let g = b.build().unwrap();
        let params = FabricParams::parse("6,32+2,32").unwrap();
        let p = partition(&g, &params);
        p.validate(&g, &params).unwrap();
        let big = p.members(0).len();
        assert!(big >= 5, "6-of-8-ALUs tile got {big} of 8 nodes");
    }

    #[test]
    fn refinement_prefers_the_narrow_waist() {
        // A 3-fan collapsing into `m1 -> m2` then fanning back out: the
        // only 1-edge waist is the bridge edge between the two middles.
        let mut b = DfgBuilder::new();
        let a: Vec<NodeId> = (0..3)
            .map(|i| b.add_node(format!("a{i}"), Color(0)))
            .collect();
        let m1 = b.add_node("m1", Color(0));
        let m2 = b.add_node("m2", Color(0));
        let c: Vec<NodeId> = (0..3)
            .map(|i| b.add_node(format!("c{i}"), Color(0)))
            .collect();
        for &x in &a {
            b.add_edge(x, m1).unwrap();
        }
        b.add_edge(m1, m2).unwrap();
        for &y in &c {
            b.add_edge(m2, y).unwrap();
        }
        let g = b.build().unwrap();
        let params = FabricParams::uniform(2, TileParams::default());
        let p = partition(&g, &params);
        p.validate(&g, &params).unwrap();
        assert_eq!(p.cuts.len(), 1, "{:?}", p.cuts);
    }

    #[test]
    fn engine_matches_reference_on_random_dags() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(1..40);
            let mut b = DfgBuilder::new();
            let ids: Vec<NodeId> = (0..n)
                .map(|i| b.add_node(format!("n{i}"), Color(rng.gen_range(0..3))))
                .collect();
            for j in 1..n {
                for i in 0..j {
                    if rng.gen_bool(0.15) {
                        b.add_edge(ids[i], ids[j]).unwrap();
                    }
                }
            }
            let g = b.build().unwrap();
            for spec in ["1", "2", "3:2", "5,32+3,16", "4:2,8"] {
                let params = FabricParams::parse(spec).unwrap();
                let engine = partition(&g, &params);
                let reference = partition_reference(&g, &params);
                assert_eq!(engine, reference, "seed {seed}, fabric {spec}");
                engine.validate(&g, &params).unwrap();
            }
        }
    }
}
