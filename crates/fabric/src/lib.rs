//! Multi-tile fabric: architecture descriptions, DFG partitioning, and
//! fabric mapping.
//!
//! The paper maps one data-flow graph onto one Montium tile. A real
//! reconfigurable part is a *fabric* of such tiles behind an
//! interconnect, and mapping onto it adds one pipeline stage: **cut the
//! graph across tiles** before scheduling each piece. This crate owns
//! that stage:
//!
//! * [`FabricParams`] — the architecture description: N tiles, each with
//!   its own ALU count and configuration-store size
//!   ([`mps_montium::TileParams`]), plus an [`Interconnect`] model (the
//!   extra cycles a value spends crossing between tiles);
//! * [`partition`] — a deterministic topological-contiguity heuristic
//!   that cuts the graph into per-tile node sets while minimizing the
//!   edges severed at each boundary, with a naive
//!   [`partition_reference`] oracle (the repo's engine + `*_reference`
//!   convention: decision-identical, property-tested);
//! * [`map_fabric`] and its staged halves ([`schedule_fabric`],
//!   [`replay_fabric`]) — schedule every partition against its own tile
//!   on a shared global clock (consumers of cut edges are *released*
//!   only once the transfer arrives), replay each tile cycle-accurately,
//!   and merge the per-tile schedules plus explicit [`Transfer`]s into a
//!   [`FabricMapping`] with total-latency and critical-path accounting.
//!
//! The subsystem's built-in correctness oracle: a **single-tile fabric
//! reproduces the plain single-tile pipeline bit-identically** — the
//! partition is trivial, no releases fire, and the release-aware
//! scheduler with all-zero releases is decision-identical to the plain
//! Fig. 3 loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod map;
mod mapping;
mod params;
mod partition;

pub use error::FabricError;
pub use map::{
    map_fabric, replay_fabric, schedule_fabric, schedule_partitioned, FabricSchedule, TileSchedule,
};
pub use mapping::{FabricMapping, TilePlan, Transfer};
pub use params::{FabricParams, Interconnect};
pub use partition::{partition, partition_reference, Partition};
