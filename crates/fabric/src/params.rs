//! The fabric architecture description.

use crate::error::FabricError;
use mps_montium::TileParams;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The inter-tile communication model: a full crossbar (any tile can
/// reach any other) with a uniform per-value transfer cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Extra cycles a value spends in flight between tiles: a consumer
    /// on another tile is released no earlier than global cycle
    /// `producer + 1 + transfer_latency`.
    pub transfer_latency: u64,
}

impl Default for Interconnect {
    fn default() -> Interconnect {
        Interconnect {
            transfer_latency: 1,
        }
    }
}

/// A parameterized fabric: N tiles (each with its own ALU count and
/// configuration-store size) behind an [`Interconnect`].
///
/// The textual spec accepted by [`FabricParams::parse`] (and the CLI's
/// `--fabric` flag) is `N[:alus[,configs]][@latency]` for a homogeneous
/// fabric, or heterogeneous per-tile specs joined with `+`:
/// `alus[,configs]+alus[,configs]+…[@latency]`. Examples:
///
/// | spec | meaning |
/// |---|---|
/// | `2` | two default (5-ALU, 32-config) tiles |
/// | `4:3` | four 3-ALU tiles |
/// | `2:5,16@3` | two 5-ALU, 16-config tiles, 3-cycle transfers |
/// | `5,32+3,16` | one default tile plus one 3-ALU, 16-config tile |
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricParams {
    /// The tiles, in fabric order. Tile 0 hosts the topologically
    /// earliest partition.
    pub tiles: Vec<TileParams>,
    /// The inter-tile communication model.
    pub interconnect: Interconnect,
}

impl Default for FabricParams {
    /// A single default Montium tile — the paper's machine.
    fn default() -> FabricParams {
        FabricParams::single(TileParams::default())
    }
}

impl FabricParams {
    /// A one-tile fabric (the bit-identity oracle configuration).
    pub fn single(tile: TileParams) -> FabricParams {
        FabricParams {
            tiles: vec![tile],
            interconnect: Interconnect::default(),
        }
    }

    /// `n` identical tiles behind the default interconnect.
    pub fn uniform(n: usize, tile: TileParams) -> FabricParams {
        FabricParams {
            tiles: vec![tile; n],
            interconnect: Interconnect::default(),
        }
    }

    /// Number of tiles.
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Total ALUs across all tiles (the partitioner's balance weight).
    pub fn total_alus(&self) -> usize {
        self.tiles.iter().map(|t| t.alus).sum()
    }

    /// The narrowest tile's ALU count (0 for an empty description) —
    /// selected patterns run on every tile, so this bounds the pattern
    /// capacity a caller should select with.
    pub fn min_alus(&self) -> usize {
        self.tiles.iter().map(|t| t.alus).min().unwrap_or(0)
    }

    /// Check the description is usable: at least one tile, and no tile
    /// degenerate (zero ALUs or zero config entries).
    pub fn validate(&self) -> Result<(), FabricError> {
        if self.tiles.is_empty() {
            return Err(FabricError::EmptyFabric);
        }
        for (i, t) in self.tiles.iter().enumerate() {
            if t.alus == 0 || t.max_configs == 0 {
                return Err(FabricError::BadTile {
                    tile: i,
                    alus: t.alus,
                    max_configs: t.max_configs,
                });
            }
        }
        Ok(())
    }

    /// Parse the `N[:alus[,configs]][@latency]` /
    /// `alus[,configs]+…[@latency]` spec (see the type docs). `None` on
    /// any syntax error or zero tile count.
    pub fn parse(spec: &str) -> Option<FabricParams> {
        let (body, latency) = match spec.split_once('@') {
            Some((body, lat)) => (body, lat.parse::<u64>().ok()?),
            None => (spec, Interconnect::default().transfer_latency),
        };
        let tiles = if body.contains('+') {
            body.split('+')
                .map(Self::parse_tile)
                .collect::<Option<Vec<_>>>()?
        } else {
            let (count, tile) = match body.split_once(':') {
                Some((n, tile)) => (n.parse::<usize>().ok()?, Self::parse_tile(tile)?),
                None => (body.parse::<usize>().ok()?, TileParams::default()),
            };
            vec![tile; count]
        };
        if tiles.is_empty() {
            return None;
        }
        Some(FabricParams {
            tiles,
            interconnect: Interconnect {
                transfer_latency: latency,
            },
        })
    }

    /// One tile's `alus[,configs]` fragment.
    fn parse_tile(s: &str) -> Option<TileParams> {
        let (alus, configs) = match s.split_once(',') {
            Some((a, c)) => (a.parse().ok()?, c.parse().ok()?),
            None => (s.parse().ok()?, TileParams::default().max_configs),
        };
        Some(TileParams {
            alus,
            max_configs: configs,
        })
    }
}

impl fmt::Display for FabricParams {
    /// The canonical spec: uniform fabrics render as
    /// `N:alus,configs@latency`, heterogeneous ones tile-by-tile.
    /// `parse(format!("{p}")) == Some(p)` for every valid description.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let uniform = self.tiles.windows(2).all(|w| w[0] == w[1]);
        if uniform && !self.tiles.is_empty() {
            let t = self.tiles[0];
            write!(f, "{}:{},{}", self.tiles.len(), t.alus, t.max_configs)?;
        } else {
            for (i, t) in self.tiles.iter().enumerate() {
                if i > 0 {
                    f.write_str("+")?;
                }
                write!(f, "{},{}", t.alus, t.max_configs)?;
            }
        }
        write!(f, "@{}", self.interconnect.transfer_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_covers_the_spec_grammar() {
        let p = FabricParams::parse("2").unwrap();
        assert_eq!(p.tiles, vec![TileParams::default(); 2]);
        assert_eq!(p.interconnect.transfer_latency, 1);

        let p = FabricParams::parse("4:3").unwrap();
        assert_eq!(p.tiles.len(), 4);
        assert_eq!(p.tiles[0].alus, 3);
        assert_eq!(p.tiles[0].max_configs, TileParams::default().max_configs);

        let p = FabricParams::parse("2:5,16@3").unwrap();
        assert_eq!(
            p.tiles,
            vec![
                TileParams {
                    alus: 5,
                    max_configs: 16
                };
                2
            ]
        );
        assert_eq!(p.interconnect.transfer_latency, 3);

        let p = FabricParams::parse("5,32+3,16").unwrap();
        assert_eq!(p.tiles.len(), 2);
        assert_eq!((p.tiles[1].alus, p.tiles[1].max_configs), (3, 16));

        for bad in ["", "0", "x", "2:", "2:a", "3@", "1+"] {
            assert!(FabricParams::parse(bad).is_none(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn display_round_trips() {
        for spec in ["1", "2", "4:3", "2:5,16@3", "5,32+3,16", "4,8+5,32+2,4@2"] {
            let p = FabricParams::parse(spec).unwrap();
            assert_eq!(
                FabricParams::parse(&p.to_string()),
                Some(p.clone()),
                "{spec}"
            );
        }
    }

    #[test]
    fn validate_rejects_degenerate_fabrics() {
        assert_eq!(
            FabricParams {
                tiles: vec![],
                interconnect: Interconnect::default()
            }
            .validate(),
            Err(FabricError::EmptyFabric)
        );
        let bad = FabricParams::single(TileParams {
            alus: 0,
            max_configs: 32,
        });
        assert!(matches!(
            bad.validate(),
            Err(FabricError::BadTile { tile: 0, .. })
        ));
        assert!(FabricParams::default().validate().is_ok());
        assert_eq!(FabricParams::default().tile_count(), 1);
        assert_eq!(
            FabricParams::uniform(3, TileParams::default()).total_alus(),
            15
        );
    }
}
