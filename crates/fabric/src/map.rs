//! Fabric mapping: partition, per-tile release-aware scheduling, and
//! cycle-accurate replay merged into a [`FabricMapping`].
//!
//! The stage is split in two so a pipeline can time (and gate) them
//! separately:
//!
//! 1. [`schedule_fabric`] — partition the graph, then schedule each
//!    tile's slice in fabric order on a shared global clock. Consumers
//!    of cut edges are *released* only once their transfer arrives, so
//!    a later tile's schedule opens idle gaps instead of violating the
//!    interconnect. The result ([`FabricSchedule`]) carries each tile's
//!    local graph and compact schedule.
//! 2. [`replay_fabric`] — replay every tile on its own
//!    [`mps_montium::TileParams`] model, remap the local node ids back
//!    to global ones, synthesize one [`Transfer`] per cut edge, and
//!    account the fabric makespan.
//!
//! [`map_fabric`] composes both. With a one-tile fabric the partition
//! is trivial and no releases fire, so the result is bit-identical to
//! `schedule_multi_pattern` + `execute` on the whole graph — the
//! subsystem's built-in oracle, pinned by the tests below.

use crate::error::FabricError;
use crate::mapping::{FabricMapping, TilePlan, Transfer};
use crate::params::FabricParams;
use crate::partition::{partition, Partition};
use mps_dfg::{induced_subgraph, AnalyzedDfg, NodeId};
use mps_montium::{execute, AluSlot, TileParams};
use mps_patterns::PatternSet;
use mps_scheduler::{
    schedule_multi_pattern_released, MultiPatternConfig, Schedule, ScheduledCycle,
};

/// One tile's scheduled slice, before replay. Local node id `i` is
/// global node `keep[i]`.
#[derive(Clone, Debug)]
pub struct TileSchedule {
    /// The tile's architecture parameters.
    pub params: TileParams,
    /// Global node id of each local node, in local-id order.
    pub keep: Vec<NodeId>,
    /// The tile's slice of the graph, re-analyzed in local ids.
    pub adfg: AnalyzedDfg,
    /// The tile's compact schedule, in **local** node ids.
    pub schedule: Schedule,
    /// Global fabric cycle of each compact row (strictly increasing).
    pub global_cycles: Vec<u64>,
}

/// Every tile scheduled against the shared global clock — the output of
/// [`schedule_fabric`] and the input of [`replay_fabric`].
#[derive(Clone, Debug)]
pub struct FabricSchedule {
    /// The architecture being mapped onto.
    pub params: FabricParams,
    /// The partition the schedules follow.
    pub partition: Partition,
    /// Per-tile schedules, in fabric order.
    pub tiles: Vec<TileSchedule>,
    /// Global cycle each node executes at (indexed by `NodeId::index`).
    pub node_gcycle: Vec<u64>,
    /// The graph's critical-path length in nodes.
    pub critical_path: u32,
}

/// Partition `adfg` across the fabric and schedule every tile's slice
/// on the shared global clock.
///
/// Tiles are scheduled in fabric order; because the partition is
/// tile-monotone, every producer of a cut edge is scheduled before its
/// consumer's tile runs, so the consumer's release cycle
/// (`producer + 1 + transfer_latency`) is known exactly.
pub fn schedule_fabric(
    adfg: &AnalyzedDfg,
    patterns: &PatternSet,
    config: MultiPatternConfig,
    params: &FabricParams,
) -> Result<FabricSchedule, FabricError> {
    params.validate()?;
    let part = partition(adfg.dfg(), params);
    schedule_partitioned(adfg, patterns, config, params, part)
}

/// [`schedule_fabric`] for a caller that already ran (and timed, and
/// gated) the partition stage itself. `part` must be a partition of
/// `adfg` under `params` (as produced by [`partition`]).
pub fn schedule_partitioned(
    adfg: &AnalyzedDfg,
    patterns: &PatternSet,
    config: MultiPatternConfig,
    params: &FabricParams,
    part: Partition,
) -> Result<FabricSchedule, FabricError> {
    let n = adfg.len();
    let latency = params.interconnect.transfer_latency;

    let mut releases = vec![0u64; n];
    let mut gcycle = vec![0u64; n];
    let mut tiles = Vec::with_capacity(params.tiles.len());
    for (t, &tile_params) in params.tiles.iter().enumerate() {
        let keep = part.members(t);
        let (local_dfg, _) = induced_subgraph(adfg.dfg(), &keep);
        let local_adfg = AnalyzedDfg::new(local_dfg);
        let local_releases: Vec<u64> = keep.iter().map(|&g| releases[g.index()]).collect();
        let released =
            schedule_multi_pattern_released(&local_adfg, patterns, config, &local_releases)
                .map_err(|source| FabricError::Schedule { tile: t, source })?;

        for (row, &gc) in released
            .schedule
            .cycles()
            .iter()
            .zip(&released.global_cycles)
        {
            for &local in &row.nodes {
                gcycle[keep[local.index()].index()] = gc;
            }
        }
        // Open the consumers of this tile's cut edges no earlier than
        // their transfer's arrival.
        for &(u, v) in &part.cuts {
            if part.tile_of[u.index()] == t {
                let arrive = gcycle[u.index()] + 1 + latency;
                releases[v.index()] = releases[v.index()].max(arrive);
            }
        }
        tiles.push(TileSchedule {
            params: tile_params,
            keep,
            adfg: local_adfg,
            schedule: released.schedule,
            global_cycles: released.global_cycles,
        });
    }

    Ok(FabricSchedule {
        params: params.clone(),
        partition: part,
        tiles,
        node_gcycle: gcycle,
        critical_path: adfg.levels().critical_path_len(),
    })
}

/// Replay every tile of `fs` cycle-accurately and merge the results —
/// per-tile plans in global node ids, one [`Transfer`] per cut edge,
/// and the fabric makespan — into a validated-shape [`FabricMapping`].
pub fn replay_fabric(
    fs: &FabricSchedule,
    patterns: &PatternSet,
) -> Result<FabricMapping, FabricError> {
    let mut tiles = Vec::with_capacity(fs.tiles.len());
    for (t, ts) in fs.tiles.iter().enumerate() {
        let mut exec = execute(&ts.adfg, &ts.schedule, patterns, ts.params)
            .map_err(|source| FabricError::Montium { tile: t, source })?;
        exec.bindings = exec
            .bindings
            .iter()
            .map(|b| AluSlot {
                node: ts.keep[b.node.index()],
                ..*b
            })
            .collect();
        let schedule = Schedule::from_cycles(
            ts.schedule
                .cycles()
                .iter()
                .map(|c| ScheduledCycle {
                    pattern: c.pattern,
                    nodes: c.nodes.iter().map(|&l| ts.keep[l.index()]).collect(),
                })
                .collect(),
        );
        tiles.push(TilePlan {
            params: ts.params,
            schedule,
            global_cycles: ts.global_cycles.clone(),
            exec,
        });
    }

    let latency = fs.params.interconnect.transfer_latency;
    let transfers = fs
        .partition
        .cuts
        .iter()
        .map(|&(u, v)| {
            let depart = fs.node_gcycle[u.index()] + 1;
            Transfer {
                from: u,
                to: v,
                from_tile: fs.partition.tile_of[u.index()],
                to_tile: fs.partition.tile_of[v.index()],
                depart,
                arrive: depart + latency,
            }
        })
        .collect();

    Ok(FabricMapping {
        params: fs.params.clone(),
        tile_of: fs.partition.tile_of.clone(),
        tiles,
        transfers,
        total_cycles: fs.node_gcycle.iter().map(|&g| g + 1).max().unwrap_or(0),
        critical_path: fs.critical_path,
    })
}

/// The whole fabric stage in one call: [`schedule_fabric`] then
/// [`replay_fabric`].
pub fn map_fabric(
    adfg: &AnalyzedDfg,
    patterns: &PatternSet,
    config: MultiPatternConfig,
    params: &FabricParams,
) -> Result<FabricMapping, FabricError> {
    let fs = schedule_fabric(adfg, patterns, config, params)?;
    replay_fabric(&fs, patterns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dfg::{Color, Dfg, DfgBuilder};
    use mps_scheduler::schedule_multi_pattern;

    fn c(ch: char) -> Color {
        Color::from_char(ch).unwrap()
    }

    /// A two-level graph: four independent 'a' producers each feeding
    /// one of four 'b' consumers.
    fn fan_graph() -> Dfg {
        let mut b = DfgBuilder::new();
        let prods: Vec<NodeId> = (0..4)
            .map(|i| b.add_node(format!("p{i}"), c('a')))
            .collect();
        for (i, &p) in prods.iter().enumerate() {
            let q = b.add_node(format!("q{i}"), c('b'));
            b.add_edge(p, q).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn single_tile_fabric_matches_the_plain_pipeline() {
        let adfg = AnalyzedDfg::new(fan_graph());
        let patterns = PatternSet::parse("aab ab b").unwrap();
        let config = MultiPatternConfig::default();
        let plain = schedule_multi_pattern(&adfg, &patterns, config).unwrap();
        let plain_exec = execute(&adfg, &plain.schedule, &patterns, TileParams::default()).unwrap();

        let mapping = map_fabric(&adfg, &patterns, config, &FabricParams::default()).unwrap();
        mapping.validate(adfg.dfg()).unwrap();
        assert_eq!(mapping.tiles.len(), 1);
        assert_eq!(mapping.tiles[0].schedule, plain.schedule);
        assert_eq!(mapping.tiles[0].exec, plain_exec);
        assert_eq!(
            mapping.tiles[0].global_cycles,
            (0..plain.schedule.len() as u64).collect::<Vec<_>>()
        );
        assert!(mapping.transfers.is_empty());
        assert_eq!(mapping.total_cycles, plain.schedule.len() as u64);
    }

    #[test]
    fn cut_edges_delay_consumers_by_the_transfer_latency() {
        let adfg = AnalyzedDfg::new(fan_graph());
        let patterns = PatternSet::parse("aab ab b bb aa").unwrap();
        let mut params = FabricParams::parse("2@3").unwrap();
        params.interconnect.transfer_latency = 3;
        let mapping = map_fabric(&adfg, &patterns, MultiPatternConfig::default(), &params).unwrap();
        mapping.validate(adfg.dfg()).unwrap();
        assert!(
            !mapping.transfers.is_empty(),
            "a fan split across two tiles must cut at least one edge"
        );
        for tr in &mapping.transfers {
            assert_eq!(tr.arrive - tr.depart, 3);
            assert!(tr.from_tile < tr.to_tile, "partition is tile-monotone");
        }
    }

    #[test]
    fn replay_reports_bind_global_ids() {
        let adfg = AnalyzedDfg::new(fan_graph());
        let patterns = PatternSet::parse("aab ab b bb aa").unwrap();
        let params = FabricParams::parse("2").unwrap();
        let mapping = map_fabric(&adfg, &patterns, MultiPatternConfig::default(), &params).unwrap();
        let mut seen: Vec<NodeId> = mapping
            .tiles
            .iter()
            .flat_map(|t| t.exec.bindings.iter().map(|b| b.node))
            .collect();
        seen.sort_by_key(|id| id.index());
        let all: Vec<NodeId> = adfg.dfg().node_ids().collect();
        assert_eq!(seen, all, "every global node bound exactly once");
    }

    #[test]
    fn degenerate_fabrics_are_rejected() {
        let adfg = AnalyzedDfg::new(fan_graph());
        let patterns = PatternSet::parse("ab").unwrap();
        let empty = FabricParams {
            tiles: vec![],
            interconnect: Default::default(),
        };
        assert_eq!(
            map_fabric(&adfg, &patterns, MultiPatternConfig::default(), &empty).unwrap_err(),
            FabricError::EmptyFabric
        );
    }

    #[test]
    fn tile_schedule_errors_name_the_tile() {
        // 'b' consumers land on tile 1 but no pattern covers 'b'.
        let adfg = AnalyzedDfg::new(fan_graph());
        let patterns = PatternSet::parse("aa").unwrap();
        let params = FabricParams::parse("2").unwrap();
        let err = map_fabric(&adfg, &patterns, MultiPatternConfig::default(), &params).unwrap_err();
        assert!(
            matches!(err, FabricError::Schedule { .. }),
            "expected a schedule error, got {err}"
        );
    }

    #[test]
    fn empty_graph_maps_to_an_empty_fabric_plan() {
        let adfg = AnalyzedDfg::new(DfgBuilder::new().build().unwrap());
        let patterns = PatternSet::new();
        let params = FabricParams::parse("2").unwrap();
        let mapping = map_fabric(&adfg, &patterns, MultiPatternConfig::default(), &params).unwrap();
        mapping.validate(adfg.dfg()).unwrap();
        assert_eq!(mapping.total_cycles, 0);
        assert!(mapping.transfers.is_empty());
    }
}
