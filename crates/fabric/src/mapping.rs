//! The fabric mapping: per-tile plans, explicit transfers, and the
//! whole-fabric accounting.

use crate::error::FabricError;
use crate::params::FabricParams;
use mps_dfg::{Dfg, NodeId};
use mps_montium::ExecReport;
use mps_scheduler::Schedule;
use serde::{Deserialize, Serialize};

/// One value crossing the interconnect: the cut edge it serves and its
/// departure/arrival cycles on the global fabric clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// Producing node (on `from_tile`).
    pub from: NodeId,
    /// Consuming node (on `to_tile`).
    pub to: NodeId,
    /// Tile the value leaves.
    pub from_tile: usize,
    /// Tile the value reaches.
    pub to_tile: usize,
    /// Global cycle the value enters the interconnect (the cycle after
    /// its producer executes).
    pub depart: u64,
    /// Global cycle the value is available on `to_tile`:
    /// `depart + transfer_latency`. The consumer issues at this cycle or
    /// later.
    pub arrive: u64,
}

/// One tile's slice of the fabric mapping.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TilePlan {
    /// The tile's architecture parameters.
    pub params: mps_montium::TileParams,
    /// The tile's compact schedule, in **global** node ids.
    pub schedule: Schedule,
    /// Global fabric cycle of each compact schedule row (strictly
    /// increasing, parallel to `schedule.cycles()`).
    pub global_cycles: Vec<u64>,
    /// Cycle-accurate replay report (bindings in global node ids; the
    /// `cycle` of each binding indexes the compact schedule rows).
    pub exec: ExecReport,
}

/// A whole compile mapped across a fabric: the partition, every tile's
/// plan and replay report, the inter-tile transfers, and the
/// total-latency / critical-path accounting.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FabricMapping {
    /// The architecture this mapping targets.
    pub params: FabricParams,
    /// Tile index per node (indexed by `NodeId::index`).
    pub tile_of: Vec<usize>,
    /// Per-tile plans, in fabric order.
    pub tiles: Vec<TilePlan>,
    /// One transfer per cut edge, in the graph's canonical edge order.
    pub transfers: Vec<Transfer>,
    /// Parallel makespan: the cycle after the last node executes on the
    /// global fabric clock (≥ any single tile's span).
    pub total_cycles: u64,
    /// The graph's critical-path length in nodes — the latency floor no
    /// fabric can beat.
    pub critical_path: u32,
}

impl FabricMapping {
    /// Number of tiles in the mapping.
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Number of inter-tile transfers.
    pub fn transfer_count(&self) -> usize {
        self.transfers.len()
    }

    /// Global cycle of every node (indexed by `NodeId::index`), read
    /// back off the per-tile plans.
    fn node_cycles(&self, n: usize) -> Result<Vec<Option<u64>>, FabricError> {
        let mut gcycle: Vec<Option<u64>> = vec![None; n];
        for (t, plan) in self.tiles.iter().enumerate() {
            if plan.schedule.len() != plan.global_cycles.len() {
                return Err(FabricError::InvalidMapping(format!(
                    "tile {t}: {} schedule rows but {} global cycles",
                    plan.schedule.len(),
                    plan.global_cycles.len()
                )));
            }
            for (row, &gc) in plan.schedule.cycles().iter().zip(&plan.global_cycles) {
                for &node in &row.nodes {
                    if node.index() >= n {
                        return Err(FabricError::InvalidMapping(format!(
                            "tile {t} schedules unknown node {node:?}"
                        )));
                    }
                    if self.tile_of[node.index()] != t {
                        return Err(FabricError::InvalidMapping(format!(
                            "node {node:?} scheduled on tile {t}, assigned to {}",
                            self.tile_of[node.index()]
                        )));
                    }
                    if gcycle[node.index()].replace(gc).is_some() {
                        return Err(FabricError::InvalidMapping(format!(
                            "node {node:?} scheduled twice"
                        )));
                    }
                }
            }
        }
        Ok(gcycle)
    }

    /// Validate the mapping against its graph: every node scheduled
    /// exactly once on its assigned tile, per-tile clocks strictly
    /// increasing, every dependency satisfied (with transfer latency
    /// across tiles), cut edges carrying exactly one transfer each and
    /// intra-tile edges none, replay reports consistent with the tile
    /// parameters, and the makespan accounted.
    pub fn validate(&self, dfg: &Dfg) -> Result<(), FabricError> {
        let n = dfg.len();
        let bad = |msg: String| Err(FabricError::InvalidMapping(msg));
        if self.tile_of.len() != n {
            return bad(format!(
                "tile_of covers {} nodes, graph has {}",
                self.tile_of.len(),
                n
            ));
        }
        if self.tiles.len() != self.params.tiles.len() {
            return bad(format!(
                "{} tile plans for {} tiles",
                self.tiles.len(),
                self.params.tiles.len()
            ));
        }
        let gcycle = self.node_cycles(n)?;
        if let Some(i) = gcycle.iter().position(Option::is_none) {
            return bad(format!("node {i} never scheduled"));
        }
        let gc = |id: NodeId| gcycle[id.index()].expect("checked above");

        for (t, plan) in self.tiles.iter().enumerate() {
            if !plan.global_cycles.windows(2).all(|w| w[0] < w[1]) {
                return bad(format!("tile {t}: global cycles not strictly increasing"));
            }
            if plan.exec.cycles != plan.schedule.len() {
                return bad(format!("tile {t}: replay ran a different schedule"));
            }
            if plan.exec.alu_busy.len() != plan.params.alus {
                return bad(format!("tile {t}: replay saw a different ALU count"));
            }
            if plan.exec.config_loads > plan.params.max_configs {
                return bad(format!(
                    "tile {t}: {} configurations exceed the {}-entry store",
                    plan.exec.config_loads, plan.params.max_configs
                ));
            }
        }

        let latency = self.params.interconnect.transfer_latency;
        let mut expected_transfers = Vec::new();
        for (u, v) in dfg.edges() {
            let (tu, tv) = (self.tile_of[u.index()], self.tile_of[v.index()]);
            if tu == tv {
                if gc(u) >= gc(v) {
                    return bad(format!("intra-tile edge {u:?} -> {v:?} not ordered"));
                }
            } else {
                if gc(v) < gc(u) + 1 + latency {
                    return bad(format!(
                        "cut edge {u:?} -> {v:?} consumed before its transfer arrives"
                    ));
                }
                expected_transfers.push(Transfer {
                    from: u,
                    to: v,
                    from_tile: tu,
                    to_tile: tv,
                    depart: gc(u) + 1,
                    arrive: gc(u) + 1 + latency,
                });
            }
        }
        if self.transfers != expected_transfers {
            return bad("transfers differ from one-per-cut-edge in canonical order".to_string());
        }

        let makespan = (0..n).map(|i| gcycle[i].expect("scheduled") + 1).max();
        if self.total_cycles != makespan.unwrap_or(0) {
            return bad(format!(
                "total_cycles {} but latest node finishes at {:?}",
                self.total_cycles, makespan
            ));
        }
        Ok(())
    }
}
