//! The fabric subsystem's error type.

use mps_montium::MontiumError;
use mps_scheduler::ScheduleError;
use std::fmt;

/// Any failure of fabric validation, partitioning, or mapping.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FabricError {
    /// The fabric has no tiles.
    EmptyFabric,
    /// A tile is degenerate: zero ALUs or a zero-entry config store.
    BadTile {
        /// Index of the offending tile.
        tile: usize,
        /// Its ALU count.
        alus: usize,
        /// Its configuration-store capacity.
        max_configs: usize,
    },
    /// Fabric compiles require the multi-pattern list scheduler; the
    /// other engines have no release-aware variant.
    UnsupportedEngine {
        /// Name of the engine that was configured.
        engine: String,
    },
    /// Scheduling one tile's partition failed.
    Schedule {
        /// Index of the tile whose partition failed to schedule.
        tile: usize,
        /// The underlying scheduler error.
        source: ScheduleError,
    },
    /// Cycle-accurate replay of one tile's schedule failed.
    Montium {
        /// Index of the tile whose replay failed.
        tile: usize,
        /// The underlying tile-model error.
        source: MontiumError,
    },
    /// A [`crate::FabricMapping`] failed validation (always a bug in the
    /// producer, never in the input).
    InvalidMapping(String),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::EmptyFabric => f.write_str("fabric has no tiles"),
            FabricError::BadTile {
                tile,
                alus,
                max_configs,
            } => write!(
                f,
                "tile {tile} is degenerate ({alus} ALUs, {max_configs} config entries)"
            ),
            FabricError::UnsupportedEngine { engine } => write!(
                f,
                "fabric compiles require the list scheduler, not \"{engine}\""
            ),
            FabricError::Schedule { tile, source } => {
                write!(f, "scheduling tile {tile}: {source}")
            }
            FabricError::Montium { tile, source } => {
                write!(f, "replaying tile {tile}: {source}")
            }
            FabricError::InvalidMapping(msg) => write!(f, "invalid fabric mapping: {msg}"),
        }
    }
}

impl std::error::Error for FabricError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FabricError::Schedule { source, .. } => Some(source),
            FabricError::Montium { source, .. } => Some(source),
            _ => None,
        }
    }
}
