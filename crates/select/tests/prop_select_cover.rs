//! Decision-identity property suite for the cover-engine selectors: on
//! random DAGs, every rewritten strategy must produce **exactly** the
//! outcome of its retained `*_reference` oracle — same selected
//! `PatternSet`, same tie-break order, same per-round priorities
//! bit-for-bit — across the paper's span limits, in sequential and
//! parallel execution, and under the config toggles.

use mps_dfg::{AnalyzedDfg, Color, DfgBuilder};
use mps_patterns::{EnumerateConfig, PatternTable};
use mps_select::{
    coverage_greedy_from_table, coverage_greedy_from_table_reference, exhaustive_best,
    exhaustive_best_reference, node_cover_from_table, node_cover_from_table_reference,
    select_from_table, select_from_table_reference, SelectConfig,
};
use proptest::prelude::*;

const MAX_NODES: usize = 20;

/// Same random-DAG recipe as the patterns property suites: node `i` gets
/// `colors[i]`, forward edges only (acyclic by construction).
fn build_dag(n: usize, colors: &[u8], edges: &[bool]) -> AnalyzedDfg {
    let mut b = DfgBuilder::new();
    let ids: Vec<_> = (0..n)
        .map(|i| b.add_node(format!("n{i}"), Color(colors[i])))
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if edges[i * MAX_NODES + j] {
                b.add_edge(ids[i], ids[j]).unwrap();
            }
        }
    }
    AnalyzedDfg::new(b.build().unwrap())
}

fn check_strategies(adfg: &AnalyzedDfg, span_limit: Option<u32>, pdef: usize) {
    let table = PatternTable::build(
        adfg,
        EnumerateConfig {
            capacity: 5,
            span_limit,
            parallel: false,
        },
    );
    for parallel in [false, true] {
        for color_condition in [true, false] {
            let cfg = SelectConfig {
                pdef,
                span_limit,
                parallel,
                color_condition,
                ..Default::default()
            };
            let what =
                format!("span={span_limit:?} pdef={pdef} par={parallel} cond={color_condition}");
            assert_eq!(
                select_from_table(adfg, &table, &cfg),
                select_from_table_reference(adfg, &table, &cfg),
                "eq8 {what}"
            );
            assert_eq!(
                node_cover_from_table(adfg, &table, &cfg),
                node_cover_from_table_reference(adfg, &table, &cfg),
                "node_cover {what}"
            );
            assert_eq!(
                coverage_greedy_from_table(adfg, &table, &cfg),
                coverage_greedy_from_table_reference(adfg, &table, &cfg),
                "coverage {what}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The acceptance property of the cover-engine rewrite: fast and
    /// reference selection are indistinguishable on random DAGs for every
    /// span limit the paper exercises, sequentially and in parallel.
    #[test]
    fn selection_matches_reference_on_random_dags(
        n in 1usize..=MAX_NODES,
        pdef in 1usize..=5,
        colors in proptest::collection::vec(0u8..5, MAX_NODES..(MAX_NODES + 1)),
        edges in proptest::collection::vec(any::<bool>(), (MAX_NODES * MAX_NODES)..(MAX_NODES * MAX_NODES + 1)),
    ) {
        let adfg = build_dag(n, &colors, &edges);
        for span_limit in [None, Some(0), Some(1), Some(3)] {
            check_strategies(&adfg, span_limit, pdef);
        }
    }

    /// The exhaustive searcher's parallel fan-out must return the same
    /// optimum (same set, first-in-generation-order on cycle ties) as the
    /// sequential oracle. Small graphs only — every subset is scheduled.
    #[test]
    fn exhaustive_matches_reference_on_random_dags(
        n in 1usize..=7,
        pdef in 1usize..=2,
        colors in proptest::collection::vec(0u8..3, MAX_NODES..(MAX_NODES + 1)),
        edges in proptest::collection::vec(any::<bool>(), (MAX_NODES * MAX_NODES)..(MAX_NODES * MAX_NODES + 1)),
    ) {
        let adfg = build_dag(n, &colors, &edges);
        let slow = exhaustive_best_reference(
            &adfg,
            &SelectConfig { pdef, parallel: false, ..Default::default() },
            Default::default(),
            64,
        );
        for parallel in [false, true] {
            let cfg = SelectConfig { pdef, parallel, ..Default::default() };
            let fast = exhaustive_best(&adfg, &cfg, Default::default(), 64);
            prop_assert_eq!(&fast, &slow, "pdef={} parallel={}", pdef, parallel);
        }
    }
}
