//! The pattern selection loop (paper Fig. 7).
//!
//! Two implementations live here:
//!
//! * [`select_from_table`] — the **cover engine**. Eq. 8 priorities only
//!   fall as selection proceeds (the balancing denominators only grow),
//!   so cached scores are upper bounds — exact until a winner's
//!   [`mps_patterns::CoverMatrix`] row intersects the candidate's own
//!   (`dirty`, one word-wise AND). Each round seeds the scan with the
//!   highest cached bound and then sweeps the survivors: a candidate
//!   whose bound cannot beat the running best is settled by one float
//!   compare, and only genuine contenders are rescored. The initial full
//!   scoring fans out over [`mps_par::par_map`], and fabricated rounds
//!   invalidate nothing.
//! * [`select_from_table_reference`] — the full-rescore, dense-walk loop
//!   this crate shipped first, kept as the decision oracle (the property
//!   suite asserts outcome equality, priorities included bit-for-bit) and
//!   as the baseline the `throughput` bench's `select_rows` measure.

use crate::config::SelectConfig;
use crate::priority::eq8_priority;
use mps_dfg::AnalyzedDfg;
use mps_patterns::{PackedBag, Pattern, PatternId, PatternSet, PatternStats, PatternTable};
use serde::{Deserialize, Serialize};

/// What happened in one selection round.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundInfo {
    /// The pattern chosen this round.
    pub chosen: Pattern,
    /// Its Eq. 8 priority at selection time (0.0 for fabricated patterns).
    pub priority: f64,
    /// `true` if the pattern was fabricated from uncovered colors because
    /// no candidate had nonzero priority (Fig. 7, line 3).
    pub fabricated: bool,
    /// Candidates still alive when the round started.
    pub candidates_alive: usize,
}

/// Result of pattern selection.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SelectionOutcome {
    /// The selected patterns, in selection order (≤ `Pdef`; fewer only if
    /// the candidate pool ran dry *and* every color was already covered).
    pub patterns: PatternSet,
    /// Per-round details, for inspection and the worked-example tests.
    pub rounds: Vec<RoundInfo>,
}

impl SelectionOutcome {
    /// Number of fabricated patterns.
    pub fn fabricated_count(&self) -> usize {
        self.rounds.iter().filter(|r| r.fabricated).count()
    }
}

/// Packed keys of every candidate pattern, computed once per selection
/// run for the deletion scans of the fast engines.
pub(crate) fn packed_keys(stats: &[PatternStats]) -> Vec<Option<PackedBag>> {
    stats.iter().map(|s| s.pattern.packed()).collect()
}

/// The candidate-deletion test `candidate ⊑ chosen` of the fast engines:
/// SWAR packed-nibble inclusion ([`PackedBag::is_subbag_of`], two `u128`
/// operations) when both bags pack, the sorted-slice merge otherwise. The
/// `*_reference` loops keep the merge unconditionally, so the
/// decision-identity suites double as the SWAR differential oracle (the
/// direct one is `mps-patterns`' `prop_subbag`).
#[inline]
pub(crate) fn deleted_by(
    candidate: &Pattern,
    candidate_key: Option<PackedBag>,
    chosen: &Pattern,
    chosen_key: Option<PackedBag>,
) -> bool {
    match (candidate_key, chosen_key) {
        (Some(a), Some(b)) => a.is_subbag_of(b),
        _ => candidate.is_subpattern_of(chosen),
    }
}

/// Rescore batches at least this large fan out over [`mps_par::par_map`]
/// (when the config asks for parallelism at all). Small enough that the
/// parallel path is exercised by ordinary test tables, large enough that
/// trivial rounds skip the thread-spawn cost.
pub(crate) const PAR_SCORE_CUTOFF: usize = 32;

/// Run the §5.2 selection algorithm against a prebuilt pattern table —
/// the cover engine (see the module docs; decision-identical to
/// [`select_from_table_reference`]).
///
/// Exposed separately from [`select_patterns`] so callers can reuse one
/// (expensive) enumeration across many `Pdef` values, as Table 7 does.
pub fn select_from_table(
    adfg: &AnalyzedDfg,
    table: &PatternTable,
    cfg: &SelectConfig,
) -> SelectionOutcome {
    let num_nodes = adfg.len();
    let stats: &[PatternStats] = table.stats();
    let cover = table.cover();
    let complete_colors = adfg.dfg().color_set(); // the paper's L
    let mut selected_colors = mps_dfg::ColorSet::new(); // Ls
    let mut selected = PatternSet::new(); // Ps
    let mut selected_freq = vec![0u64; num_nodes]; // Σ_{Ps} h(p̄_i, ·)
    let mut rounds = Vec::with_capacity(cfg.pdef);

    // Eq. 8 priorities are monotone non-increasing over a run: selection
    // only ever *grows* the balancing denominators (fabrication changes
    // nothing), so a score cached in an earlier round is an **upper
    // bound** on the candidate's current value — exact unless a later
    // winner touched one of its nodes (`dirty`, detected in words over
    // the cover rows). The per-round argmax therefore scans cached
    // scores and recomputes a candidate only when its bound still beats
    // the best exact value found so far: the true maximum can never be
    // skipped (its bound dominates every exact value), most candidates
    // fall to one float compare, and rescoring uses the reference's own
    // [`eq8_priority`], so the winning priorities are bit-identical by
    // construction.
    let mut scores: Vec<f64> = if cfg.parallel && stats.len() >= PAR_SCORE_CUTOFF {
        let ids: Vec<u32> = (0..stats.len() as u32).collect();
        mps_par::par_map(&ids, |&i| {
            eq8_priority(&stats[i as usize], &selected_freq, cfg)
        })
    } else {
        stats
            .iter()
            .map(|s| eq8_priority(s, &selected_freq, cfg))
            .collect()
    };
    let mut dirty = vec![false; stats.len()];
    let packed = packed_keys(stats);
    // Alive candidates, ascending (kept sorted by `retain`): scan order
    // matches the reference's, so "strict `>` keeps the earliest" applies
    // verbatim.
    let mut alive: Vec<u32> = (0..stats.len() as u32).collect();
    let mut winner_row: Vec<u64> = Vec::new();
    // The next round's seed: a candidate holding the maximum cached bound
    // among the alive, maintained by the post-selection bookkeeping pass
    // (cached bounds only change inside sweeps, so it stays valid).
    let mut next_seed: Option<u32> = alive
        .iter()
        .copied()
        .max_by(|&a, &b| scores[a as usize].total_cmp(&scores[b as usize]));

    for _round in 0..cfg.pdef {
        let remaining_after_this = cfg.pdef - selected.len() - 1;
        let alive_count = alive.len();

        // One candidate at a time: `settle` resolves a candidate exactly —
        // rescore if dirty, then replace the running best under the
        // reference's rule (strictly greater, or equal with a smaller id:
        // the "earliest on ties" order), gated by the Eq. 9 filter.
        struct Scan<'a> {
            scores: &'a mut [f64],
            dirty: &'a mut [bool],
            best: Option<(f64, PatternId)>,
        }
        let mut scan = Scan {
            scores: &mut scores,
            dirty: &mut dirty,
            best: None,
        };
        let settle = |scan: &mut Scan, iu: u32| {
            let i = iu as usize;
            if scan.dirty[i] {
                scan.scores[i] = eq8_priority(&stats[i], &selected_freq, cfg);
                scan.dirty[i] = false;
            }
            let f = scan.scores[i];
            // Cheap filters first, the Eq. 9 condition only for a
            // candidate that would actually take the lead — same outcome
            // as the reference's condition-first order, since a filtered
            // candidate never becomes the best either way.
            if f <= 0.0
                || !scan
                    .best
                    .is_none_or(|(bf, bid)| f > bf || (f == bf && PatternId(iu) < bid))
            {
                return;
            }
            if cfg.color_condition
                && !color_condition_holds(
                    &stats[i].pattern,
                    &complete_colors,
                    &selected_colors,
                    cfg.capacity,
                    remaining_after_this,
                )
            {
                return; // priority forced to zero this round (Eq. 9)
            }
            scan.best = Some((f, PatternId(iu)));
        };
        // Seed: settle the highest cached bound first. It is the likeliest
        // true maximum, and with the running best already near the top the
        // sweep below skips nearly everyone on the one-compare bound test.
        if let Some(seed) = next_seed {
            if scan.scores[seed as usize] > 0.0 {
                settle(&mut scan, seed);
            }
        }
        // Sweep: a candidate whose cached bound does not beat the running
        // best cannot win (exact ≤ cached); `<` plus the id comparison on
        // equality mirrors the reference's tie-break exactly.
        for &iu in &alive {
            let i = iu as usize;
            let skip = scan.scores[i] <= 0.0
                || scan.best.is_some_and(|(bf, bid)| {
                    scan.scores[i] < bf || (scan.scores[i] == bf && PatternId(iu) >= bid)
                });
            if skip {
                continue;
            }
            settle(&mut scan, iu);
        }
        let best = scan.best;

        match best {
            Some((f, id)) => {
                let winner = &stats[id.index()];
                let chosen = winner.pattern;
                for n in mps_patterns::BitIter::new(cover.row(id)) {
                    selected_freq[n] += winner.node_freq[n];
                }
                selected_colors = selected_colors.union(&chosen.color_set());
                selected.insert(chosen);
                // One bookkeeping pass: delete the chosen pattern and all
                // its subpatterns, mark dirty whatever shares a node with
                // the winner (the only candidates whose balancing
                // denominators moved; a bound ≤ 0 can never recover, so
                // it needs no invalidation), and track the surviving
                // maximum cached bound as the next round's seed.
                cover.copy_row_into(id, &mut winner_row);
                let chosen_key = packed[id.index()];
                next_seed = None;
                alive.retain(|&iu| {
                    let i = iu as usize;
                    if deleted_by(&stats[i].pattern, packed[i], &chosen, chosen_key) {
                        return false;
                    }
                    if scores[i] > 0.0 && cover.intersects(PatternId(iu), &winner_row) {
                        dirty[i] = true;
                    }
                    if next_seed.is_none_or(|s| scores[i] > scores[s as usize]) {
                        next_seed = Some(iu);
                    }
                    true
                });
                rounds.push(RoundInfo {
                    chosen,
                    priority: f,
                    fabricated: false,
                    candidates_alive: alive_count,
                });
            }
            None => {
                // Fabricate from uncovered colors (Fig. 7 line 3).
                let mut slots: Vec<mps_dfg::Color> = complete_colors
                    .difference(&selected_colors)
                    .iter()
                    .take(cfg.capacity)
                    .collect();
                if slots.is_empty() {
                    // Everything is covered and no candidate adds value:
                    // selecting more patterns cannot help. Stop early.
                    break;
                }
                if cfg.pad_fabricated {
                    pad_to_capacity(&mut slots, cfg.capacity, adfg);
                }
                let fab = Pattern::from_colors(slots);
                selected_colors = selected_colors.union(&fab.color_set());
                selected.insert(fab);
                let fab_key = fab.packed();
                next_seed = None;
                alive.retain(|&iu| {
                    let i = iu as usize;
                    if deleted_by(&stats[i].pattern, packed[i], &fab, fab_key) {
                        return false;
                    }
                    if next_seed.is_none_or(|s| scores[i] > scores[s as usize]) {
                        next_seed = Some(iu);
                    }
                    true
                });
                // A fabricated pattern has no antichains: `selected_freq`
                // is unchanged and every cached score stays valid.
                rounds.push(RoundInfo {
                    chosen: fab,
                    priority: 0.0,
                    fabricated: true,
                    candidates_alive: alive_count,
                });
            }
        }
    }

    SelectionOutcome {
        patterns: selected,
        rounds,
    }
}

/// The pre-cover-engine §5.2 loop: every round recomputes every alive
/// candidate's priority with the dense per-node walk. Kept as the
/// decision oracle for [`select_from_table`] and the selection-stage
/// baseline of the `throughput` bench.
pub fn select_from_table_reference(
    adfg: &AnalyzedDfg,
    table: &PatternTable,
    cfg: &SelectConfig,
) -> SelectionOutcome {
    let num_nodes = adfg.len();
    let complete_colors = adfg.dfg().color_set(); // the paper's L
    let mut selected_colors = mps_dfg::ColorSet::new(); // Ls
    let mut selected = PatternSet::new(); // Ps
    let mut selected_freq = vec![0u64; num_nodes]; // Σ_{Ps} h(p̄_i, ·)
                                                   // Candidate liveness and statistics, both indexed by `PatternId` — the
                                                   // round loop below never touches a hash map.
    let mut alive: Vec<bool> = vec![true; table.len()];
    let stats: &[PatternStats] = table.stats();
    let mut rounds = Vec::with_capacity(cfg.pdef);

    for _round in 0..cfg.pdef {
        let remaining_after_this = cfg.pdef - selected.len() - 1;
        let alive_count = alive.iter().filter(|&&a| a).count();

        // Find the best candidate with nonzero priority.
        let mut best: Option<(f64, PatternId)> = None;
        for (i, s) in stats.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            if cfg.color_condition
                && !color_condition_holds(
                    &s.pattern,
                    &complete_colors,
                    &selected_colors,
                    cfg.capacity,
                    remaining_after_this,
                )
            {
                continue; // priority forced to zero (Eq. 9 violated)
            }
            let f = eq8_priority(s, &selected_freq, cfg);
            if f <= 0.0 {
                continue;
            }
            // Strict `>` keeps the earliest (canonical-order) pattern on
            // exact ties, making selection deterministic.
            if best.is_none_or(|(bf, _)| f > bf) {
                best = Some((f, PatternId(i as u32)));
            }
        }

        match best {
            Some((f, id)) => {
                let winner = &stats[id.index()];
                let chosen = winner.pattern;
                for (dst, &h) in selected_freq.iter_mut().zip(winner.node_freq.iter()) {
                    *dst += h;
                }
                selected_colors = selected_colors.union(&chosen.color_set());
                selected.insert(chosen);
                // Delete the chosen pattern and all its subpatterns.
                for (i, s) in stats.iter().enumerate() {
                    if alive[i] && s.pattern.is_subpattern_of(&chosen) {
                        alive[i] = false;
                    }
                }
                rounds.push(RoundInfo {
                    chosen,
                    priority: f,
                    fabricated: false,
                    candidates_alive: alive_count,
                });
            }
            None => {
                // Fabricate from uncovered colors (Fig. 7 line 3).
                let mut slots: Vec<mps_dfg::Color> = complete_colors
                    .difference(&selected_colors)
                    .iter()
                    .take(cfg.capacity)
                    .collect();
                if slots.is_empty() {
                    // Everything is covered and no candidate adds value:
                    // selecting more patterns cannot help. Stop early.
                    break;
                }
                if cfg.pad_fabricated {
                    pad_to_capacity(&mut slots, cfg.capacity, adfg);
                }
                let fab = Pattern::from_colors(slots);
                selected_colors = selected_colors.union(&fab.color_set());
                selected.insert(fab);
                for (i, s) in stats.iter().enumerate() {
                    if alive[i] && s.pattern.is_subpattern_of(&fab) {
                        alive[i] = false;
                    }
                }
                rounds.push(RoundInfo {
                    chosen: fab,
                    priority: 0.0,
                    fabricated: true,
                    candidates_alive: alive_count,
                });
            }
        }
    }

    SelectionOutcome {
        patterns: selected,
        rounds,
    }
}

/// Fill `slots` up to `capacity` by repeatedly granting the next slot to
/// the color with the highest remaining demand per slot (the per-color
/// lower-bound heuristic): color `c` with `N_c` nodes and `k_c` slots so
/// far needs at least `⌈N_c / k_c⌉` cycles, so the padder always grows the
/// current bottleneck.
fn pad_to_capacity(slots: &mut Vec<mps_dfg::Color>, capacity: usize, adfg: &AnalyzedDfg) {
    let hist = adfg.dfg().color_histogram();
    while slots.len() < capacity {
        let best = slots
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .max_by_key(|&&c| {
                let count = hist.get(c.index()).copied().unwrap_or(0);
                let k = slots.iter().filter(|&&x| x == c).count();
                // ceil(count / k) scaled to avoid float; k ≥ 1 here.
                count.div_ceil(k)
            })
            .copied();
        match best {
            Some(c) => slots.push(c),
            None => break,
        }
    }
}

/// Eq. 9: `|Ln(p̄)| ≥ |L| − |Ls| − C·(Pdef − |Ps| − 1)`.
pub(crate) fn color_condition_holds(
    pattern: &Pattern,
    complete: &mps_dfg::ColorSet,
    selected: &mps_dfg::ColorSet,
    capacity: usize,
    remaining_after_this: usize,
) -> bool {
    let new_colors = pattern.color_set().difference(selected).len() as i64;
    let uncovered = (complete.len() - complete.intersection(selected).len()) as i64;
    let rhs = uncovered - (capacity as i64) * (remaining_after_this as i64);
    new_colors >= rhs
}

/// Enumerate antichains, classify them, and select `Pdef` patterns — the
/// complete §5 algorithm (classification via the fast interned table
/// build, selection via the cover engine).
pub fn select_patterns(adfg: &AnalyzedDfg, cfg: &SelectConfig) -> SelectionOutcome {
    let table = PatternTable::build(adfg, cfg.enumerate_config());
    select_from_table(adfg, &table, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_workloads::{fig2, fig4};

    fn cfg(pdef: usize) -> SelectConfig {
        SelectConfig {
            pdef,
            parallel: false,
            ..Default::default()
        }
    }

    /// The paper's §5.2 worked example, both rounds: select {aa} (f=88),
    /// delete its subpattern {a}, then select {bb} (f=84).
    #[test]
    fn fig4_pdef2_selects_aa_then_bb() {
        let adfg = AnalyzedDfg::new(fig4());
        let out = select_patterns(&adfg, &cfg(2));
        let strs: Vec<String> = out.patterns.iter().map(|p| p.to_string()).collect();
        assert_eq!(strs, vec!["aa", "bb"]);
        assert_eq!(out.rounds[0].priority, 88.0);
        assert_eq!(out.rounds[1].priority, 84.0);
        assert_eq!(out.fabricated_count(), 0);
    }

    /// The paper's Pdef = 1 example: no single-color candidate satisfies
    /// the color number condition, so {ab} is fabricated.
    #[test]
    fn fig4_pdef1_fabricates_ab() {
        let adfg = AnalyzedDfg::new(fig4());
        let out = select_patterns(&adfg, &cfg(1));
        assert_eq!(out.patterns.len(), 1);
        assert_eq!(out.patterns.patterns()[0].to_string(), "ab");
        assert!(out.rounds[0].fabricated);
    }

    #[test]
    fn without_color_condition_pdef1_picks_aa_and_strands_b() {
        let adfg = AnalyzedDfg::new(fig4());
        let out = select_patterns(
            &adfg,
            &SelectConfig {
                color_condition: false,
                ..cfg(1)
            },
        );
        assert_eq!(out.patterns.patterns()[0].to_string(), "aa");
        // …which would make scheduling fail: the ablation benches measure
        // exactly this failure mode.
        assert!(!out.patterns.covers(&adfg.dfg().color_set()));
    }

    #[test]
    fn selected_patterns_always_cover_all_colors() {
        for pdef in 1..=5 {
            let adfg = AnalyzedDfg::new(fig2());
            let out = select_patterns(&adfg, &cfg(pdef));
            assert!(
                out.patterns.covers(&adfg.dfg().color_set()),
                "Pdef={pdef}: colors must be covered"
            );
            assert!(out.patterns.len() <= pdef);
        }
    }

    #[test]
    fn subpatterns_are_deleted() {
        let adfg = AnalyzedDfg::new(fig4());
        let out = select_patterns(&adfg, &cfg(4));
        // {a} ⊑ {aa} and {b} ⊑ {bb} can never be selected after their
        // superpatterns.
        let strs: Vec<String> = out.patterns.iter().map(|p| p.to_string()).collect();
        assert!(!strs.contains(&"a".to_string()));
        assert!(!strs.contains(&"b".to_string()));
    }

    #[test]
    fn early_stop_when_pool_dry_and_covered() {
        // Fig. 4 has only 4 candidate patterns, 2 survive subpattern
        // deletion; with Pdef = 4 selection stops after exhausting them.
        let adfg = AnalyzedDfg::new(fig4());
        let out = select_patterns(&adfg, &cfg(4));
        assert_eq!(out.patterns.len(), 2);
        assert!(out.patterns.covers(&adfg.dfg().color_set()));
    }

    #[test]
    fn deterministic() {
        let adfg = AnalyzedDfg::new(fig2());
        let a = select_patterns(&adfg, &cfg(3));
        let b = select_patterns(&adfg, &cfg(3));
        assert_eq!(a, b);
    }

    #[test]
    fn span_limit_changes_candidates_not_coverage() {
        let adfg = AnalyzedDfg::new(fig2());
        for limit in [0u32, 1, 2] {
            let out = select_patterns(
                &adfg,
                &SelectConfig {
                    span_limit: Some(limit),
                    ..cfg(4)
                },
            );
            assert!(
                out.patterns.covers(&adfg.dfg().color_set()),
                "limit={limit}"
            );
        }
    }

    /// Cover engine vs reference, every toggle combination, both modes —
    /// outcomes must match exactly, priorities bit-for-bit. (Random-DAG
    /// coverage lives in the `prop_select_cover` suite.)
    #[test]
    fn engine_matches_reference_across_toggles() {
        for dfg in [fig2(), fig4()] {
            let adfg = AnalyzedDfg::new(dfg);
            let table = PatternTable::build(
                &adfg,
                mps_patterns::EnumerateConfig {
                    parallel: false,
                    ..Default::default()
                },
            );
            for pdef in [1usize, 2, 4, 6] {
                for (size_bonus, balancing, color_condition, pad) in [
                    (true, true, true, false),
                    (false, true, true, false),
                    (true, false, true, true),
                    (true, true, false, false),
                    (false, false, false, true),
                ] {
                    for parallel in [false, true] {
                        let scfg = SelectConfig {
                            pdef,
                            size_bonus,
                            balancing,
                            color_condition,
                            pad_fabricated: pad,
                            parallel,
                            ..Default::default()
                        };
                        let fast = select_from_table(&adfg, &table, &scfg);
                        let slow = select_from_table_reference(&adfg, &table, &scfg);
                        assert_eq!(
                            fast, slow,
                            "pdef={pdef} bonus={size_bonus} bal={balancing} \
                             cond={color_condition} pad={pad} par={parallel}"
                        );
                    }
                }
            }
        }
    }
}
