//! The pattern selection loop (paper Fig. 7).

use crate::config::SelectConfig;
use crate::priority::eq8_priority;
use mps_dfg::AnalyzedDfg;
use mps_patterns::{Pattern, PatternId, PatternSet, PatternStats, PatternTable};

/// What happened in one selection round.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundInfo {
    /// The pattern chosen this round.
    pub chosen: Pattern,
    /// Its Eq. 8 priority at selection time (0.0 for fabricated patterns).
    pub priority: f64,
    /// `true` if the pattern was fabricated from uncovered colors because
    /// no candidate had nonzero priority (Fig. 7, line 3).
    pub fabricated: bool,
    /// Candidates still alive when the round started.
    pub candidates_alive: usize,
}

/// Result of pattern selection.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectionOutcome {
    /// The selected patterns, in selection order (≤ `Pdef`; fewer only if
    /// the candidate pool ran dry *and* every color was already covered).
    pub patterns: PatternSet,
    /// Per-round details, for inspection and the worked-example tests.
    pub rounds: Vec<RoundInfo>,
}

impl SelectionOutcome {
    /// Number of fabricated patterns.
    pub fn fabricated_count(&self) -> usize {
        self.rounds.iter().filter(|r| r.fabricated).count()
    }
}

/// Run the §5.2 selection algorithm against a prebuilt pattern table.
///
/// Exposed separately from [`select_patterns`] so callers can reuse one
/// (expensive) enumeration across many `Pdef` values, as Table 7 does.
pub fn select_from_table(
    adfg: &AnalyzedDfg,
    table: &PatternTable,
    cfg: &SelectConfig,
) -> SelectionOutcome {
    let num_nodes = adfg.len();
    let complete_colors = adfg.dfg().color_set(); // the paper's L
    let mut selected_colors = mps_dfg::ColorSet::new(); // Ls
    let mut selected = PatternSet::new(); // Ps
    let mut selected_freq = vec![0u64; num_nodes]; // Σ_{Ps} h(p̄_i, ·)
                                                   // Candidate liveness and statistics, both indexed by `PatternId` — the
                                                   // round loop below never touches a hash map.
    let mut alive: Vec<bool> = vec![true; table.len()];
    let stats: &[PatternStats] = table.stats();
    let mut rounds = Vec::with_capacity(cfg.pdef);

    for _round in 0..cfg.pdef {
        let remaining_after_this = cfg.pdef - selected.len() - 1;
        let alive_count = alive.iter().filter(|&&a| a).count();

        // Find the best candidate with nonzero priority.
        let mut best: Option<(f64, PatternId)> = None;
        for (i, s) in stats.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            if cfg.color_condition
                && !color_condition_holds(
                    &s.pattern,
                    &complete_colors,
                    &selected_colors,
                    cfg.capacity,
                    remaining_after_this,
                )
            {
                continue; // priority forced to zero (Eq. 9 violated)
            }
            let f = eq8_priority(s, &selected_freq, cfg);
            if f <= 0.0 {
                continue;
            }
            // Strict `>` keeps the earliest (canonical-order) pattern on
            // exact ties, making selection deterministic.
            if best.is_none_or(|(bf, _)| f > bf) {
                best = Some((f, PatternId(i as u32)));
            }
        }

        match best {
            Some((f, id)) => {
                let winner = &stats[id.index()];
                let chosen = winner.pattern;
                for (dst, &h) in selected_freq.iter_mut().zip(winner.node_freq.iter()) {
                    *dst += h;
                }
                selected_colors = selected_colors.union(&chosen.color_set());
                selected.insert(chosen);
                // Delete the chosen pattern and all its subpatterns.
                for (i, s) in stats.iter().enumerate() {
                    if alive[i] && s.pattern.is_subpattern_of(&chosen) {
                        alive[i] = false;
                    }
                }
                rounds.push(RoundInfo {
                    chosen,
                    priority: f,
                    fabricated: false,
                    candidates_alive: alive_count,
                });
            }
            None => {
                // Fabricate from uncovered colors (Fig. 7 line 3).
                let mut slots: Vec<mps_dfg::Color> = complete_colors
                    .difference(&selected_colors)
                    .iter()
                    .take(cfg.capacity)
                    .collect();
                if slots.is_empty() {
                    // Everything is covered and no candidate adds value:
                    // selecting more patterns cannot help. Stop early.
                    break;
                }
                if cfg.pad_fabricated {
                    pad_to_capacity(&mut slots, cfg.capacity, adfg);
                }
                let fab = Pattern::from_colors(slots);
                selected_colors = selected_colors.union(&fab.color_set());
                selected.insert(fab);
                for (i, s) in stats.iter().enumerate() {
                    if alive[i] && s.pattern.is_subpattern_of(&fab) {
                        alive[i] = false;
                    }
                }
                rounds.push(RoundInfo {
                    chosen: fab,
                    priority: 0.0,
                    fabricated: true,
                    candidates_alive: alive_count,
                });
            }
        }
    }

    SelectionOutcome {
        patterns: selected,
        rounds,
    }
}

/// Fill `slots` up to `capacity` by repeatedly granting the next slot to
/// the color with the highest remaining demand per slot (the per-color
/// lower-bound heuristic): color `c` with `N_c` nodes and `k_c` slots so
/// far needs at least `⌈N_c / k_c⌉` cycles, so the padder always grows the
/// current bottleneck.
fn pad_to_capacity(slots: &mut Vec<mps_dfg::Color>, capacity: usize, adfg: &AnalyzedDfg) {
    let hist = adfg.dfg().color_histogram();
    while slots.len() < capacity {
        let best = slots
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .max_by_key(|&&c| {
                let count = hist.get(c.index()).copied().unwrap_or(0);
                let k = slots.iter().filter(|&&x| x == c).count();
                // ceil(count / k) scaled to avoid float; k ≥ 1 here.
                count.div_ceil(k)
            })
            .copied();
        match best {
            Some(c) => slots.push(c),
            None => break,
        }
    }
}

/// Eq. 9: `|Ln(p̄)| ≥ |L| − |Ls| − C·(Pdef − |Ps| − 1)`.
fn color_condition_holds(
    pattern: &Pattern,
    complete: &mps_dfg::ColorSet,
    selected: &mps_dfg::ColorSet,
    capacity: usize,
    remaining_after_this: usize,
) -> bool {
    let new_colors = pattern.color_set().difference(selected).len() as i64;
    let uncovered = (complete.len() - complete.intersection(selected).len()) as i64;
    let rhs = uncovered - (capacity as i64) * (remaining_after_this as i64);
    new_colors >= rhs
}

/// Enumerate antichains, classify them, and select `Pdef` patterns — the
/// complete §5 algorithm.
pub fn select_patterns(adfg: &AnalyzedDfg, cfg: &SelectConfig) -> SelectionOutcome {
    let table = PatternTable::build(adfg, cfg.enumerate_config());
    select_from_table(adfg, &table, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_workloads::{fig2, fig4};

    fn cfg(pdef: usize) -> SelectConfig {
        SelectConfig {
            pdef,
            parallel: false,
            ..Default::default()
        }
    }

    /// The paper's §5.2 worked example, both rounds: select {aa} (f=88),
    /// delete its subpattern {a}, then select {bb} (f=84).
    #[test]
    fn fig4_pdef2_selects_aa_then_bb() {
        let adfg = AnalyzedDfg::new(fig4());
        let out = select_patterns(&adfg, &cfg(2));
        let strs: Vec<String> = out.patterns.iter().map(|p| p.to_string()).collect();
        assert_eq!(strs, vec!["aa", "bb"]);
        assert_eq!(out.rounds[0].priority, 88.0);
        assert_eq!(out.rounds[1].priority, 84.0);
        assert_eq!(out.fabricated_count(), 0);
    }

    /// The paper's Pdef = 1 example: no single-color candidate satisfies
    /// the color number condition, so {ab} is fabricated.
    #[test]
    fn fig4_pdef1_fabricates_ab() {
        let adfg = AnalyzedDfg::new(fig4());
        let out = select_patterns(&adfg, &cfg(1));
        assert_eq!(out.patterns.len(), 1);
        assert_eq!(out.patterns.patterns()[0].to_string(), "ab");
        assert!(out.rounds[0].fabricated);
    }

    #[test]
    fn without_color_condition_pdef1_picks_aa_and_strands_b() {
        let adfg = AnalyzedDfg::new(fig4());
        let out = select_patterns(
            &adfg,
            &SelectConfig {
                color_condition: false,
                ..cfg(1)
            },
        );
        assert_eq!(out.patterns.patterns()[0].to_string(), "aa");
        // …which would make scheduling fail: the ablation benches measure
        // exactly this failure mode.
        assert!(!out.patterns.covers(&adfg.dfg().color_set()));
    }

    #[test]
    fn selected_patterns_always_cover_all_colors() {
        for pdef in 1..=5 {
            let adfg = AnalyzedDfg::new(fig2());
            let out = select_patterns(&adfg, &cfg(pdef));
            assert!(
                out.patterns.covers(&adfg.dfg().color_set()),
                "Pdef={pdef}: colors must be covered"
            );
            assert!(out.patterns.len() <= pdef);
        }
    }

    #[test]
    fn subpatterns_are_deleted() {
        let adfg = AnalyzedDfg::new(fig4());
        let out = select_patterns(&adfg, &cfg(4));
        // {a} ⊑ {aa} and {b} ⊑ {bb} can never be selected after their
        // superpatterns.
        let strs: Vec<String> = out.patterns.iter().map(|p| p.to_string()).collect();
        assert!(!strs.contains(&"a".to_string()));
        assert!(!strs.contains(&"b".to_string()));
    }

    #[test]
    fn early_stop_when_pool_dry_and_covered() {
        // Fig. 4 has only 4 candidate patterns, 2 survive subpattern
        // deletion; with Pdef = 4 selection stops after exhausting them.
        let adfg = AnalyzedDfg::new(fig4());
        let out = select_patterns(&adfg, &cfg(4));
        assert_eq!(out.patterns.len(), 2);
        assert!(out.patterns.covers(&adfg.dfg().color_set()));
    }

    #[test]
    fn deterministic() {
        let adfg = AnalyzedDfg::new(fig2());
        let a = select_patterns(&adfg, &cfg(3));
        let b = select_patterns(&adfg, &cfg(3));
        assert_eq!(a, b);
    }

    #[test]
    fn span_limit_changes_candidates_not_coverage() {
        let adfg = AnalyzedDfg::new(fig2());
        for limit in [0u32, 1, 2] {
            let out = select_patterns(
                &adfg,
                &SelectConfig {
                    span_limit: Some(limit),
                    ..cfg(4)
                },
            );
            assert!(
                out.patterns.covers(&adfg.dfg().color_set()),
                "limit={limit}"
            );
        }
    }
}
