//! Simulated-annealing refinement of a pattern set.
//!
//! The paper closes with "in our future work we will go on working on the
//! priority function to improve the performance" — Eq. 8 is a one-shot
//! greedy heuristic scored by a *proxy* (antichain coverage), not by the
//! quantity the evaluation reports (schedule cycles). This module searches
//! the pattern-set space directly against the real objective: start from
//! any covering set (by default the Eq. 8 selection), propose local edits,
//! keep them with the Metropolis rule, and return the best set ever seen.
//!
//! Because the incumbent is returned whenever no proposal improves on it,
//! [`anneal_patterns`] is *never worse* than its starting point — making it
//! both a practical post-pass and an upper-bound probe for how much cycle
//! count the Eq. 8 proxy leaves on the table.

use crate::config::SelectConfig;
use mps_dfg::AnalyzedDfg;
use mps_patterns::{Pattern, PatternSet, PatternTable};
use mps_scheduler::{schedule_multi_pattern, MultiPatternConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the annealing search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnnealConfig {
    /// Number of proposals evaluated. Each proposal costs one scheduling
    /// run, so the default keeps small-graph searches near-instant.
    pub iterations: usize,
    /// Initial temperature, in cycles: a move that is `t0` cycles worse is
    /// accepted with probability `1/e` at the start.
    pub initial_temp: f64,
    /// Multiplicative cooling per iteration.
    pub cooling: f64,
    /// RNG seed — the whole search is deterministic per seed.
    pub seed: u64,
    /// Scheduler settings used to evaluate every candidate set.
    pub sched: MultiPatternConfig,
}

impl Default for AnnealConfig {
    fn default() -> AnnealConfig {
        AnnealConfig {
            iterations: 400,
            initial_temp: 2.0,
            cooling: 0.99,
            seed: 0x5eed,
            sched: MultiPatternConfig::default(),
        }
    }
}

/// Outcome of [`anneal_patterns`].
#[derive(Clone, Debug)]
pub struct AnnealResult {
    /// The best pattern set found.
    pub patterns: PatternSet,
    /// Its schedule length.
    pub cycles: usize,
    /// Schedule length of the starting set, for improvement reporting.
    pub initial_cycles: usize,
    /// Proposals that were accepted (moved the incumbent).
    pub accepted: usize,
    /// Proposals whose schedule was evaluated.
    pub evaluated: usize,
    /// Scheduling runs actually performed — `evaluated` minus the cost-
    /// cache hits (the walk revisits sets constantly, so this is usually
    /// much smaller).
    pub scheduling_runs: usize,
}

impl AnnealResult {
    /// Cycles shaved off the starting set.
    pub fn improvement(&self) -> usize {
        self.initial_cycles.saturating_sub(self.cycles)
    }
}

/// Evaluate a pattern set; uncoverable sets rank as unusable.
fn cost(adfg: &AnalyzedDfg, set: &PatternSet, sched: MultiPatternConfig) -> usize {
    match schedule_multi_pattern(adfg, set, sched) {
        Ok(r) => r.schedule.len(),
        Err(_) => usize::MAX,
    }
}

/// Memoized [`cost`]: the Metropolis walk revisits pattern sets constantly
/// (swap moves draw from a small candidate pool, and rejected moves leave
/// the incumbent in place), so one scheduling run per *distinct* set
/// serves the whole chain. Scheduling is deterministic, so memoization
/// cannot change any decision — only skip redundant runs; the cache key is
/// the set's canonical (sorted, deduplicated) member slice.
struct CostCache {
    sched: MultiPatternConfig,
    seen: std::collections::HashMap<Vec<Pattern>, usize>,
    /// Scheduling runs actually performed (cache misses).
    runs: usize,
}

impl CostCache {
    fn new(sched: MultiPatternConfig) -> CostCache {
        CostCache {
            sched,
            seen: std::collections::HashMap::new(),
            runs: 0,
        }
    }

    fn cost(&mut self, adfg: &AnalyzedDfg, set: &PatternSet) -> usize {
        if let Some(&c) = self.seen.get(set.patterns()) {
            return c;
        }
        let c = cost(adfg, set, self.sched);
        self.runs += 1;
        self.seen.insert(set.patterns().to_vec(), c);
        c
    }
}

/// Propose a neighbour of `set`: either swap one member for a random table
/// candidate, or mutate one slot of one member to a random graph color.
/// The proposal never leaves a color uncovered (such sets cost `MAX` and
/// would be rejected anyway, but filtering here saves scheduling runs).
fn propose(
    adfg: &AnalyzedDfg,
    set: &PatternSet,
    candidates: &[Pattern],
    rng: &mut StdRng,
) -> Option<PatternSet> {
    let members: Vec<Pattern> = set.patterns().to_vec();
    if members.is_empty() {
        return None;
    }
    let victim = rng.gen_range(0..members.len());
    let replacement = if !candidates.is_empty() && rng.gen_bool(0.5) {
        // Swap move.
        candidates[rng.gen_range(0..candidates.len())]
    } else {
        // Slot mutation move.
        let palette: Vec<mps_dfg::Color> = adfg.dfg().color_set().iter().collect();
        let mut colors: Vec<mps_dfg::Color> = members[victim].colors().to_vec();
        if colors.is_empty() {
            return None;
        }
        let slot = rng.gen_range(0..colors.len());
        colors[slot] = palette[rng.gen_range(0..palette.len())];
        Pattern::from_colors(colors)
    };
    let mut next: Vec<Pattern> = members;
    next[victim] = replacement;
    let set = PatternSet::from_patterns(next);
    set.covers(&adfg.dfg().color_set()).then_some(set)
}

/// Refine `initial` by simulated annealing against true schedule length.
///
/// `candidates` supplies swap targets; passing the patterns of a
/// [`PatternTable`] keeps proposals inside the §5.1 candidate space, while
/// an empty slice restricts the search to slot mutations.
pub fn anneal_patterns(
    adfg: &AnalyzedDfg,
    initial: &PatternSet,
    candidates: &[Pattern],
    cfg: AnnealConfig,
) -> AnnealResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut cache = CostCache::new(cfg.sched);
    let initial_cycles = cache.cost(adfg, initial);
    let mut current = initial.clone();
    let mut current_cost = initial_cycles;
    let mut best = current.clone();
    let mut best_cost = current_cost;
    let mut temp = cfg.initial_temp;
    let (mut accepted, mut evaluated) = (0usize, 0usize);

    for _ in 0..cfg.iterations {
        if let Some(next) = propose(adfg, &current, candidates, &mut rng) {
            evaluated += 1;
            let next_cost = cache.cost(adfg, &next);
            let delta = next_cost as f64 - current_cost as f64;
            let accept = delta <= 0.0
                || (next_cost != usize::MAX
                    && rng.gen_bool((-delta / temp.max(1e-9)).exp().clamp(0.0, 1.0)));
            if accept {
                current = next;
                current_cost = next_cost;
                accepted += 1;
                if current_cost < best_cost {
                    best = current.clone();
                    best_cost = current_cost;
                }
            }
        }
        temp *= cfg.cooling;
    }

    AnnealResult {
        patterns: best,
        cycles: best_cost,
        initial_cycles,
        accepted,
        evaluated,
        scheduling_runs: cache.runs,
    }
}

/// Convenience wrapper: run the paper's Eq. 8 selection, then anneal it
/// using the §5.1 candidate patterns as the swap pool.
pub fn select_and_anneal(
    adfg: &AnalyzedDfg,
    select: &SelectConfig,
    anneal: AnnealConfig,
) -> AnnealResult {
    let table = PatternTable::build(adfg, select.enumerate_config());
    let outcome = crate::select::select_from_table(adfg, &table, select);
    let candidates: Vec<Pattern> = table.iter().map(|s| s.pattern).collect();
    anneal_patterns(adfg, &outcome.patterns, &candidates, anneal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_workloads::{fig2, fig4};

    fn quick() -> AnnealConfig {
        AnnealConfig {
            iterations: 120,
            seed: 11,
            ..Default::default()
        }
    }

    #[test]
    fn never_worse_than_initial() {
        let adfg = AnalyzedDfg::new(fig2());
        for pdef in [1usize, 2, 3] {
            let r = select_and_anneal(
                &adfg,
                &SelectConfig {
                    pdef,
                    span_limit: Some(1),
                    parallel: false,
                    ..Default::default()
                },
                quick(),
            );
            assert!(
                r.cycles <= r.initial_cycles,
                "pdef {pdef}: annealed {} > initial {}",
                r.cycles,
                r.initial_cycles
            );
            assert!(r.patterns.covers(&adfg.dfg().color_set()));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let adfg = AnalyzedDfg::new(fig2());
        let cfg = SelectConfig {
            pdef: 2,
            span_limit: Some(1),
            parallel: false,
            ..Default::default()
        };
        let a = select_and_anneal(&adfg, &cfg, quick());
        let b = select_and_anneal(&adfg, &cfg, quick());
        assert_eq!(a.patterns, b.patterns);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn improves_a_bad_starting_set() {
        // Start from a deliberately poor covering set for the Fig. 4 graph
        // (single pattern {ab} per cycle ⇒ 5 cycles); annealing with the
        // table candidates should find something at least as good.
        let adfg = AnalyzedDfg::new(fig4());
        let bad = PatternSet::parse("ab ab").unwrap(); // dup collapses to 1
        let table = PatternTable::build(
            &adfg,
            mps_patterns::EnumerateConfig {
                parallel: false,
                ..Default::default()
            },
        );
        let candidates: Vec<Pattern> = table.iter().map(|s| s.pattern).collect();
        let r = anneal_patterns(&adfg, &bad, &candidates, quick());
        assert!(r.cycles <= r.initial_cycles);
        assert!(r.patterns.covers(&adfg.dfg().color_set()));
    }

    #[test]
    fn empty_candidate_pool_still_works() {
        let adfg = AnalyzedDfg::new(fig4());
        let start = PatternSet::parse("ab").unwrap();
        let r = anneal_patterns(&adfg, &start, &[], quick());
        assert!(r.cycles <= r.initial_cycles);
        assert!(r.patterns.covers(&adfg.dfg().color_set()));
    }

    #[test]
    fn reports_accounting() {
        let adfg = AnalyzedDfg::new(fig4());
        let start = PatternSet::parse("ab").unwrap();
        let r = anneal_patterns(&adfg, &start, &[], quick());
        assert!(r.evaluated <= 120);
        assert!(r.accepted <= r.evaluated);
        assert!(
            r.scheduling_runs <= r.evaluated + 1,
            "+1 for the initial set"
        );
        assert_eq!(r.improvement(), r.initial_cycles - r.cycles);
    }

    #[test]
    fn cost_cache_agrees_with_direct_cost() {
        let adfg = AnalyzedDfg::new(fig4());
        let mut cache = CostCache::new(Default::default());
        for s in ["ab", "aa bb", "ab", "aabb", "aa bb"] {
            let set = PatternSet::parse(s).unwrap();
            assert_eq!(
                cache.cost(&adfg, &set),
                cost(&adfg, &set, Default::default()),
                "{s}"
            );
        }
        assert_eq!(cache.runs, 3, "two of five lookups were cache hits");
    }
}
