//! Selection configuration.

/// Parameters of the pattern selection algorithm.
///
/// The paper's constants are `ε = 0.5` and `α = 20` (§5.2, "In our system");
/// `capacity` is the Montium's `C = 5`. The three boolean toggles exist for
/// the ablation benches (the paper's stated future work is tuning this
/// priority function):
///
/// * `size_bonus` — the `α·|p̄|²` term; without it, `{bb}` and `{b}` tie in
///   the paper's own worked example and the bigger pattern is picked only
///   by luck;
/// * `balancing` — the `Σ_{selected} h + ε` denominator; without it the
///   selector keeps re-buying antichains it already covered;
/// * `color_condition` — Eq. 9; without it some colors can end up in no
///   pattern and scheduling fails.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SelectConfig {
    /// Number of patterns to select (`Pdef`).
    pub pdef: usize,
    /// ALUs per tile (`C`), bounding pattern and antichain size.
    pub capacity: usize,
    /// Span limit for antichain enumeration (`None` = unlimited). Theorem 1
    /// motivates small limits; Table 5 quantifies the candidate-set
    /// reduction.
    pub span_limit: Option<u32>,
    /// Eq. 8's ε (divisor guard / balancing softness).
    pub epsilon: f64,
    /// Eq. 8's α (pattern-size bonus weight).
    pub alpha: f64,
    /// Enable the `α·|p̄|²` term.
    pub size_bonus: bool,
    /// Enable the balancing denominator.
    pub balancing: bool,
    /// Enforce the color number condition (Eq. 9).
    pub color_condition: bool,
    /// Pad fabricated patterns to full capacity with extra slots allocated
    /// proportionally to the graph's color histogram. The paper's Fig. 7
    /// fabricates from the uncovered colors only (its Fig. 4 example
    /// produces `{ab}` on a 5-ALU tile, leaving 3 dummies), which wastes
    /// slots whenever fabrication triggers; padding is a strict
    /// improvement but is off by default to stay paper-exact.
    pub pad_fabricated: bool,
    /// Enumerate antichains on multiple threads.
    pub parallel: bool,
}

impl Default for SelectConfig {
    fn default() -> Self {
        SelectConfig {
            pdef: 4,
            capacity: 5,
            span_limit: None,
            epsilon: 0.5,
            alpha: 20.0,
            size_bonus: true,
            balancing: true,
            color_condition: true,
            pad_fabricated: false,
            parallel: true,
        }
    }
}

impl SelectConfig {
    /// Paper defaults with a given `Pdef`.
    pub fn with_pdef(pdef: usize) -> SelectConfig {
        SelectConfig {
            pdef,
            ..Default::default()
        }
    }

    /// The enumeration config implied by this selection config.
    pub fn enumerate_config(&self) -> mps_patterns::EnumerateConfig {
        mps_patterns::EnumerateConfig {
            capacity: self.capacity,
            span_limit: self.span_limit,
            parallel: self.parallel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = SelectConfig::default();
        assert_eq!(c.epsilon, 0.5);
        assert_eq!(c.alpha, 20.0);
        assert_eq!(c.capacity, 5);
        assert!(c.size_bonus && c.balancing && c.color_condition);
        assert!(
            !c.pad_fabricated,
            "padding is a documented extension, off by default"
        );
    }

    #[test]
    fn with_pdef_sets_only_pdef() {
        let c = SelectConfig::with_pdef(2);
        assert_eq!(c.pdef, 2);
        assert_eq!(c.capacity, 5);
    }

    #[test]
    fn enumerate_config_propagates() {
        let c = SelectConfig {
            span_limit: Some(3),
            capacity: 4,
            parallel: false,
            ..Default::default()
        };
        let e = c.enumerate_config();
        assert_eq!(e.capacity, 4);
        assert_eq!(e.span_limit, Some(3));
        assert!(!e.parallel);
    }
}
