//! Node-coverage greedy selection, a set-cover-flavoured baseline.
//!
//! Eq. 8 maximizes *antichain mass* with a balancing denominator; a simpler
//! instinct is classic greedy set cover over **nodes**: each round, pick the
//! pattern whose antichains touch the most nodes that no selected pattern
//! touches yet. Once every node is touched the tie-breaks take over (total
//! antichain count, then canonical order). The paper's color number
//! condition (Eq. 9) and the Fig. 7 fabrication fallback are kept, so the
//! result is always schedulable.
//!
//! This baseline separates two effects that Eq. 8 mixes: *where* patterns
//! apply (node coverage) and *how often* they apply (antichain counts). The
//! cross-selector bench (`mps-bench --bin selectors`) quantifies what the
//! mixing buys.
//!
//! [`node_cover_from_table`] is the cover-engine implementation: the
//! covered-node set is a packed bitset and a candidate's gain is one
//! ANDNOT+popcount over its [`mps_patterns::CoverMatrix`] row. Gains are
//! monotone non-increasing (the covered set only grows), so — like the
//! Eq. 8 cover engine — the per-round argmax runs lazily over a max-heap
//! of cached gains, recomputing a candidate only when a previous winner's
//! row intersected its own. [`node_cover_from_table_reference`] keeps the
//! original per-node scan as the decision oracle.

use crate::config::SelectConfig;
use crate::select::{
    color_condition_holds, deleted_by, packed_keys, RoundInfo, SelectionOutcome, PAR_SCORE_CUTOFF,
};
use mps_dfg::AnalyzedDfg;
use mps_patterns::{Pattern, PatternId, PatternSet, PatternTable};

/// Max-heap entry: highest `(gain, count)` first, ties toward the
/// smallest id — the reference scan's strict-`>` tie-break.
#[derive(Clone, Copy, PartialEq, Eq)]
struct GainEntry {
    gain: u64,
    count: u64,
    id: u32,
}

impl PartialOrd for GainEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for GainEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.gain, self.count)
            .cmp(&(other.gain, other.count))
            .then(other.id.cmp(&self.id))
    }
}

/// Greedy node-coverage selection against a prebuilt pattern table — the
/// cover engine (decision-identical to
/// [`node_cover_from_table_reference`]).
pub fn node_cover_from_table(
    adfg: &AnalyzedDfg,
    table: &PatternTable,
    cfg: &SelectConfig,
) -> SelectionOutcome {
    let complete_colors = adfg.dfg().color_set();
    let stats = table.stats();
    let cover = table.cover();
    let mut selected_colors = mps_dfg::ColorSet::new();
    let mut selected = PatternSet::new();
    let mut covered = cover.blank_cover(); // nodes touched by Ps, packed
    let mut rounds = Vec::with_capacity(cfg.pdef);

    // Gains only fall (the covered set only grows; fabrication covers
    // nothing), so cached gains are upper bounds and the lazy-greedy heap
    // argmax of the Eq. 8 engine applies verbatim — with the round-
    // invariant antichain count as the secondary key.
    let gain_one = |i: u32, covered: &[u64]| cover.count_uncovered(PatternId(i), covered) as u64;
    let initial: Vec<u64> = if cfg.parallel && stats.len() >= PAR_SCORE_CUTOFF {
        let ids: Vec<u32> = (0..stats.len() as u32).collect();
        mps_par::par_map(&ids, |&i| gain_one(i, &covered))
    } else {
        (0..stats.len() as u32)
            .map(|i| gain_one(i, &covered))
            .collect()
    };
    let mut gains = initial;
    let mut heap = std::collections::BinaryHeap::with_capacity(stats.len());
    for (i, &g) in gains.iter().enumerate() {
        heap.push(GainEntry {
            gain: g,
            count: stats[i].antichain_count,
            id: i as u32,
        });
    }
    let packed = packed_keys(stats);
    let mut dirty = vec![false; stats.len()];
    let mut dead = vec![false; stats.len()];
    let mut alive: Vec<u32> = (0..stats.len() as u32).collect();
    let mut winner_row: Vec<u64> = Vec::new();
    let mut aside: Vec<GainEntry> = Vec::new();

    for _round in 0..cfg.pdef {
        let remaining_after_this = cfg.pdef - selected.len() - 1;
        let alive_count = alive.len();

        let mut best: Option<(u64, PatternId)> = None;
        while let Some(entry) = heap.pop() {
            let i = entry.id as usize;
            if dead[i] || entry.gain != gains[i] {
                continue; // deleted, or superseded by a fresher entry
            }
            if dirty[i] {
                let g = gain_one(entry.id, &covered);
                dirty[i] = false;
                gains[i] = g;
                heap.push(GainEntry { gain: g, ..entry });
                continue;
            }
            if cfg.color_condition
                && !color_condition_holds(
                    &stats[i].pattern,
                    &complete_colors,
                    &selected_colors,
                    cfg.capacity,
                    remaining_after_this,
                )
            {
                aside.push(entry); // Eq. 9 violated this round only
                continue;
            }
            best = Some((entry.gain, PatternId(entry.id)));
            break;
        }
        heap.extend(aside.drain(..));

        match best {
            Some((new_nodes, id)) => {
                let chosen = stats[id.index()].pattern;
                cover.cover_with(id, &mut covered);
                selected_colors = selected_colors.union(&chosen.color_set());
                selected.insert(chosen);
                let chosen_key = packed[id.index()];
                alive.retain(|&i| {
                    let gone = deleted_by(
                        &stats[i as usize].pattern,
                        packed[i as usize],
                        &chosen,
                        chosen_key,
                    );
                    if gone {
                        dead[i as usize] = true;
                    }
                    !gone
                });
                cover.copy_row_into(id, &mut winner_row);
                for &i in &alive {
                    if cover.intersects(PatternId(i), &winner_row) {
                        dirty[i as usize] = true;
                    }
                }
                rounds.push(RoundInfo {
                    chosen,
                    priority: new_nodes as f64,
                    fabricated: false,
                    candidates_alive: alive_count,
                });
            }
            None => {
                let slots: Vec<mps_dfg::Color> = complete_colors
                    .difference(&selected_colors)
                    .iter()
                    .take(cfg.capacity)
                    .collect();
                if slots.is_empty() {
                    break;
                }
                let fab = Pattern::from_colors(slots);
                selected_colors = selected_colors.union(&fab.color_set());
                selected.insert(fab);
                let fab_key = fab.packed();
                alive.retain(|&i| {
                    let gone = deleted_by(
                        &stats[i as usize].pattern,
                        packed[i as usize],
                        &fab,
                        fab_key,
                    );
                    if gone {
                        dead[i as usize] = true;
                    }
                    !gone
                });
                // Fabrication covers no antichains: `covered` is unchanged
                // and every cached gain stays valid.
                rounds.push(RoundInfo {
                    chosen: fab,
                    priority: 0.0,
                    fabricated: true,
                    candidates_alive: alive_count,
                });
            }
        }
    }

    SelectionOutcome {
        patterns: selected,
        rounds,
    }
}

/// The pre-cover-engine implementation: every round rescans every alive
/// candidate's dense frequency row against a `Vec<bool>` covered map.
/// Kept as the decision oracle for [`node_cover_from_table`] and the
/// baseline of the `throughput` bench's selection rows.
pub fn node_cover_from_table_reference(
    adfg: &AnalyzedDfg,
    table: &PatternTable,
    cfg: &SelectConfig,
) -> SelectionOutcome {
    let num_nodes = adfg.len();
    let complete_colors = adfg.dfg().color_set();
    let mut selected_colors = mps_dfg::ColorSet::new();
    let mut selected = PatternSet::new();
    let mut covered = vec![false; num_nodes]; // nodes touched by Ps
    let mut alive: Vec<bool> = vec![true; table.len()];
    let stats: Vec<&mps_patterns::PatternStats> = table.iter().collect();
    let mut rounds = Vec::with_capacity(cfg.pdef);

    for _round in 0..cfg.pdef {
        let remaining_after_this = cfg.pdef - selected.len() - 1;
        let alive_count = alive.iter().filter(|&&a| a).count();

        let mut best: Option<((u64, u64), usize)> = None;
        for (i, s) in stats.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            if cfg.color_condition
                && !color_condition_holds(
                    &s.pattern,
                    &complete_colors,
                    &selected_colors,
                    cfg.capacity,
                    remaining_after_this,
                )
            {
                continue;
            }
            let new_nodes = s
                .node_freq
                .iter()
                .zip(covered.iter())
                .filter(|(&h, &c)| h > 0 && !c)
                .count() as u64;
            let key = (new_nodes, s.antichain_count);
            if best.is_none_or(|(bk, _)| key > bk) {
                best = Some((key, i));
            }
        }

        match best {
            Some(((new_nodes, _), idx)) => {
                let chosen = stats[idx].pattern;
                for (c, &h) in covered.iter_mut().zip(stats[idx].node_freq.iter()) {
                    *c |= h > 0;
                }
                selected_colors = selected_colors.union(&chosen.color_set());
                selected.insert(chosen);
                for (i, s) in stats.iter().enumerate() {
                    if alive[i] && s.pattern.is_subpattern_of(&chosen) {
                        alive[i] = false;
                    }
                }
                rounds.push(RoundInfo {
                    chosen,
                    priority: new_nodes as f64,
                    fabricated: false,
                    candidates_alive: alive_count,
                });
            }
            None => {
                let slots: Vec<mps_dfg::Color> = complete_colors
                    .difference(&selected_colors)
                    .iter()
                    .take(cfg.capacity)
                    .collect();
                if slots.is_empty() {
                    break;
                }
                let fab = Pattern::from_colors(slots);
                selected_colors = selected_colors.union(&fab.color_set());
                selected.insert(fab);
                for (i, s) in stats.iter().enumerate() {
                    if alive[i] && s.pattern.is_subpattern_of(&fab) {
                        alive[i] = false;
                    }
                }
                rounds.push(RoundInfo {
                    chosen: fab,
                    priority: 0.0,
                    fabricated: true,
                    candidates_alive: alive_count,
                });
            }
        }
    }

    SelectionOutcome {
        patterns: selected,
        rounds,
    }
}

/// Enumerate, classify, and select by greedy node coverage.
pub fn node_cover_greedy(adfg: &AnalyzedDfg, cfg: &SelectConfig) -> SelectionOutcome {
    let table = PatternTable::build(adfg, cfg.enumerate_config());
    node_cover_from_table(adfg, &table, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_workloads::{fig2, fig4};

    fn cfg(pdef: usize) -> SelectConfig {
        SelectConfig {
            pdef,
            parallel: false,
            ..Default::default()
        }
    }

    #[test]
    fn covers_all_colors() {
        let adfg = AnalyzedDfg::new(fig2());
        for pdef in 1..=5 {
            let out = node_cover_greedy(&adfg, &cfg(pdef));
            assert!(out.patterns.covers(&adfg.dfg().color_set()), "pdef {pdef}");
            assert!(out.patterns.len() <= pdef);
        }
    }

    #[test]
    fn fig4_first_pick_touches_most_nodes() {
        // {aa} touches a1,a2,a3 (3 nodes); {bb} touches 2; singletons tie
        // with their superpatterns on nodes but lose on antichain count...
        // {a} also touches 3 nodes with 3 antichains vs {aa}'s 2. Node
        // cover prefers {a} by count tie then antichain count 3 > 2.
        let adfg = AnalyzedDfg::new(fig4());
        let out = node_cover_greedy(&adfg, &cfg(2));
        assert_eq!(out.rounds[0].chosen.to_string(), "a");
        assert!(out.patterns.covers(&adfg.dfg().color_set()));
    }

    #[test]
    fn pdef1_fabricates_like_the_paper() {
        let adfg = AnalyzedDfg::new(fig4());
        let out = node_cover_greedy(&adfg, &cfg(1));
        assert_eq!(out.patterns.patterns()[0].to_string(), "ab");
        assert!(out.rounds[0].fabricated);
    }

    #[test]
    fn schedulable_end_to_end() {
        let adfg = AnalyzedDfg::new(fig2());
        let out = node_cover_greedy(&adfg, &cfg(3));
        let r = mps_scheduler::schedule_multi_pattern(
            &adfg,
            &out.patterns,
            mps_scheduler::MultiPatternConfig::default(),
        )
        .unwrap();
        r.schedule.validate(&adfg, Some(&out.patterns)).unwrap();
    }

    #[test]
    fn deterministic() {
        let adfg = AnalyzedDfg::new(fig2());
        assert_eq!(
            node_cover_greedy(&adfg, &cfg(3)).patterns,
            node_cover_greedy(&adfg, &cfg(3)).patterns
        );
    }

    /// Cover engine vs dense oracle on the worked examples, with and
    /// without the color condition, both execution modes.
    #[test]
    fn engine_matches_reference() {
        for dfg in [fig2(), fig4()] {
            let adfg = AnalyzedDfg::new(dfg);
            let table = mps_patterns::PatternTable::build(
                &adfg,
                mps_patterns::EnumerateConfig {
                    parallel: false,
                    ..Default::default()
                },
            );
            for pdef in [1usize, 2, 3, 5] {
                for color_condition in [true, false] {
                    for parallel in [false, true] {
                        let scfg = SelectConfig {
                            pdef,
                            color_condition,
                            parallel,
                            ..Default::default()
                        };
                        assert_eq!(
                            node_cover_from_table(&adfg, &table, &scfg),
                            node_cover_from_table_reference(&adfg, &table, &scfg),
                            "pdef={pdef} cond={color_condition} par={parallel}"
                        );
                    }
                }
            }
        }
    }
}
