//! Node-coverage greedy selection, a set-cover-flavoured baseline.
//!
//! Eq. 8 maximizes *antichain mass* with a balancing denominator; a simpler
//! instinct is classic greedy set cover over **nodes**: each round, pick the
//! pattern whose antichains touch the most nodes that no selected pattern
//! touches yet. Once every node is touched the tie-breaks take over (total
//! antichain count, then canonical order). The paper's color number
//! condition (Eq. 9) and the Fig. 7 fabrication fallback are kept, so the
//! result is always schedulable.
//!
//! This baseline separates two effects that Eq. 8 mixes: *where* patterns
//! apply (node coverage) and *how often* they apply (antichain counts). The
//! cross-selector bench (`mps-bench --bin selectors`) quantifies what the
//! mixing buys.

use crate::config::SelectConfig;
use crate::select::RoundInfo;
use crate::select::SelectionOutcome;
use mps_dfg::AnalyzedDfg;
use mps_patterns::{Pattern, PatternSet, PatternTable};

/// Greedy node-coverage selection against a prebuilt pattern table.
pub fn node_cover_from_table(
    adfg: &AnalyzedDfg,
    table: &PatternTable,
    cfg: &SelectConfig,
) -> SelectionOutcome {
    let num_nodes = adfg.len();
    let complete_colors = adfg.dfg().color_set();
    let mut selected_colors = mps_dfg::ColorSet::new();
    let mut selected = PatternSet::new();
    let mut covered = vec![false; num_nodes]; // nodes touched by Ps
    let mut alive: Vec<bool> = vec![true; table.len()];
    let stats: Vec<&mps_patterns::PatternStats> = table.iter().collect();
    let mut rounds = Vec::with_capacity(cfg.pdef);

    for _round in 0..cfg.pdef {
        let remaining_after_this = cfg.pdef - selected.len() - 1;
        let alive_count = alive.iter().filter(|&&a| a).count();

        let mut best: Option<((u64, u64), usize)> = None;
        for (i, s) in stats.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            if cfg.color_condition
                && !color_condition_holds(
                    &s.pattern,
                    &complete_colors,
                    &selected_colors,
                    cfg.capacity,
                    remaining_after_this,
                )
            {
                continue;
            }
            let new_nodes = s
                .node_freq
                .iter()
                .zip(covered.iter())
                .filter(|(&h, &c)| h > 0 && !c)
                .count() as u64;
            let key = (new_nodes, s.antichain_count);
            if best.is_none_or(|(bk, _)| key > bk) {
                best = Some((key, i));
            }
        }

        match best {
            Some(((new_nodes, _), idx)) => {
                let chosen = stats[idx].pattern;
                for (c, &h) in covered.iter_mut().zip(stats[idx].node_freq.iter()) {
                    *c |= h > 0;
                }
                selected_colors = selected_colors.union(&chosen.color_set());
                selected.insert(chosen);
                for (i, s) in stats.iter().enumerate() {
                    if alive[i] && s.pattern.is_subpattern_of(&chosen) {
                        alive[i] = false;
                    }
                }
                rounds.push(RoundInfo {
                    chosen,
                    priority: new_nodes as f64,
                    fabricated: false,
                    candidates_alive: alive_count,
                });
            }
            None => {
                let slots: Vec<mps_dfg::Color> = complete_colors
                    .difference(&selected_colors)
                    .iter()
                    .take(cfg.capacity)
                    .collect();
                if slots.is_empty() {
                    break;
                }
                let fab = Pattern::from_colors(slots);
                selected_colors = selected_colors.union(&fab.color_set());
                selected.insert(fab);
                for (i, s) in stats.iter().enumerate() {
                    if alive[i] && s.pattern.is_subpattern_of(&fab) {
                        alive[i] = false;
                    }
                }
                rounds.push(RoundInfo {
                    chosen: fab,
                    priority: 0.0,
                    fabricated: true,
                    candidates_alive: alive_count,
                });
            }
        }
    }

    SelectionOutcome {
        patterns: selected,
        rounds,
    }
}

/// Eq. 9 — same rule the main selector enforces.
fn color_condition_holds(
    pattern: &Pattern,
    complete: &mps_dfg::ColorSet,
    selected: &mps_dfg::ColorSet,
    capacity: usize,
    remaining_after_this: usize,
) -> bool {
    let new_colors = pattern.color_set().difference(selected).len() as i64;
    let uncovered = (complete.len() - complete.intersection(selected).len()) as i64;
    let rhs = uncovered - (capacity as i64) * (remaining_after_this as i64);
    new_colors >= rhs
}

/// Enumerate, classify, and select by greedy node coverage.
pub fn node_cover_greedy(adfg: &AnalyzedDfg, cfg: &SelectConfig) -> SelectionOutcome {
    let table = PatternTable::build(adfg, cfg.enumerate_config());
    node_cover_from_table(adfg, &table, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_workloads::{fig2, fig4};

    fn cfg(pdef: usize) -> SelectConfig {
        SelectConfig {
            pdef,
            parallel: false,
            ..Default::default()
        }
    }

    #[test]
    fn covers_all_colors() {
        let adfg = AnalyzedDfg::new(fig2());
        for pdef in 1..=5 {
            let out = node_cover_greedy(&adfg, &cfg(pdef));
            assert!(out.patterns.covers(&adfg.dfg().color_set()), "pdef {pdef}");
            assert!(out.patterns.len() <= pdef);
        }
    }

    #[test]
    fn fig4_first_pick_touches_most_nodes() {
        // {aa} touches a1,a2,a3 (3 nodes); {bb} touches 2; singletons tie
        // with their superpatterns on nodes but lose on antichain count...
        // {a} also touches 3 nodes with 3 antichains vs {aa}'s 2. Node
        // cover prefers {a} by count tie then antichain count 3 > 2.
        let adfg = AnalyzedDfg::new(fig4());
        let out = node_cover_greedy(&adfg, &cfg(2));
        assert_eq!(out.rounds[0].chosen.to_string(), "a");
        assert!(out.patterns.covers(&adfg.dfg().color_set()));
    }

    #[test]
    fn pdef1_fabricates_like_the_paper() {
        let adfg = AnalyzedDfg::new(fig4());
        let out = node_cover_greedy(&adfg, &cfg(1));
        assert_eq!(out.patterns.patterns()[0].to_string(), "ab");
        assert!(out.rounds[0].fabricated);
    }

    #[test]
    fn schedulable_end_to_end() {
        let adfg = AnalyzedDfg::new(fig2());
        let out = node_cover_greedy(&adfg, &cfg(3));
        let r = mps_scheduler::schedule_multi_pattern(
            &adfg,
            &out.patterns,
            mps_scheduler::MultiPatternConfig::default(),
        )
        .unwrap();
        r.schedule.validate(&adfg, Some(&out.patterns)).unwrap();
    }

    #[test]
    fn deterministic() {
        let adfg = AnalyzedDfg::new(fig2());
        assert_eq!(
            node_cover_greedy(&adfg, &cfg(3)).patterns,
            node_cover_greedy(&adfg, &cfg(3)).patterns
        );
    }
}
