//! Alternative selection priority functions — the paper's stated future
//! work ("we will go on working on the priority function to improve the
//! performance").
//!
//! The published Eq. 8 weighs every node equally, so on
//! multiplication-rich graphs the flood of multiplication antichains
//! drowns the (scarcer but schedule-critical) adder slots — the 5DFT
//! `Pdef = 1` miss documented in EXPERIMENTS.md. [`scarcity_priority`]
//! normalizes each node's contribution by how many antichains cover its
//! *color* overall, so a slot for a rare color is worth as much as a slot
//! for a ubiquitous one. [`select_with_priority`] reruns the Fig. 7 loop
//! with any [`PriorityFn`].

use crate::config::SelectConfig;
use mps_dfg::{AnalyzedDfg, ColorSet};
use mps_patterns::{Pattern, PatternSet, PatternStats, PatternTable};

/// A pluggable selection priority: `(stats, selected_freq, cfg) → score`.
/// Candidates scoring `<= 0` are skipped (like Eq. 9 violations).
pub type PriorityFn = fn(&PatternStats, &[u64], &SelectConfig, &ScarcityWeights) -> f64;

/// Per-color scarcity weights, precomputed once per table.
#[derive(Clone, Debug, Default)]
pub struct ScarcityWeights {
    /// `weight[color_index]` = `1 / (total antichain slots of this color)`,
    /// normalized so the most common color has weight 1.
    pub weight: Vec<f64>,
    /// The same weight expanded per node (index-aligned with `node_freq`).
    pub node_weight: Vec<f64>,
}

impl ScarcityWeights {
    /// Compute from a pattern table and the graph's node colors.
    pub fn compute(adfg: &AnalyzedDfg, table: &PatternTable) -> ScarcityWeights {
        let num_colors = adfg
            .dfg()
            .node_ids()
            .map(|v| adfg.dfg().color(v).index() + 1)
            .max()
            .unwrap_or(0);
        let mut mass = vec![0f64; num_colors];
        for stats in table.iter() {
            for (n, &h) in stats.node_freq.iter().enumerate() {
                if h > 0 {
                    let ci = adfg.dfg().color(mps_dfg::NodeId(n as u32)).index();
                    mass[ci] += h as f64;
                }
            }
        }
        let max = mass.iter().copied().fold(0.0f64, f64::max).max(1.0);
        let weight: Vec<f64> = mass
            .iter()
            .map(|&m| if m > 0.0 { max / m } else { 1.0 })
            .collect();
        let node_weight = adfg
            .dfg()
            .node_ids()
            .map(|v| {
                weight
                    .get(adfg.dfg().color(v).index())
                    .copied()
                    .unwrap_or(1.0)
            })
            .collect();
        ScarcityWeights {
            weight,
            node_weight,
        }
    }
}

/// The published Eq. 8, adapted to the pluggable signature.
pub fn eq8_variant(
    stats: &PatternStats,
    selected_freq: &[u64],
    cfg: &SelectConfig,
    _w: &ScarcityWeights,
) -> f64 {
    crate::priority::eq8_priority(stats, selected_freq, cfg)
}

/// Scarcity-weighted Eq. 8: each node's `h/(Σh + ε)` term is multiplied
/// by its color's scarcity weight. Uses the node→color map embedded in
/// the weights (index-aligned with `node_freq`), which requires the
/// caller to pass the weights computed from the same graph.
pub fn scarcity_priority(
    stats: &PatternStats,
    selected_freq: &[u64],
    cfg: &SelectConfig,
    w: &ScarcityWeights,
) -> f64 {
    let mut sum = 0.0;
    for (n, &h) in stats.node_freq.iter().enumerate() {
        if h == 0 {
            continue;
        }
        let denom = if cfg.balancing {
            selected_freq[n] as f64 + cfg.epsilon
        } else {
            cfg.epsilon
        };
        sum += w.node_weight[n] * h as f64 / denom;
    }
    if cfg.size_bonus {
        let size = stats.pattern.size() as f64;
        sum += cfg.alpha * size * size;
    }
    sum
}

/// Run the Fig. 7 loop with an arbitrary priority function.
pub fn select_with_priority(
    adfg: &AnalyzedDfg,
    cfg: &SelectConfig,
    priority: PriorityFn,
) -> PatternSet {
    let table = PatternTable::build(adfg, cfg.enumerate_config());
    let weights = ScarcityWeights::compute(adfg, &table);
    let complete = adfg.dfg().color_set();
    let stats: Vec<&PatternStats> = table.iter().collect();
    let mut alive = vec![true; stats.len()];
    let mut selected = PatternSet::new();
    let mut selected_colors = ColorSet::new();
    let mut selected_freq = vec![0u64; adfg.len()];

    for _round in 0..cfg.pdef {
        let remaining_after = cfg.pdef - selected.len() - 1;
        let mut best: Option<(f64, usize)> = None;
        for (i, s) in stats.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            if cfg.color_condition {
                let new_colors = s.pattern.color_set().difference(&selected_colors).len() as i64;
                let uncovered =
                    (complete.len() - complete.intersection(&selected_colors).len()) as i64;
                if new_colors < uncovered - (cfg.capacity as i64) * (remaining_after as i64) {
                    continue;
                }
            }
            let f = priority(s, &selected_freq, cfg, &weights);
            if f <= 0.0 {
                continue;
            }
            if best.is_none_or(|(bf, _)| f > bf) {
                best = Some((f, i));
            }
        }
        match best {
            Some((_, idx)) => {
                let chosen = stats[idx].pattern;
                for (dst, &h) in selected_freq.iter_mut().zip(stats[idx].node_freq.iter()) {
                    *dst += h;
                }
                selected_colors = selected_colors.union(&chosen.color_set());
                selected.insert(chosen);
                for (i, s) in stats.iter().enumerate() {
                    if alive[i] && s.pattern.is_subpattern_of(&chosen) {
                        alive[i] = false;
                    }
                }
            }
            None => {
                let uncovered: Vec<mps_dfg::Color> = complete
                    .difference(&selected_colors)
                    .iter()
                    .take(cfg.capacity)
                    .collect();
                if uncovered.is_empty() {
                    break;
                }
                let fab = Pattern::from_colors(uncovered);
                selected_colors = selected_colors.union(&fab.color_set());
                selected.insert(fab);
            }
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_scheduler::schedule_multi_pattern;

    fn cfg(pdef: usize) -> SelectConfig {
        SelectConfig {
            pdef,
            span_limit: Some(1),
            parallel: false,
            ..Default::default()
        }
    }

    #[test]
    fn eq8_variant_matches_plain_selection() {
        let adfg = AnalyzedDfg::new(mps_workloads::fig2());
        let plain = crate::select::select_patterns(&adfg, &cfg(3)).patterns;
        let via_variant = select_with_priority(&adfg, &cfg(3), eq8_variant);
        assert_eq!(plain, via_variant);
    }

    #[test]
    fn scarcity_still_covers_and_schedules() {
        for name in ["fig2", "dft5", "dct8"] {
            let adfg = AnalyzedDfg::new(mps_workloads::by_name(name).unwrap());
            for pdef in [1usize, 3] {
                let set = select_with_priority(&adfg, &cfg(pdef), scarcity_priority);
                assert!(set.covers(&adfg.dfg().color_set()), "{name}/{pdef}");
                schedule_multi_pattern(&adfg, &set, Default::default())
                    .unwrap_or_else(|e| panic!("{name}/{pdef}: {e}"));
            }
        }
    }

    #[test]
    fn scarcity_helps_the_dft5_pdef1_case() {
        // The documented Eq. 8 miss: 5DFT, span ≤ 1, Pdef = 1 picks a
        // mult-heavy pattern (20 cycles). Scarcity weighting must not do
        // worse.
        let adfg = AnalyzedDfg::new(mps_workloads::dft5());
        let plain = crate::select::select_patterns(&adfg, &cfg(1)).patterns;
        let scarce = select_with_priority(&adfg, &cfg(1), scarcity_priority);
        let cycles = |ps: &PatternSet| {
            schedule_multi_pattern(&adfg, ps, Default::default())
                .unwrap()
                .schedule
                .len()
        };
        assert!(cycles(&scarce) <= cycles(&plain));
    }

    #[test]
    fn weights_are_normalized() {
        let adfg = AnalyzedDfg::new(mps_workloads::fig2());
        let table = PatternTable::build(&adfg, cfg(3).enumerate_config());
        let w = ScarcityWeights::compute(&adfg, &table);
        assert!(w.weight.iter().all(|&x| x >= 1.0));
        assert!(w.weight.iter().any(|&x| (x - 1.0).abs() < 1e-9));
    }
}
