//! The unified selection-engine surface: every pattern-selection strategy
//! in this crate behind one enum, for `mps::Session` and the CLI.
//!
//! Each variant maps onto a concrete piece of the paper (or of the repo's
//! evaluation apparatus built around it):
//!
//! | variant | entry point | paper anchor |
//! |---|---|---|
//! | [`SelectEngine::Eq8`] | [`select_from_table`] | §5.2, Eq. 8/9, Fig. 7 — the paper's algorithm (cover engine) |
//! | [`SelectEngine::Eq8Reference`] | [`select_from_table_reference`] | same algorithm, retained full-rescore oracle |
//! | [`SelectEngine::NodeCover`] | [`node_cover_from_table`] | greedy node set-cover baseline (separates Eq. 8's "where" from its "how often") |
//! | [`SelectEngine::NodeCoverReference`] | [`node_cover_from_table_reference`] | its dense-scan oracle |
//! | [`SelectEngine::CoverageGreedy`] | [`coverage_greedy_from_table`] | raw max-antichain-count strawman Eq. 8 improves on (Table 7 context) |
//! | [`SelectEngine::CoverageGreedyReference`] | [`coverage_greedy_from_table_reference`] | its dense-scan oracle |
//! | [`SelectEngine::Exhaustive`] | [`exhaustive_best_from_table`] | exact optimum on tiny instances — the heuristic's optimality gap |
//! | [`SelectEngine::Genetic`] | [`evolve_patterns`] seeded by Eq. 8 | population search against true cycles (the paper's "future work" on the priority function) |
//! | [`SelectEngine::Anneal`] | [`anneal_patterns`] seeded by Eq. 8 | single-walker refinement against true cycles |
//! | [`SelectEngine::Random`] | [`random_baseline`] | the paper's "Random" column (Table 7), best of `trials` draws |
//!
//! All engines run against a **prebuilt** [`PatternTable`], so a session
//! can amortize one enumeration across many engine runs; all of them are
//! deterministic (the stochastic ones per seed).

use crate::anneal::{anneal_patterns, AnnealConfig};
use crate::config::SelectConfig;
use crate::coverage::{coverage_greedy_from_table, coverage_greedy_from_table_reference};
use crate::exhaustive::exhaustive_best_from_table;
use crate::genetic::{evolve_patterns, GeneticConfig};
use crate::node_cover::{node_cover_from_table, node_cover_from_table_reference};
use crate::pipeline::random_baseline;
use crate::select::{select_from_table, select_from_table_reference, SelectionOutcome};
use mps_dfg::AnalyzedDfg;
use mps_patterns::{Pattern, PatternSet, PatternTable};
use mps_scheduler::MultiPatternConfig;

/// A pattern-selection strategy (see the module docs for the mapping to
/// the paper's sections and tables).
///
/// The search-based engines (`Exhaustive`, `Genetic`, `Anneal`, `Random`)
/// rank candidate sets by *true schedule length*, so they take the
/// evaluation scheduler's [`MultiPatternConfig`] through
/// [`SelectEngine::run`]; the greedy engines ignore it.
#[non_exhaustive]
#[derive(Clone, Debug, Default, PartialEq)]
pub enum SelectEngine {
    /// The paper's §5.2 greedy (Eq. 8 priority, Eq. 9 color condition,
    /// Fig. 7 fabrication) on the lazy cover engine — the default.
    #[default]
    Eq8,
    /// §5.2 via the retained full-rescore oracle loop; decision-identical
    /// to [`SelectEngine::Eq8`], kept A/B-able for timing and confidence.
    Eq8Reference,
    /// Greedy node set-cover baseline (lazy-heap cover engine).
    NodeCover,
    /// Node set-cover via its dense-scan oracle.
    NodeCoverReference,
    /// Raw antichain-count greedy (no balancing, no size bonus) — the
    /// strawman baseline.
    CoverageGreedy,
    /// Antichain-count greedy via its dense-scan oracle.
    CoverageGreedyReference,
    /// Exact search over candidate subsets, refusing pools larger than
    /// `max_candidates` (falls back to [`SelectEngine::Eq8`] then, so a
    /// pipeline never stalls on a big graph).
    Exhaustive {
        /// Candidate-pool cap; beyond it the engine degrades to Eq. 8.
        max_candidates: usize,
    },
    /// Evolutionary refinement seeded with the Eq. 8 selection; never
    /// worse than its seed (elitism).
    Genetic(GeneticConfig),
    /// Simulated-annealing refinement seeded with the Eq. 8 selection;
    /// never worse than its seed.
    Anneal(AnnealConfig),
    /// The paper's Monte-Carlo random baseline: best covering draw out of
    /// `trials`, deterministic per `seed`.
    Random {
        /// Independent random draws evaluated (the paper uses 10).
        trials: usize,
        /// RNG seed shared by all trials.
        seed: u64,
    },
}

impl SelectEngine {
    /// Stable machine-readable name (the same one [`SelectEngine::parse`]
    /// accepts), for CLI output and metrics.
    pub fn name(&self) -> &'static str {
        match self {
            SelectEngine::Eq8 => "eq8",
            SelectEngine::Eq8Reference => "eq8-reference",
            SelectEngine::NodeCover => "node-cover",
            SelectEngine::NodeCoverReference => "node-cover-reference",
            SelectEngine::CoverageGreedy => "coverage",
            SelectEngine::CoverageGreedyReference => "coverage-reference",
            SelectEngine::Exhaustive { .. } => "exhaustive",
            SelectEngine::Genetic(_) => "genetic",
            SelectEngine::Anneal(_) => "anneal",
            SelectEngine::Random { .. } => "random",
        }
    }

    /// Parse an engine name as the CLI spells them, with default
    /// parameters for the configurable variants. `cover` and `reference`
    /// are accepted as aliases of `eq8` / `eq8-reference` (the historical
    /// `mps select --engine` vocabulary).
    pub fn parse(s: &str) -> Option<SelectEngine> {
        Some(match s {
            "eq8" | "cover" => SelectEngine::Eq8,
            "eq8-reference" | "reference" => SelectEngine::Eq8Reference,
            "node-cover" => SelectEngine::NodeCover,
            "node-cover-reference" => SelectEngine::NodeCoverReference,
            "coverage" => SelectEngine::CoverageGreedy,
            "coverage-reference" => SelectEngine::CoverageGreedyReference,
            "exhaustive" => SelectEngine::Exhaustive { max_candidates: 24 },
            "genetic" => SelectEngine::Genetic(GeneticConfig::default()),
            "anneal" => SelectEngine::Anneal(AnnealConfig::default()),
            "random" => SelectEngine::Random {
                trials: 10,
                seed: 0x5eed,
            },
            _ => return None,
        })
    }

    /// Run the engine against a prebuilt table.
    ///
    /// `sched` configures the evaluation scheduler of the search-based
    /// engines. Engines that do not produce per-round details (everything
    /// except the Eq. 8 and node-cover families) return an outcome with
    /// empty `rounds`; all of them return a color-covering pattern set
    /// whenever one exists within `cfg.pdef` patterns.
    pub fn run(
        &self,
        adfg: &AnalyzedDfg,
        table: &PatternTable,
        cfg: &SelectConfig,
        sched: MultiPatternConfig,
    ) -> SelectionOutcome {
        let from_set = |patterns: PatternSet| SelectionOutcome {
            patterns,
            rounds: Vec::new(),
        };
        match self {
            SelectEngine::Eq8 => select_from_table(adfg, table, cfg),
            SelectEngine::Eq8Reference => select_from_table_reference(adfg, table, cfg),
            SelectEngine::NodeCover => node_cover_from_table(adfg, table, cfg),
            SelectEngine::NodeCoverReference => node_cover_from_table_reference(adfg, table, cfg),
            SelectEngine::CoverageGreedy => from_set(coverage_greedy_from_table(adfg, table, cfg)),
            SelectEngine::CoverageGreedyReference => {
                from_set(coverage_greedy_from_table_reference(adfg, table, cfg))
            }
            SelectEngine::Exhaustive { max_candidates } => {
                match exhaustive_best_from_table(adfg, table, cfg, sched, *max_candidates) {
                    Some(r) => from_set(r.patterns),
                    None => select_from_table(adfg, table, cfg),
                }
            }
            SelectEngine::Genetic(gcfg) => {
                let seed = select_from_table(adfg, table, cfg);
                let candidates: Vec<Pattern> = table.iter().map(|s| s.pattern).collect();
                from_set(
                    evolve_patterns(adfg, &[seed.patterns], &candidates, *gcfg, sched).patterns,
                )
            }
            SelectEngine::Anneal(acfg) => {
                let seed = select_from_table(adfg, table, cfg);
                let candidates: Vec<Pattern> = table.iter().map(|s| s.pattern).collect();
                from_set(anneal_patterns(adfg, &seed.patterns, &candidates, *acfg).patterns)
            }
            SelectEngine::Random { trials, seed } => from_set(
                random_baseline(adfg, cfg.pdef, cfg.capacity, *trials, *seed, sched).best_patterns,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_workloads::{fig2, fig4};

    fn cfg(pdef: usize) -> SelectConfig {
        SelectConfig {
            pdef,
            parallel: false,
            ..Default::default()
        }
    }

    fn all_engines() -> Vec<SelectEngine> {
        vec![
            SelectEngine::Eq8,
            SelectEngine::Eq8Reference,
            SelectEngine::NodeCover,
            SelectEngine::NodeCoverReference,
            SelectEngine::CoverageGreedy,
            SelectEngine::CoverageGreedyReference,
            SelectEngine::Exhaustive { max_candidates: 64 },
            SelectEngine::Genetic(GeneticConfig {
                population: 4,
                generations: 2,
                ..Default::default()
            }),
            SelectEngine::Anneal(AnnealConfig {
                iterations: 40,
                ..Default::default()
            }),
            SelectEngine::Random { trials: 4, seed: 7 },
        ]
    }

    #[test]
    fn every_engine_yields_a_covering_deterministic_set() {
        for dfg in [fig2(), fig4()] {
            let adfg = AnalyzedDfg::new(dfg);
            let table = PatternTable::build(
                &adfg,
                SelectConfig {
                    parallel: false,
                    ..Default::default()
                }
                .enumerate_config(),
            );
            for engine in all_engines() {
                let sched = MultiPatternConfig::default();
                let a = engine.run(&adfg, &table, &cfg(3), sched);
                let b = engine.run(&adfg, &table, &cfg(3), sched);
                assert_eq!(a, b, "{} must be deterministic", engine.name());
                assert!(
                    a.patterns.covers(&adfg.dfg().color_set()),
                    "{} must cover all colors",
                    engine.name()
                );
                assert!(a.patterns.len() <= 3, "{} respects Pdef", engine.name());
            }
        }
    }

    #[test]
    fn engine_families_match_their_references() {
        let adfg = AnalyzedDfg::new(fig2());
        let table = PatternTable::build(
            &adfg,
            SelectConfig {
                parallel: false,
                ..Default::default()
            }
            .enumerate_config(),
        );
        let sched = MultiPatternConfig::default();
        for (fast, slow) in [
            (SelectEngine::Eq8, SelectEngine::Eq8Reference),
            (SelectEngine::NodeCover, SelectEngine::NodeCoverReference),
            (
                SelectEngine::CoverageGreedy,
                SelectEngine::CoverageGreedyReference,
            ),
        ] {
            assert_eq!(
                fast.run(&adfg, &table, &cfg(4), sched),
                slow.run(&adfg, &table, &cfg(4), sched),
                "{} vs {}",
                fast.name(),
                slow.name()
            );
        }
    }

    #[test]
    fn exhaustive_falls_back_on_big_pools() {
        let adfg = AnalyzedDfg::new(fig2());
        let table = PatternTable::build(
            &adfg,
            SelectConfig {
                parallel: false,
                ..Default::default()
            }
            .enumerate_config(),
        );
        let tiny = SelectEngine::Exhaustive { max_candidates: 1 };
        let sched = MultiPatternConfig::default();
        assert_eq!(
            tiny.run(&adfg, &table, &cfg(3), sched),
            SelectEngine::Eq8.run(&adfg, &table, &cfg(3), sched),
            "pool over the cap degrades to Eq. 8"
        );
    }

    #[test]
    fn names_round_trip_through_parse() {
        for engine in all_engines() {
            let reparsed = SelectEngine::parse(engine.name()).expect("name parses");
            assert_eq!(reparsed.name(), engine.name());
        }
        assert_eq!(SelectEngine::parse("cover"), Some(SelectEngine::Eq8));
        assert_eq!(
            SelectEngine::parse("reference"),
            Some(SelectEngine::Eq8Reference)
        );
        assert_eq!(SelectEngine::parse("bogus"), None);
        assert_eq!(SelectEngine::default(), SelectEngine::Eq8);
    }
}
