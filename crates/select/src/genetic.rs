//! Evolutionary pattern-set search — the population-based counterpart of
//! [`crate::anneal_patterns`].
//!
//! Annealing walks one pattern set through local moves; a genetic search
//! keeps a *population*, recombining good sets (uniform crossover over
//! member patterns) and mutating them (swap a member for a §5.1 candidate
//! or re-color one slot). Elitism carries the best set forward unchanged,
//! so — like the annealer — the result is **never worse than the best
//! seed**, which makes it safe to run as a refinement pass over Eq. 8.
//!
//! The interesting empirical question this module answers (see the
//! `selectors` bench binary) is whether *recombination* finds sets the
//! annealer's single walker misses. At a comparable evaluation budget
//! (~320 schedules) it does: on the evaluation suite the evolved sets
//! reach the pattern-free lower bound on dft5, dct8 and matmul3 where
//! annealing plateaus one cycle higher — mixing members from two decent
//! sets escapes the swap-one-pattern local optima that trap a single
//! walker.

use mps_dfg::AnalyzedDfg;
use mps_patterns::{Pattern, PatternSet};
use mps_scheduler::{schedule_multi_pattern, MultiPatternConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the evolutionary search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GeneticConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Generations evolved.
    pub generations: usize,
    /// Tournament size for parent selection (≥ 1; larger = greedier).
    pub tournament: usize,
    /// Per-member probability (in percent) of mutation after crossover.
    pub mutation_pct: u32,
    /// RNG seed; the whole search is deterministic per seed.
    pub seed: u64,
    /// Evaluate each generation's fitness batch on multiple threads.
    /// Genome generation stays sequential (it drives the RNG), so the
    /// search is deterministic per seed in both modes — fitness is a pure
    /// function of the individual.
    pub parallel: bool,
}

impl Default for GeneticConfig {
    fn default() -> GeneticConfig {
        GeneticConfig {
            population: 16,
            generations: 20,
            tournament: 3,
            mutation_pct: 30,
            seed: 0xbeef,
            parallel: true,
        }
    }
}

/// Outcome of [`evolve_patterns`].
#[derive(Clone, Debug)]
pub struct GeneticResult {
    /// Best pattern set found.
    pub patterns: PatternSet,
    /// Its schedule length.
    pub cycles: usize,
    /// Schedule length of the best seed individual.
    pub initial_cycles: usize,
    /// Schedules evaluated (fitness calls).
    pub evaluated: usize,
}

fn fitness(adfg: &AnalyzedDfg, set: &PatternSet, sched: MultiPatternConfig) -> usize {
    match schedule_multi_pattern(adfg, set, sched) {
        Ok(r) => r.schedule.len(),
        Err(_) => usize::MAX,
    }
}

/// Fitness of a whole batch — the per-generation scoring inner loop. Each
/// evaluation is an independent scheduling run, so the batch fans out over
/// [`mps_par::par_map`] when asked to; results are identical either way.
fn fitness_batch(
    adfg: &AnalyzedDfg,
    sets: &[PatternSet],
    sched: MultiPatternConfig,
    parallel: bool,
) -> Vec<usize> {
    if parallel {
        mps_par::par_map(sets, |set| fitness(adfg, set, sched))
    } else {
        sets.iter().map(|set| fitness(adfg, set, sched)).collect()
    }
}

/// Uniform crossover: each member slot takes a pattern from either
/// parent; repairs coverage by appending a parent pattern holding a
/// missing color when needed.
fn crossover(adfg: &AnalyzedDfg, a: &PatternSet, b: &PatternSet, rng: &mut StdRng) -> PatternSet {
    let n = a.len().max(b.len()).max(1);
    let mut members: Vec<Pattern> = Vec::with_capacity(n);
    for i in 0..n {
        let from_a = rng.gen_bool(0.5);
        let src = if from_a { a } else { b };
        let alt = if from_a { b } else { a };
        if let Some(&p) = src.patterns().get(i) {
            members.push(p);
        } else if let Some(&p) = alt.patterns().get(i) {
            members.push(p);
        }
    }
    let mut child = PatternSet::from_patterns(members);
    // Coverage repair: pull patterns from the parents until every graph
    // color is covered (parents cover, so this terminates).
    let needed = adfg.dfg().color_set();
    for &p in a.patterns().iter().chain(b.patterns()) {
        if child.covers(&needed) {
            break;
        }
        let missing = needed.difference(&child.color_set());
        if p.color_set().iter().any(|c| missing.contains(c)) {
            child.insert(p);
        }
    }
    child
}

/// Mutate one member: swap with a candidate pattern or recolor one slot.
fn mutate(
    adfg: &AnalyzedDfg,
    set: &PatternSet,
    candidates: &[Pattern],
    rng: &mut StdRng,
) -> PatternSet {
    let mut members: Vec<Pattern> = set.patterns().to_vec();
    if members.is_empty() {
        return set.clone();
    }
    let victim = rng.gen_range(0..members.len());
    if !candidates.is_empty() && rng.gen_bool(0.5) {
        members[victim] = candidates[rng.gen_range(0..candidates.len())];
    } else {
        let palette: Vec<mps_dfg::Color> = adfg.dfg().color_set().iter().collect();
        let mut colors: Vec<mps_dfg::Color> = members[victim].colors().to_vec();
        if !colors.is_empty() {
            let slot = rng.gen_range(0..colors.len());
            colors[slot] = palette[rng.gen_range(0..palette.len())];
            members[victim] = Pattern::from_colors(colors);
        }
    }
    let mutated = PatternSet::from_patterns(members);
    if mutated.covers(&adfg.dfg().color_set()) {
        mutated
    } else {
        set.clone() // mutation broke coverage: discard it
    }
}

/// Evolve pattern sets from `seeds` (e.g. the Eq. 8 selection plus a few
/// random covering draws). `candidates` supplies mutation swap targets —
/// pass the §5.1 pattern-table patterns, or `&[]` for recolor-only.
pub fn evolve_patterns(
    adfg: &AnalyzedDfg,
    seeds: &[PatternSet],
    candidates: &[Pattern],
    cfg: GeneticConfig,
    sched: MultiPatternConfig,
) -> GeneticResult {
    assert!(!seeds.is_empty(), "need at least one seed individual");
    assert!(cfg.population >= 2 && cfg.tournament >= 1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut evaluated = 0usize;

    // Seed population: the given seeds cycled, mutated past the first
    // copy so the population starts diverse. Genomes first (sequential —
    // they drive the RNG), then one fitness batch.
    let individuals: Vec<PatternSet> = (0..cfg.population)
        .map(|i| {
            let base = &seeds[i % seeds.len()];
            if i < seeds.len() {
                base.clone()
            } else {
                mutate(adfg, base, candidates, &mut rng)
            }
        })
        .collect();
    let fits = fitness_batch(adfg, &individuals, sched, cfg.parallel);
    evaluated += individuals.len();
    let mut pop: Vec<(usize, PatternSet)> = fits.into_iter().zip(individuals).collect();
    let initial_cycles = pop
        .iter()
        .take(seeds.len())
        .map(|(f, _)| *f)
        .min()
        .expect("population is non-empty");

    for _gen in 0..cfg.generations {
        pop.sort_by_key(|(f, _)| *f);
        let pick = |rng: &mut StdRng| -> usize {
            (0..cfg.tournament)
                .map(|_| rng.gen_range(0..pop.len()))
                .min()
                .expect("tournament ≥ 1")
        };
        let children: Vec<PatternSet> = (1..cfg.population)
            .map(|_| {
                let (pa, pb) = (pick(&mut rng), pick(&mut rng));
                let mut child = crossover(adfg, &pop[pa].1, &pop[pb].1, &mut rng);
                if rng.gen_range(0..100u32) < cfg.mutation_pct {
                    child = mutate(adfg, &child, candidates, &mut rng);
                }
                child
            })
            .collect();
        let fits = fitness_batch(adfg, &children, sched, cfg.parallel);
        evaluated += children.len();
        let mut next: Vec<(usize, PatternSet)> = Vec::with_capacity(cfg.population);
        next.push(pop[0].clone()); // elitism
        next.extend(fits.into_iter().zip(children));
        pop = next;
    }

    pop.sort_by_key(|(f, _)| *f);
    let (cycles, patterns) = pop.swap_remove(0);
    GeneticResult {
        patterns,
        cycles,
        initial_cycles,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_workloads::{fig2, fig4};

    fn quick() -> GeneticConfig {
        GeneticConfig {
            population: 8,
            generations: 6,
            seed: 3,
            ..Default::default()
        }
    }

    fn eq8(adfg: &AnalyzedDfg, pdef: usize) -> PatternSet {
        crate::select::select_patterns(
            adfg,
            &crate::SelectConfig {
                pdef,
                span_limit: Some(1),
                parallel: false,
                ..Default::default()
            },
        )
        .patterns
    }

    #[test]
    fn elitism_guarantees_never_worse() {
        let adfg = AnalyzedDfg::new(fig2());
        let seed = eq8(&adfg, 3);
        let r = evolve_patterns(&adfg, &[seed], &[], quick(), Default::default());
        assert!(r.cycles <= r.initial_cycles);
        assert!(r.patterns.covers(&adfg.dfg().color_set()));
    }

    #[test]
    fn deterministic_per_seed() {
        let adfg = AnalyzedDfg::new(fig4());
        let seed = eq8(&adfg, 2);
        let a = evolve_patterns(
            &adfg,
            std::slice::from_ref(&seed),
            &[],
            quick(),
            Default::default(),
        );
        let b = evolve_patterns(&adfg, &[seed], &[], quick(), Default::default());
        assert_eq!(a.patterns, b.patterns);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.evaluated, b.evaluated);
    }

    #[test]
    fn multiple_seeds_all_enter_the_population() {
        let adfg = AnalyzedDfg::new(fig2());
        let s1 = eq8(&adfg, 2);
        let s2 = PatternSet::parse("abc abc").unwrap(); // collapses to 1
        let r = evolve_patterns(&adfg, &[s1.clone(), s2], &[], quick(), Default::default());
        // Best seed is s1; elitism keeps the result at least that good.
        let s1_cycles = schedule_multi_pattern(&adfg, &s1, Default::default())
            .unwrap()
            .schedule
            .len();
        assert!(r.cycles <= s1_cycles);
    }

    #[test]
    fn crossover_repairs_coverage() {
        let adfg = AnalyzedDfg::new(fig2());
        let mut rng = StdRng::seed_from_u64(9);
        let a = PatternSet::parse("aaaaa bbbbb ccccc").unwrap();
        let b = PatternSet::parse("abc").unwrap();
        for _ in 0..50 {
            let child = crossover(&adfg, &a, &b, &mut rng);
            assert!(child.covers(&adfg.dfg().color_set()));
        }
    }

    #[test]
    fn parallel_fitness_changes_nothing() {
        // Genome generation is rng-sequential in both modes and fitness is
        // pure, so the whole search must be mode-invariant.
        let adfg = AnalyzedDfg::new(fig2());
        let seed = eq8(&adfg, 3);
        let seq = evolve_patterns(
            &adfg,
            std::slice::from_ref(&seed),
            &[],
            GeneticConfig {
                parallel: false,
                ..quick()
            },
            Default::default(),
        );
        let par = evolve_patterns(
            &adfg,
            &[seed],
            &[],
            GeneticConfig {
                parallel: true,
                ..quick()
            },
            Default::default(),
        );
        assert_eq!(seq.patterns, par.patterns);
        assert_eq!(seq.cycles, par.cycles);
        assert_eq!(seq.evaluated, par.evaluated);
    }

    #[test]
    fn evaluation_accounting() {
        let adfg = AnalyzedDfg::new(fig4());
        let seed = eq8(&adfg, 2);
        let cfg = quick();
        let r = evolve_patterns(&adfg, &[seed], &[], cfg, Default::default());
        // population seeds + (population − 1 elite) children per generation.
        assert_eq!(
            r.evaluated,
            cfg.population + cfg.generations * (cfg.population - 1)
        );
    }
}
