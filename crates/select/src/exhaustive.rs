//! Exact pattern selection by exhaustive search (tiny instances only).

use crate::config::SelectConfig;
use mps_dfg::AnalyzedDfg;
use mps_patterns::{Pattern, PatternSet, PatternTable};
use mps_scheduler::{schedule_multi_pattern, MultiPatternConfig};

/// Result of the exhaustive search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExhaustiveResult {
    /// The best pattern set found.
    pub patterns: PatternSet,
    /// Its schedule length in cycles.
    pub cycles: usize,
    /// Number of candidate subsets evaluated.
    pub evaluated: usize,
}

/// Try **every** subset of ≤ `cfg.pdef` candidate patterns (completed with
/// a fabricated coverage pattern when colors are missing), schedule each,
/// and return the best. Exponential — callers must keep the candidate pool
/// tiny; the function refuses more than `max_candidates` candidates.
///
/// Used to measure the §5.2 heuristic's optimality gap on small graphs.
pub fn exhaustive_best(
    adfg: &AnalyzedDfg,
    cfg: &SelectConfig,
    sched: MultiPatternConfig,
    max_candidates: usize,
) -> Option<ExhaustiveResult> {
    let table = PatternTable::build(adfg, cfg.enumerate_config());
    let candidates: Vec<Pattern> = table.iter().map(|s| s.pattern).collect();
    if candidates.len() > max_candidates {
        return None;
    }
    let complete = adfg.dfg().color_set();

    let mut best: Option<ExhaustiveResult> = None;
    let mut evaluated = 0usize;
    // Iterate subsets of size 0..=pdef by index masks (pool is tiny).
    let pool = candidates.len();
    let mut chosen_idx: Vec<usize> = Vec::new();
    subsets(pool, cfg.pdef, &mut chosen_idx, &mut |idxs| {
        let mut set = PatternSet::from_patterns(idxs.iter().map(|&i| candidates[i]));
        // Complete coverage with a fabricated pattern if needed and if a
        // slot remains.
        if !set.covers(&complete) {
            if set.len() >= cfg.pdef {
                return;
            }
            let missing: Vec<mps_dfg::Color> = complete
                .difference(&set.color_set())
                .iter()
                .take(cfg.capacity)
                .collect();
            if missing.len() < complete.difference(&set.color_set()).len() {
                return; // cannot cover within capacity
            }
            set.insert(Pattern::from_colors(missing));
        }
        if set.is_empty() {
            return;
        }
        evaluated += 1;
        if let Ok(r) = schedule_multi_pattern(adfg, &set, sched) {
            let cycles = r.schedule.len();
            let better = best.as_ref().is_none_or(|b| cycles < b.cycles);
            if better {
                best = Some(ExhaustiveResult {
                    patterns: set,
                    cycles,
                    evaluated: 0,
                });
            }
        }
    });
    best.map(|mut b| {
        b.evaluated = evaluated;
        b
    })
}

/// Enumerate all subsets of `{0..pool}` with at most `max` elements.
fn subsets(pool: usize, max: usize, prefix: &mut Vec<usize>, visit: &mut impl FnMut(&[usize])) {
    visit(prefix);
    if prefix.len() == max {
        return;
    }
    let start = prefix.last().map_or(0, |&l| l + 1);
    for i in start..pool {
        prefix.push(i);
        subsets(pool, max, prefix, visit);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::select_patterns;
    use mps_workloads::fig4;

    fn cfg(pdef: usize) -> SelectConfig {
        SelectConfig {
            pdef,
            parallel: false,
            ..Default::default()
        }
    }

    #[test]
    fn finds_optimum_on_fig4() {
        let adfg = AnalyzedDfg::new(fig4());
        let best = exhaustive_best(&adfg, &cfg(2), Default::default(), 32).unwrap();
        assert!(best.evaluated > 1);
        // The heuristic should match the optimum on this toy graph.
        let heur = select_patterns(&adfg, &cfg(2));
        let heur_cycles = schedule_multi_pattern(&adfg, &heur.patterns, Default::default())
            .unwrap()
            .schedule
            .len();
        assert_eq!(best.cycles, heur_cycles, "heuristic is optimal on fig4");
    }

    #[test]
    fn refuses_large_pools() {
        let adfg = AnalyzedDfg::new(fig4());
        assert!(exhaustive_best(&adfg, &cfg(2), Default::default(), 1).is_none());
    }

    #[test]
    fn pdef1_still_covers_by_fabrication() {
        let adfg = AnalyzedDfg::new(fig4());
        let best = exhaustive_best(&adfg, &cfg(1), Default::default(), 32).unwrap();
        assert!(best.patterns.covers(&adfg.dfg().color_set()));
    }

    #[test]
    fn subsets_counts() {
        let mut count = 0usize;
        subsets(4, 2, &mut Vec::new(), &mut |_| count += 1);
        // {} + 4 singletons + 6 pairs.
        assert_eq!(count, 11);
    }
}
