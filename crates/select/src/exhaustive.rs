//! Exact pattern selection by exhaustive search (tiny instances only).

use crate::config::SelectConfig;
use mps_dfg::AnalyzedDfg;
use mps_patterns::{Pattern, PatternSet, PatternTable};
use mps_scheduler::{schedule_multi_pattern, MultiPatternConfig};

/// Result of the exhaustive search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExhaustiveResult {
    /// The best pattern set found.
    pub patterns: PatternSet,
    /// Its schedule length in cycles.
    pub cycles: usize,
    /// Number of candidate subsets evaluated.
    pub evaluated: usize,
}

/// Try **every** subset of ≤ `cfg.pdef` candidate patterns (completed with
/// a fabricated coverage pattern when colors are missing), schedule each,
/// and return the best. Exponential — callers must keep the candidate pool
/// tiny; the function refuses more than `max_candidates` candidates.
///
/// The candidate subsets are generated in fixed-size batches (so memory
/// stays bounded however large the pool a caller allows) and the
/// expensive part — one scheduling run per subset — fans out over
/// [`mps_par::par_map`] when `cfg.parallel`; the winner is still the
/// first subset in generation order to reach the minimum cycle count,
/// exactly as the sequential [`exhaustive_best_reference`] picks it.
///
/// Used to measure the §5.2 heuristic's optimality gap on small graphs.
pub fn exhaustive_best(
    adfg: &AnalyzedDfg,
    cfg: &SelectConfig,
    sched: MultiPatternConfig,
    max_candidates: usize,
) -> Option<ExhaustiveResult> {
    let table = PatternTable::build(adfg, cfg.enumerate_config());
    exhaustive_best_from_table(adfg, &table, cfg, sched, max_candidates)
}

/// [`exhaustive_best`] against a prebuilt pattern table — the candidate
/// pool is the table's patterns, so callers (e.g. `mps::Session`) can
/// amortize one enumeration across many searches.
pub fn exhaustive_best_from_table(
    adfg: &AnalyzedDfg,
    table: &PatternTable,
    cfg: &SelectConfig,
    sched: MultiPatternConfig,
    max_candidates: usize,
) -> Option<ExhaustiveResult> {
    /// Subsets scheduled per [`mps_par::par_map`] batch.
    const BATCH: usize = 1024;

    let candidates: Vec<Pattern> = table.iter().map(|s| s.pattern).collect();
    if candidates.len() > max_candidates {
        return None;
    }
    let complete = adfg.dfg().color_set();

    let mut evaluated = 0usize;
    let mut best: Option<ExhaustiveResult> = None;
    let mut batch: Vec<PatternSet> = Vec::with_capacity(BATCH);
    let flush = |batch: &mut Vec<PatternSet>, best: &mut Option<ExhaustiveResult>| {
        let cycles: Vec<Option<usize>> = if cfg.parallel {
            mps_par::par_map(batch, |set| schedule_cycles(adfg, set, sched))
        } else {
            batch
                .iter()
                .map(|set| schedule_cycles(adfg, set, sched))
                .collect()
        };
        for (set, c) in batch.drain(..).zip(cycles) {
            let Some(cycles) = c else { continue };
            if best.as_ref().is_none_or(|b| cycles < b.cycles) {
                *best = Some(ExhaustiveResult {
                    patterns: set,
                    cycles,
                    evaluated: 0,
                });
            }
        }
    };
    let mut chosen_idx: Vec<usize> = Vec::new();
    subsets(candidates.len(), cfg.pdef, &mut chosen_idx, &mut |idxs| {
        if let Some(set) = completed_set(cfg, &complete, &candidates, idxs) {
            evaluated += 1;
            batch.push(set);
            if batch.len() == BATCH {
                flush(&mut batch, &mut best);
            }
        }
    });
    flush(&mut batch, &mut best);
    best.map(|mut b| {
        b.evaluated = evaluated;
        b
    })
}

/// The original single-pass sequential search, kept as the decision
/// oracle for [`exhaustive_best`].
pub fn exhaustive_best_reference(
    adfg: &AnalyzedDfg,
    cfg: &SelectConfig,
    sched: MultiPatternConfig,
    max_candidates: usize,
) -> Option<ExhaustiveResult> {
    let table = PatternTable::build(adfg, cfg.enumerate_config());
    let candidates: Vec<Pattern> = table.iter().map(|s| s.pattern).collect();
    if candidates.len() > max_candidates {
        return None;
    }

    let complete = adfg.dfg().color_set();
    let mut best: Option<ExhaustiveResult> = None;
    let mut evaluated = 0usize;
    // Iterate subsets of size 0..=pdef by index masks (pool is tiny).
    let pool = candidates.len();
    let mut chosen_idx: Vec<usize> = Vec::new();
    subsets(pool, cfg.pdef, &mut chosen_idx, &mut |idxs| {
        let Some(set) = completed_set(cfg, &complete, &candidates, idxs) else {
            return;
        };
        evaluated += 1;
        if let Some(cycles) = schedule_cycles(adfg, &set, sched) {
            let better = best.as_ref().is_none_or(|b| cycles < b.cycles);
            if better {
                best = Some(ExhaustiveResult {
                    patterns: set,
                    cycles,
                    evaluated: 0,
                });
            }
        }
    });
    best.map(|mut b| {
        b.evaluated = evaluated;
        b
    })
}

/// Build the candidate subset `idxs`, completing coverage with a
/// fabricated pattern when colors are missing and a `Pdef` slot remains;
/// `None` when the subset cannot be made schedulable (or is empty).
/// `complete` is the graph's color set, hoisted out of the subset loop.
fn completed_set(
    cfg: &SelectConfig,
    complete: &mps_dfg::ColorSet,
    candidates: &[Pattern],
    idxs: &[usize],
) -> Option<PatternSet> {
    let mut set = PatternSet::from_patterns(idxs.iter().map(|&i| candidates[i]));
    if !set.covers(complete) {
        if set.len() >= cfg.pdef {
            return None;
        }
        let missing: Vec<mps_dfg::Color> = complete
            .difference(&set.color_set())
            .iter()
            .take(cfg.capacity)
            .collect();
        if missing.len() < complete.difference(&set.color_set()).len() {
            return None; // cannot cover within capacity
        }
        set.insert(Pattern::from_colors(missing));
    }
    if set.is_empty() {
        return None;
    }
    Some(set)
}

/// Schedule length of `set`, or `None` when the set is unschedulable.
fn schedule_cycles(
    adfg: &AnalyzedDfg,
    set: &PatternSet,
    sched: MultiPatternConfig,
) -> Option<usize> {
    schedule_multi_pattern(adfg, set, sched)
        .ok()
        .map(|r| r.schedule.len())
}

/// Enumerate all subsets of `{0..pool}` with at most `max` elements.
fn subsets(pool: usize, max: usize, prefix: &mut Vec<usize>, visit: &mut impl FnMut(&[usize])) {
    visit(prefix);
    if prefix.len() == max {
        return;
    }
    let start = prefix.last().map_or(0, |&l| l + 1);
    for i in start..pool {
        prefix.push(i);
        subsets(pool, max, prefix, visit);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::select_patterns;
    use mps_workloads::fig4;

    fn cfg(pdef: usize) -> SelectConfig {
        SelectConfig {
            pdef,
            parallel: false,
            ..Default::default()
        }
    }

    #[test]
    fn finds_optimum_on_fig4() {
        let adfg = AnalyzedDfg::new(fig4());
        let best = exhaustive_best(&adfg, &cfg(2), Default::default(), 32).unwrap();
        assert!(best.evaluated > 1);
        // The heuristic should match the optimum on this toy graph.
        let heur = select_patterns(&adfg, &cfg(2));
        let heur_cycles = schedule_multi_pattern(&adfg, &heur.patterns, Default::default())
            .unwrap()
            .schedule
            .len();
        assert_eq!(best.cycles, heur_cycles, "heuristic is optimal on fig4");
    }

    #[test]
    fn refuses_large_pools() {
        let adfg = AnalyzedDfg::new(fig4());
        assert!(exhaustive_best(&adfg, &cfg(2), Default::default(), 1).is_none());
        assert!(exhaustive_best_reference(&adfg, &cfg(2), Default::default(), 1).is_none());
    }

    #[test]
    fn pdef1_still_covers_by_fabrication() {
        let adfg = AnalyzedDfg::new(fig4());
        let best = exhaustive_best(&adfg, &cfg(1), Default::default(), 32).unwrap();
        assert!(best.patterns.covers(&adfg.dfg().color_set()));
    }

    #[test]
    fn subsets_counts() {
        let mut count = 0usize;
        subsets(4, 2, &mut Vec::new(), &mut |_| count += 1);
        // {} + 4 singletons + 6 pairs.
        assert_eq!(count, 11);
    }

    #[test]
    fn matches_reference_in_both_modes() {
        let adfg = AnalyzedDfg::new(fig4());
        for pdef in [1usize, 2, 3] {
            let slow = exhaustive_best_reference(&adfg, &cfg(pdef), Default::default(), 32);
            for parallel in [false, true] {
                let c = SelectConfig {
                    parallel,
                    ..cfg(pdef)
                };
                let fast = exhaustive_best(&adfg, &c, Default::default(), 32);
                assert_eq!(fast, slow, "pdef={pdef} parallel={parallel}");
            }
        }
    }
}
