//! End-to-end select + schedule pipeline and the Monte-Carlo random
//! baseline (Table 7's two columns).

use crate::config::SelectConfig;
use crate::random::random_patterns;
use crate::select::{select_patterns, SelectionOutcome};
use mps_dfg::AnalyzedDfg;
use mps_patterns::PatternSet;
use mps_scheduler::{schedule_multi_pattern, MultiPatternConfig, Schedule, ScheduleError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the full pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PipelineConfig {
    /// Pattern selection parameters.
    pub select: SelectConfig,
    /// Scheduler parameters.
    pub sched: MultiPatternConfig,
}

/// Output of the full pipeline.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// The selection outcome (patterns + per-round details).
    pub selection: SelectionOutcome,
    /// The schedule produced with the selected patterns.
    pub schedule: Schedule,
    /// Schedule length in cycles (the paper's metric).
    pub cycles: usize,
}

/// Select `Pdef` patterns with the §5.2 algorithm and schedule the graph
/// with them.
pub fn select_and_schedule(
    adfg: &AnalyzedDfg,
    cfg: &PipelineConfig,
) -> Result<PipelineResult, ScheduleError> {
    let selection = select_patterns(adfg, &cfg.select);
    let r = schedule_multi_pattern(adfg, &selection.patterns, cfg.sched)?;
    let cycles = r.schedule.len();
    Ok(PipelineResult {
        selection,
        schedule: r.schedule,
        cycles,
    })
}

/// Result of the random-pattern Monte-Carlo baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct RandomBaseline {
    /// Schedule length of each trial.
    pub cycles: Vec<usize>,
    /// The pattern set of the best trial.
    pub best_patterns: PatternSet,
}

impl RandomBaseline {
    /// Mean cycles over the trials (the number the paper tabulates).
    pub fn mean(&self) -> f64 {
        if self.cycles.is_empty() {
            return 0.0;
        }
        self.cycles.iter().sum::<usize>() as f64 / self.cycles.len() as f64
    }

    /// Best (minimum) cycles over the trials.
    pub fn best(&self) -> usize {
        self.cycles.iter().copied().min().unwrap_or(0)
    }

    /// Worst (maximum) cycles over the trials.
    pub fn worst(&self) -> usize {
        self.cycles.iter().copied().max().unwrap_or(0)
    }
}

/// Run the paper's random baseline: `trials` independent draws of `pdef`
/// random covering patterns, each scheduled; the paper reports the mean of
/// 10 trials. Trials run in parallel and are reproducible from `seed`.
pub fn random_baseline(
    adfg: &AnalyzedDfg,
    pdef: usize,
    capacity: usize,
    trials: usize,
    seed: u64,
    sched: MultiPatternConfig,
) -> RandomBaseline {
    let colors = adfg.dfg().color_set();
    let indices: Vec<u64> = (0..trials as u64).collect();
    let runs: Vec<(usize, PatternSet)> = mps_par::par_map(&indices, |&t| {
        let mut rng = StdRng::seed_from_u64(seed ^ (t.wrapping_mul(0x9E3779B97F4A7C15)));
        let patterns = random_patterns(&colors, pdef, capacity, &mut rng);
        let cycles = schedule_multi_pattern(adfg, &patterns, sched)
            .map(|r| r.schedule.len())
            .expect("random covering patterns are always schedulable");
        (cycles, patterns)
    });
    let best_patterns = runs
        .iter()
        .min_by_key(|(c, _)| *c)
        .map(|(_, p)| p.clone())
        .unwrap_or_default();
    RandomBaseline {
        cycles: runs.into_iter().map(|(c, _)| c).collect(),
        best_patterns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_workloads::{fig2, fig4};

    fn pipe(pdef: usize) -> PipelineConfig {
        PipelineConfig {
            select: SelectConfig {
                pdef,
                parallel: false,
                ..Default::default()
            },
            sched: MultiPatternConfig::default(),
        }
    }

    #[test]
    fn pipeline_schedules_fig4() {
        let adfg = AnalyzedDfg::new(fig4());
        let r = select_and_schedule(&adfg, &pipe(2)).unwrap();
        r.schedule
            .validate(&adfg, Some(&r.selection.patterns))
            .unwrap();
        // {aa}, {bb}: a1 → {a2,a3} → wait, a1 ∥ a3: cycle1 {a1,a3}? a1,a3
        // parallel ✓ → cycle2 {a2} → cycle3 {b4,b5}. 3 cycles.
        assert_eq!(r.cycles, 3);
    }

    #[test]
    fn pipeline_fig4_pdef1_uses_fabricated_ab() {
        let adfg = AnalyzedDfg::new(fig4());
        let r = select_and_schedule(&adfg, &pipe(1)).unwrap();
        assert_eq!(r.selection.patterns.patterns()[0].to_string(), "ab");
        // One a and one b per cycle: a1,a3,a2 serialize (3 cycles; b slots
        // idle), then b4, b5 (2 cycles).
        assert_eq!(r.cycles, 5);
    }

    #[test]
    fn random_baseline_is_reproducible_and_schedulable() {
        let adfg = AnalyzedDfg::new(fig2());
        let a = random_baseline(&adfg, 2, 5, 10, 42, Default::default());
        let b = random_baseline(&adfg, 2, 5, 10, 42, Default::default());
        assert_eq!(a, b);
        assert_eq!(a.cycles.len(), 10);
        assert!(a.best() >= 5, "3DFT critical path is 5 cycles");
        assert!(a.mean() >= a.best() as f64);
        assert!(a.worst() >= a.mean() as usize);
    }

    #[test]
    fn selected_beats_or_matches_random_mean_on_fig2() {
        // The paper's headline claim (Table 7), on the paper's own graph.
        let adfg = AnalyzedDfg::new(fig2());
        for pdef in [2usize, 4] {
            let selected = select_and_schedule(&adfg, &pipe(pdef)).unwrap();
            let random = random_baseline(&adfg, pdef, 5, 10, 7, Default::default());
            assert!(
                (selected.cycles as f64) <= random.mean(),
                "Pdef={pdef}: selected {} vs random mean {}",
                selected.cycles,
                random.mean()
            );
        }
    }
}
