//! The paper's "Random" baseline: uniformly random patterns.

use mps_dfg::ColorSet;
use mps_patterns::{Pattern, PatternSet};
use rand::Rng;

/// Draw `pdef` random patterns of `capacity` slots each, colors uniform
/// over `colors`, re-drawn until the set jointly covers every color (an
/// uncovered color would make *any* schedule impossible, so the paper's
/// random baseline necessarily produced covering sets).
///
/// After 1000 failed draws the last set is patched deterministically by
/// overwriting slots of the first pattern(s) with the missing colors —
/// only relevant for adversarial color counts (e.g. more colors than
/// `pdef·capacity` makes coverage impossible and triggers a panic).
pub fn random_patterns<R: Rng>(
    colors: &ColorSet,
    pdef: usize,
    capacity: usize,
    rng: &mut R,
) -> PatternSet {
    assert!(pdef >= 1 && capacity >= 1, "need at least one slot");
    let palette: Vec<mps_dfg::Color> = colors.iter().collect();
    assert!(!palette.is_empty(), "the color set must be non-empty");
    assert!(
        palette.len() <= pdef * capacity,
        "{} colors cannot fit in {pdef} patterns of {capacity} slots",
        palette.len()
    );

    for _attempt in 0..1000 {
        let mut slots: Vec<Vec<mps_dfg::Color>> = (0..pdef)
            .map(|_| {
                (0..capacity)
                    .map(|_| palette[rng.gen_range(0..palette.len())])
                    .collect()
            })
            .collect();
        let union: ColorSet = slots.iter().flatten().copied().collect();
        if !colors.is_subset(&union) {
            continue;
        }
        // Dedup check: PatternSet::insert drops duplicates, which would
        // silently shrink the set below pdef; re-draw instead.
        let set = PatternSet::from_patterns(slots.drain(..).map(Pattern::from_colors));
        if set.len() == pdef {
            return set;
        }
    }

    // Deterministic patch fallback: fill patterns round-robin with the
    // whole palette first, then random colors.
    let mut slots: Vec<Vec<mps_dfg::Color>> = vec![Vec::with_capacity(capacity); pdef];
    for (i, &c) in palette.iter().enumerate() {
        slots[i % pdef].push(c);
    }
    for (pi, s) in slots.iter_mut().enumerate() {
        while s.len() < capacity {
            s.push(palette[(pi + s.len()) % palette.len()]);
        }
    }
    PatternSet::from_patterns(slots.into_iter().map(Pattern::from_colors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dfg::Color;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn abc() -> ColorSet {
        ColorSet::from_iter([Color(0), Color(1), Color(2)])
    }

    #[test]
    fn always_covers_all_colors() {
        let colors = abc();
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let set = random_patterns(&colors, 2, 5, &mut rng);
            assert!(set.covers(&colors), "seed {seed}");
            assert_eq!(set.len(), 2);
            assert!(set.iter().all(|p| p.size() == 5));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let colors = abc();
        let a = random_patterns(&colors, 3, 5, &mut StdRng::seed_from_u64(7));
        let b = random_patterns(&colors, 3, 5, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn single_pattern_must_hold_everything() {
        let colors = abc();
        let mut rng = StdRng::seed_from_u64(1);
        let set = random_patterns(&colors, 1, 5, &mut rng);
        assert!(set.covers(&colors));
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn impossible_coverage_panics() {
        let colors: ColorSet = (0..6).map(Color).collect();
        let mut rng = StdRng::seed_from_u64(0);
        random_patterns(&colors, 1, 5, &mut rng);
    }

    #[test]
    fn tight_fit_uses_patch_path() {
        // 10 colors into exactly 2×5 slots: rejection sampling virtually
        // never covers, so the patch path must fire and still cover.
        let colors: ColorSet = (0..10).map(Color).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let set = random_patterns(&colors, 2, 5, &mut rng);
        assert!(set.covers(&colors));
        assert_eq!(set.len(), 2);
    }
}
