//! Joint pattern selection across several kernels.
//!
//! The Montium's 32-configuration budget is per *application*; real
//! applications bundle kernels (FFT + FIR + CORDIC in one radio). Running
//! the paper's §5.2 selection per kernel and unioning the picks both
//! overspends the store (duplicates, dominated subpatterns) and
//! underserves each kernel (the multi-kernel experiment shows patterns
//! chosen for one kernel often *improve* another — Eq. 8's greedy never
//! proposed them).
//!
//! [`select_joint`] runs the Fig. 7 loop once over the **combined**
//! candidate pool: each pattern's priority is the *sum* of its Eq. 8
//! priorities in every kernel (zero where the pattern has no antichains),
//! the balancing denominators are tracked per kernel, and the color
//! number condition is enforced against the union color set so every
//! kernel stays schedulable.

use crate::config::SelectConfig;
use crate::priority::eq8_priority;
use mps_dfg::AnalyzedDfg;
use mps_patterns::{Pattern, PatternSet, PatternStats, PatternTable};

/// Result of joint selection.
#[derive(Clone, Debug)]
pub struct JointOutcome {
    /// The selected patterns, in pick order.
    pub patterns: PatternSet,
    /// `true` for picks that were fabricated from uncovered colors.
    pub fabricated: Vec<bool>,
}

/// Select one shared pattern set for several kernels (see module docs).
///
/// `cfg.pdef` is the *shared* budget. Panics on an empty kernel list;
/// empty graphs contribute nothing and are tolerated.
pub fn select_joint(kernels: &[&AnalyzedDfg], cfg: &SelectConfig) -> JointOutcome {
    assert!(!kernels.is_empty(), "need at least one kernel");
    let tables: Vec<PatternTable> = kernels
        .iter()
        .map(|k| PatternTable::build(k, cfg.enumerate_config()))
        .collect();

    // Combined candidate pool, with per-kernel stats where they exist.
    let mut pool: Vec<Pattern> = Vec::new();
    for t in &tables {
        for s in t.iter() {
            if !pool.contains(&s.pattern) {
                pool.push(s.pattern);
            }
        }
    }
    pool.sort();
    let per_kernel: Vec<Vec<Option<&PatternStats>>> = tables
        .iter()
        .map(|t| pool.iter().map(|p| t.get(p)).collect())
        .collect();

    // Union color set (the joint `L`).
    let mut complete = mps_dfg::ColorSet::new();
    for k in kernels {
        complete = complete.union(&k.dfg().color_set());
    }

    let mut selected_colors = mps_dfg::ColorSet::new();
    let mut selected = PatternSet::new();
    let mut fabricated = Vec::new();
    // Per-kernel balancing denominators (Σ_{Ps} h over that kernel).
    let mut selected_freq: Vec<Vec<u64>> = kernels.iter().map(|k| vec![0u64; k.len()]).collect();
    let mut alive = vec![true; pool.len()];

    for _round in 0..cfg.pdef {
        let remaining_after_this = cfg.pdef - selected.len() - 1;

        let mut best: Option<(f64, usize)> = None;
        for (i, p) in pool.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            if cfg.color_condition {
                let new_colors = p.color_set().difference(&selected_colors).len() as i64;
                let uncovered =
                    (complete.len() - complete.intersection(&selected_colors).len()) as i64;
                let rhs = uncovered - (cfg.capacity as i64) * (remaining_after_this as i64);
                if new_colors < rhs {
                    continue;
                }
            }
            // Joint priority: the α·|p̄|² size bonus is charged once (one
            // store slot), the antichain mass sums over kernels.
            let mut f = 0.0f64;
            let mut any = false;
            for (ki, stats) in per_kernel.iter().enumerate() {
                if let Some(s) = stats[i] {
                    let with_bonus = eq8_priority(s, &selected_freq[ki], cfg);
                    let bonus = if cfg.size_bonus {
                        cfg.alpha * (s.pattern.size() as f64) * (s.pattern.size() as f64)
                    } else {
                        0.0
                    };
                    f += with_bonus - if any { bonus } else { 0.0 };
                    any = true;
                }
            }
            if !any || f <= 0.0 {
                continue;
            }
            if best.is_none_or(|(bf, _)| f > bf) {
                best = Some((f, i));
            }
        }

        match best {
            Some((_, idx)) => {
                let chosen = pool[idx];
                for (ki, stats) in per_kernel.iter().enumerate() {
                    if let Some(s) = stats[idx] {
                        for (dst, &h) in selected_freq[ki].iter_mut().zip(s.node_freq.iter()) {
                            *dst += h;
                        }
                    }
                }
                selected_colors = selected_colors.union(&chosen.color_set());
                selected.insert(chosen);
                fabricated.push(false);
                for (i, p) in pool.iter().enumerate() {
                    if alive[i] && p.is_subpattern_of(&chosen) {
                        alive[i] = false;
                    }
                }
            }
            None => {
                let slots: Vec<mps_dfg::Color> = complete
                    .difference(&selected_colors)
                    .iter()
                    .take(cfg.capacity)
                    .collect();
                if slots.is_empty() {
                    break;
                }
                let fab = Pattern::from_colors(slots);
                selected_colors = selected_colors.union(&fab.color_set());
                selected.insert(fab);
                fabricated.push(true);
                for (i, p) in pool.iter().enumerate() {
                    if alive[i] && p.is_subpattern_of(&fab) {
                        alive[i] = false;
                    }
                }
            }
        }
    }

    JointOutcome {
        patterns: selected,
        fabricated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_scheduler::{schedule_multi_pattern, MultiPatternConfig};
    use mps_workloads::{cordic, fig2, fig4, lattice};

    fn cfg(pdef: usize) -> SelectConfig {
        SelectConfig {
            pdef,
            span_limit: Some(1),
            parallel: false,
            ..Default::default()
        }
    }

    #[test]
    fn single_kernel_matches_per_kernel_selection() {
        let adfg = AnalyzedDfg::new(fig4());
        let joint = select_joint(&[&adfg], &cfg(2));
        let solo = crate::select::select_patterns(&adfg, &cfg(2));
        assert_eq!(joint.patterns, solo.patterns);
    }

    #[test]
    fn joint_set_schedules_every_kernel() {
        let a = AnalyzedDfg::new(fig2());
        let b = AnalyzedDfg::new(lattice(4));
        let c = AnalyzedDfg::new(cordic(4));
        let joint = select_joint(&[&a, &b, &c], &cfg(6));
        for (name, k) in [("fig2", &a), ("lattice", &b), ("cordic", &c)] {
            let r = schedule_multi_pattern(k, &joint.patterns, MultiPatternConfig::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            r.schedule.validate(k, Some(&joint.patterns)).unwrap();
        }
    }

    #[test]
    fn union_colors_force_fabrication_when_budget_tight() {
        // fig2 uses a,b,c; cordic uses a,b,f. One shared pattern must
        // carry 4 colors — only fabrication provides it.
        let a = AnalyzedDfg::new(fig2());
        let b = AnalyzedDfg::new(cordic(3));
        let joint = select_joint(&[&a, &b], &cfg(1));
        assert_eq!(joint.patterns.len(), 1);
        assert!(joint.fabricated[0]);
        let mut union = a.dfg().color_set();
        union = union.union(&b.dfg().color_set());
        assert!(joint.patterns.covers(&union));
    }

    #[test]
    fn budget_is_shared_not_per_kernel() {
        let a = AnalyzedDfg::new(fig2());
        let b = AnalyzedDfg::new(lattice(4));
        let joint = select_joint(&[&a, &b], &cfg(3));
        assert!(joint.patterns.len() <= 3);
    }

    #[test]
    fn deterministic() {
        let a = AnalyzedDfg::new(fig2());
        let b = AnalyzedDfg::new(lattice(4));
        let x = select_joint(&[&a, &b], &cfg(4));
        let y = select_joint(&[&a, &b], &cfg(4));
        assert_eq!(x.patterns, y.patterns);
    }

    #[test]
    fn joint_never_starves_a_small_kernel() {
        // fig4 (5 nodes) next to fig2 (24 nodes): the balancing
        // denominator is per kernel, so fig4's colors still get served.
        let big = AnalyzedDfg::new(fig2());
        let small = AnalyzedDfg::new(fig4());
        let joint = select_joint(&[&big, &small], &cfg(4));
        let r = schedule_multi_pattern(&small, &joint.patterns, MultiPatternConfig::default())
            .expect("small kernel must stay schedulable");
        r.schedule.validate(&small, Some(&joint.patterns)).unwrap();
    }
}
