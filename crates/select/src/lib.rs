//! Pattern selection — the paper's core contribution (§5.2).
//!
//! Given the antichain statistics of a DFG ([`mps_patterns::PatternTable`]),
//! [`select_patterns`] greedily picks `Pdef` patterns by the priority
//! function of Eq. 8:
//!
//! ```text
//! f(p̄_j) = Σ_n  h(p̄_j, n) / (Σ_{p̄_i ∈ Ps} h(p̄_i, n) + ε)  +  α·|p̄_j|²
//! ```
//!
//! subject to the *color number condition* of Eq. 9, which forces every
//! color of the DFG into some selected pattern; when no candidate satisfies
//! it, a pattern is fabricated from uncovered colors (the paper's Fig. 7
//! modification). After each pick, all subpatterns of the chosen pattern
//! are deleted.
//!
//! Baselines for the evaluation:
//! * [`random_patterns`] — the paper's "Random" column: uniform random
//!   patterns, re-drawn until they jointly cover every color,
//! * [`coverage_greedy`] — picks by raw antichain count (no balancing, no
//!   size bonus),
//! * [`exhaustive_best`] — exact search over candidate subsets for tiny
//!   instances, to measure the heuristic's optimality gap.
//!
//! [`select_and_schedule`] wires selection to the multi-pattern scheduler
//! and [`random_baseline`] runs the Monte-Carlo comparison (Table 7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anneal;
mod config;
mod coverage;
mod engine;
mod exhaustive;
mod genetic;
mod merge;
mod multi_kernel;
mod node_cover;
mod pipeline;
mod priority;
mod random;
mod select;
mod throughput;
mod variants;

pub use anneal::{anneal_patterns, select_and_anneal, AnnealConfig, AnnealResult};
pub use config::SelectConfig;
pub use coverage::{
    coverage_greedy, coverage_greedy_from_table, coverage_greedy_from_table_reference,
};
pub use engine::SelectEngine;
pub use exhaustive::{
    exhaustive_best, exhaustive_best_from_table, exhaustive_best_reference, ExhaustiveResult,
};
pub use genetic::{evolve_patterns, GeneticConfig, GeneticResult};
pub use merge::{merge_pass, MergeOutcome};
pub use multi_kernel::{select_joint, JointOutcome};
pub use node_cover::{node_cover_from_table, node_cover_from_table_reference, node_cover_greedy};
pub use pipeline::{
    random_baseline, select_and_schedule, PipelineConfig, PipelineResult, RandomBaseline,
};
pub use priority::eq8_priority;
pub use random::random_patterns;
pub use select::{
    select_from_table, select_from_table_reference, select_patterns, RoundInfo, SelectionOutcome,
};
pub use throughput::{pattern_ii_bound, select_for_throughput, throughput_pattern};
pub use variants::{
    eq8_variant, scarcity_priority, select_with_priority, PriorityFn, ScarcityWeights,
};
