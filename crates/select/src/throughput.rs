//! Throughput-aware pattern selection for software-pipelined kernels.
//!
//! The Eq. 8 selector optimizes for *latency*: it buys the antichains that
//! let many ready nodes issue together. A pipelined loop cares about the
//! *initiation interval* instead, and there the steady-state slot bags mix
//! colors from different pipeline stages — `mps-scheduler`'s modulo
//! scheduler shows Eq. 8's fragmented picks (e.g. `{ac, cc, aa}` on a
//! lattice filter) serving every slot badly.
//!
//! For throughput the right pattern is simply the one whose color mix
//! matches the *whole graph's* color histogram: if the kernel is 50%
//! multiplies, half the ALU slots should multiply, every cycle. This
//! module computes that pattern by bottleneck apportionment:
//!
//! 1. give every color one slot (coverage),
//! 2. repeatedly grant the next slot to the color with the highest
//!    remaining per-slot demand `⌈N_c / k_c⌉`,
//! 3. stop at `C` slots.
//!
//! The resulting single-pattern set has reconfiguration cost zero and an
//! initiation interval of `max_c ⌈N_c / k_c⌉`, which is within one slot
//! of the unconstrained resource bound `⌈N / C⌉` whenever the histogram
//! is not too skewed. Kernels with more colors than ALUs fall back to
//! grouping colors over several patterns.

use mps_dfg::{AnalyzedDfg, Color};
use mps_patterns::{Pattern, PatternSet};

/// Apportion `capacity` slots over the graph's colors proportionally to
/// their node counts (bottleneck rule), producing the single pattern a
/// modulo scheduler wants in every slot.
///
/// Requires the graph to have at least one node and at most `capacity`
/// distinct colors (use [`select_for_throughput`] for the general case).
pub fn throughput_pattern(adfg: &AnalyzedDfg, capacity: usize) -> Pattern {
    let hist = adfg.dfg().color_histogram();
    let colors: Vec<Color> = adfg.dfg().color_set().iter().collect();
    assert!(!colors.is_empty(), "graph must have nodes");
    assert!(
        colors.len() <= capacity,
        "{} colors exceed {capacity} slots; use select_for_throughput",
        colors.len()
    );
    apportion(&colors, &hist, capacity)
}

/// Bottleneck apportionment of `capacity` slots over `colors`.
fn apportion(colors: &[Color], hist: &[usize], capacity: usize) -> Pattern {
    let mut slots: Vec<(Color, usize)> = colors.iter().map(|&c| (c, 1usize)).collect();
    let mut used = colors.len();
    while used < capacity {
        // Grant a slot to the color whose per-slot demand is largest.
        let (_, k) = slots
            .iter_mut()
            .max_by_key(|(c, k)| (hist[c.index()].div_ceil(*k), hist[c.index()]))
            .expect("at least one color");
        *k += 1;
        used += 1;
    }
    Pattern::from_colors(slots.iter().flat_map(|&(c, k)| std::iter::repeat_n(c, k)))
}

/// The initiation interval the pattern supports when configured in every
/// slot: `max_c ⌈N_c / slots_of_c⌉`.
pub fn pattern_ii_bound(adfg: &AnalyzedDfg, pattern: &Pattern) -> usize {
    let hist = adfg.dfg().color_histogram();
    let mut ii = 1usize;
    for (ci, &count) in hist.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let k = pattern.count_of(Color(ci as u8));
        if k == 0 {
            return usize::MAX;
        }
        ii = ii.max(count.div_ceil(k));
    }
    ii
}

/// Throughput-oriented selection for any graph: one apportioned pattern
/// when the colors fit a single pattern, otherwise colors are split into
/// `⌈L / C⌉` groups (largest node count first, round-robin so groups
/// balance) and each group gets its own apportioned pattern.
///
/// The returned set always covers every color, so both the flat and the
/// modulo scheduler accept it. At most `⌈L / C⌉` patterns are produced —
/// independent of `Pdef`, since extra patterns cannot lower the II bound
/// of a one-pattern-per-slot steady state.
pub fn select_for_throughput(adfg: &AnalyzedDfg, capacity: usize) -> PatternSet {
    assert!(capacity >= 1, "need at least one ALU");
    let hist = adfg.dfg().color_histogram();
    let mut colors: Vec<Color> = adfg.dfg().color_set().iter().collect();
    if colors.is_empty() {
        return PatternSet::new();
    }
    if colors.len() <= capacity {
        return PatternSet::from_patterns([throughput_pattern(adfg, capacity)]);
    }
    // Round-robin heavy colors across groups so per-group demand balances.
    colors.sort_by_key(|c| std::cmp::Reverse(hist[c.index()]));
    let groups = colors.len().div_ceil(capacity);
    let mut buckets: Vec<Vec<Color>> = vec![Vec::new(); groups];
    for (i, c) in colors.into_iter().enumerate() {
        buckets[i % groups].push(c);
    }
    PatternSet::from_patterns(
        buckets
            .into_iter()
            .map(|group| apportion(&group, &hist, capacity)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_workloads::{cholesky, cordic, lattice, sobel};

    #[test]
    fn lattice_gets_a_balanced_mixed_pattern() {
        // 10 adds + 10 muls on a 5-slot tile: 2/3 or 3/2 split, II = 5.
        let adfg = AnalyzedDfg::new(lattice(5));
        let p = throughput_pattern(&adfg, 5);
        assert_eq!(p.size(), 5);
        let a = mps_dfg::Color::from_char('a').unwrap();
        let c = mps_dfg::Color::from_char('c').unwrap();
        assert!(p.count_of(a) >= 2 && p.count_of(c) >= 2);
        assert_eq!(pattern_ii_bound(&adfg, &p), 5);
    }

    #[test]
    fn skewed_histogram_gets_skewed_slots() {
        // Sobel: 12 muls vs 11 adds per pixel — nearly even; fir-like
        // check with a 4:1 mix instead.
        let adfg = AnalyzedDfg::new(mps_workloads::fir(12, 1, mps_workloads::AdderShape::Tree));
        // 12 muls, 11 adds on 5 slots: apportionment lands 2–3 per color.
        let p = throughput_pattern(&adfg, 5);
        assert_eq!(p.size(), 5);
        let ii = pattern_ii_bound(&adfg, &p);
        // ⌈23/5⌉ = 5 is the absolute floor; apportionment reaches 6.
        assert!(ii <= 6, "ii = {ii}");
    }

    #[test]
    fn covers_many_color_graphs_with_multiple_patterns() {
        // Cholesky has 4 colors (fits), CORDIC 3; force the multi-pattern
        // path with a tiny capacity.
        let adfg = AnalyzedDfg::new(cholesky(4));
        let set = select_for_throughput(&adfg, 2);
        assert!(set.covers(&adfg.dfg().color_set()));
        assert!(set.len() == 2, "4 colors / 2 slots = 2 patterns");
        for p in set.iter() {
            assert!(p.size() <= 2);
        }
    }

    #[test]
    fn single_color_graph_gets_full_width() {
        let adfg = AnalyzedDfg::new(mps_workloads::fir(1, 6, mps_workloads::AdderShape::Tree));
        // 6 independent muls.
        let p = throughput_pattern(&adfg, 5);
        assert_eq!(p.to_string(), "ccccc");
        assert_eq!(pattern_ii_bound(&adfg, &p), 2);
    }

    #[test]
    fn modulo_ii_improves_over_eq8_on_lattice() {
        // The headline motivation: Eq. 8's latency-oriented picks leave
        // throughput on the table; the apportioned pattern halves the II.
        let adfg = AnalyzedDfg::new(lattice(5));
        let eq8 = crate::select::select_patterns(
            &adfg,
            &crate::SelectConfig {
                pdef: 4,
                span_limit: Some(2),
                parallel: false,
                ..Default::default()
            },
        )
        .patterns;
        let tp = select_for_throughput(&adfg, 5);
        let ii_eq8 = mps_scheduler::schedule_modulo(&adfg, &eq8, Default::default())
            .unwrap()
            .ii;
        let ii_tp = mps_scheduler::schedule_modulo(&adfg, &tp, Default::default())
            .unwrap()
            .ii;
        assert!(ii_tp < ii_eq8, "throughput {ii_tp} !< eq8 {ii_eq8}");
        assert_eq!(ii_tp, 5, "the apportioned pattern reaches its bound");
    }

    #[test]
    fn throughput_set_still_schedules_flat() {
        for g in [lattice(4), cordic(5), sobel(2), cholesky(3)] {
            let adfg = AnalyzedDfg::new(g);
            let set = select_for_throughput(&adfg, 5);
            let r = mps_scheduler::schedule_multi_pattern(
                &adfg,
                &set,
                mps_scheduler::MultiPatternConfig::default(),
            )
            .unwrap();
            r.schedule.validate(&adfg, Some(&set)).unwrap();
        }
    }
}
