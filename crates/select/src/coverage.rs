//! Frequency-greedy baseline selector.

use crate::config::SelectConfig;
use mps_dfg::AnalyzedDfg;
use mps_patterns::{Pattern, PatternSet, PatternTable};

/// Greedy max-count selection: each round picks the surviving pattern with
/// the most antichains (ties: larger pattern, then canonical order), with
/// the same subpattern deletion and color-coverage backstop as the real
/// algorithm but **no balancing and no size bonus**.
///
/// This is the natural "just take the most frequent patterns" strawman the
/// paper's Eq. 8 improves on; the ablation benches quantify the gap.
///
/// The selection runs on the compacted-candidate engine
/// ([`coverage_greedy_from_table`]); its scoring key is round-invariant,
/// so unlike the Eq. 8 and node-cover engines there is nothing to cache —
/// the win is that dead candidates leave the scan entirely instead of
/// being skipped one `alive[i]` test at a time.
pub fn coverage_greedy(adfg: &AnalyzedDfg, cfg: &SelectConfig) -> PatternSet {
    let table = PatternTable::build(adfg, cfg.enumerate_config());
    coverage_greedy_from_table(adfg, &table, cfg)
}

/// [`coverage_greedy`] against a prebuilt table (decision-identical to
/// [`coverage_greedy_from_table_reference`]).
pub fn coverage_greedy_from_table(
    adfg: &AnalyzedDfg,
    table: &PatternTable,
    cfg: &SelectConfig,
) -> PatternSet {
    let stats = table.stats();
    let complete = adfg.dfg().color_set();
    let mut selected = PatternSet::new();
    let packed = crate::select::packed_keys(stats);
    let mut alive: Vec<u32> = (0..stats.len() as u32).collect();

    for round in 0..cfg.pdef {
        let remaining_after = cfg.pdef - round - 1;
        let selected_colors = selected.color_set();
        let mut best: Option<((u64, usize), u32)> = None;
        for &i in &alive {
            let s = &stats[i as usize];
            // Keep the coverage backstop, otherwise the baseline frequently
            // produces unschedulable sets and the comparison is vacuous.
            let new_colors = s.pattern.color_set().difference(&selected_colors).len() as i64;
            let uncovered = (complete.len() - complete.intersection(&selected_colors).len()) as i64;
            if new_colors < uncovered - (cfg.capacity as i64) * (remaining_after as i64) {
                continue;
            }
            let key = (s.antichain_count, s.pattern.size());
            if best.is_none_or(|(bk, _)| key > bk) {
                best = Some((key, i));
            }
        }
        match best {
            Some((_, idx)) => {
                let chosen = stats[idx as usize].pattern;
                selected.insert(chosen);
                let chosen_key = packed[idx as usize];
                alive.retain(|&i| {
                    !crate::select::deleted_by(
                        &stats[i as usize].pattern,
                        packed[i as usize],
                        &chosen,
                        chosen_key,
                    )
                });
            }
            None => {
                let uncovered: Vec<mps_dfg::Color> = complete
                    .difference(&selected.color_set())
                    .iter()
                    .take(cfg.capacity)
                    .collect();
                if uncovered.is_empty() {
                    break;
                }
                // Note: like the original, fabrication does *not* delete
                // subpatterns — the strawman only prunes after real picks.
                selected.insert(Pattern::from_colors(uncovered));
            }
        }
    }
    selected
}

/// The original dense-scan loop (full `alive` bitmap walk per round),
/// kept as the decision oracle for [`coverage_greedy_from_table`].
pub fn coverage_greedy_from_table_reference(
    adfg: &AnalyzedDfg,
    table: &PatternTable,
    cfg: &SelectConfig,
) -> PatternSet {
    let stats: Vec<&mps_patterns::PatternStats> = table.iter().collect();
    let mut alive = vec![true; stats.len()];
    let complete = adfg.dfg().color_set();
    let mut selected = PatternSet::new();

    for round in 0..cfg.pdef {
        let remaining_after = cfg.pdef - round - 1;
        let selected_colors = selected.color_set();
        let mut best: Option<(u64, usize, usize)> = None; // (count, size, idx)
        for (i, s) in stats.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            let new_colors = s.pattern.color_set().difference(&selected_colors).len() as i64;
            let uncovered = (complete.len() - complete.intersection(&selected_colors).len()) as i64;
            if new_colors < uncovered - (cfg.capacity as i64) * (remaining_after as i64) {
                continue;
            }
            let key = (s.antichain_count, s.pattern.size(), i);
            let better = match best {
                None => true,
                Some((bc, bs, bi)) => {
                    (key.0, key.1) > (bc, bs) || ((key.0, key.1) == (bc, bs) && i < bi)
                }
            };
            if better {
                best = Some(key);
            }
        }
        match best {
            Some((_, _, idx)) => {
                let chosen = stats[idx].pattern;
                selected.insert(chosen);
                for (i, s) in stats.iter().enumerate() {
                    if alive[i] && s.pattern.is_subpattern_of(&chosen) {
                        alive[i] = false;
                    }
                }
            }
            None => {
                let uncovered: Vec<mps_dfg::Color> = complete
                    .difference(&selected.color_set())
                    .iter()
                    .take(cfg.capacity)
                    .collect();
                if uncovered.is_empty() {
                    break;
                }
                selected.insert(Pattern::from_colors(uncovered));
            }
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_workloads::{fig2, fig4};

    fn cfg(pdef: usize) -> SelectConfig {
        SelectConfig {
            pdef,
            parallel: false,
            ..Default::default()
        }
    }

    #[test]
    fn covers_all_colors() {
        for pdef in 1..=4 {
            let adfg = AnalyzedDfg::new(fig2());
            let set = coverage_greedy(&adfg, &cfg(pdef));
            assert!(set.covers(&adfg.dfg().color_set()), "pdef={pdef}");
        }
    }

    #[test]
    fn fig4_greedy_prefers_raw_count() {
        let adfg = AnalyzedDfg::new(fig4());
        // Counts: {a}=3, {b}=2, {aa}=2, {bb}=1. Greedy takes {a} first —
        // exactly the myopia Eq. 8's size bonus avoids.
        let set = coverage_greedy(&adfg, &cfg(2));
        assert_eq!(set.patterns()[0].to_string(), "a");
    }

    #[test]
    fn deterministic() {
        let adfg = AnalyzedDfg::new(fig2());
        assert_eq!(
            coverage_greedy(&adfg, &cfg(3)),
            coverage_greedy(&adfg, &cfg(3))
        );
    }

    #[test]
    fn engine_matches_reference() {
        for dfg in [fig2(), fig4()] {
            let adfg = AnalyzedDfg::new(dfg);
            let table = PatternTable::build(
                &adfg,
                mps_patterns::EnumerateConfig {
                    parallel: false,
                    ..Default::default()
                },
            );
            for pdef in 1..=6 {
                assert_eq!(
                    coverage_greedy_from_table(&adfg, &table, &cfg(pdef)),
                    coverage_greedy_from_table_reference(&adfg, &table, &cfg(pdef)),
                    "pdef={pdef}"
                );
            }
        }
    }
}
