//! Pattern-merging post-pass — an extension beyond the paper.
//!
//! The §5.2 algorithm only ever considers patterns *realized by a single
//! antichain*. That misses pattern sets whose value comes from serving
//! *different* cycles with one configuration: e.g. a graph whose adds and
//! subs are never parallelizable still profits from one `{a,a,b,b}`
//! configuration used by an all-add cycle here and an all-sub cycle there
//! (no `aabb` antichain exists, so Eq. 8 can never propose it).
//!
//! [`merge_pass`] repairs this after selection: while two selected
//! patterns fit together within the tile capacity `C`, try replacing them
//! by their bag-union, freeing a configuration slot for the next-best
//! candidate (or simply shrinking the config store). A merge is kept only
//! if the re-scheduled cycle count does not regress — so the pass is
//! monotone by construction.

use crate::config::SelectConfig;
use mps_dfg::AnalyzedDfg;
use mps_patterns::{Pattern, PatternSet};
use mps_scheduler::{schedule_multi_pattern, MultiPatternConfig};

/// Outcome of the merge pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeOutcome {
    /// The (possibly improved) pattern set.
    pub patterns: PatternSet,
    /// Cycles with the final set.
    pub cycles: usize,
    /// Number of accepted merges.
    pub merges: usize,
}

/// Bag-union of two patterns (concatenation of their color bags).
fn union(a: &Pattern, b: &Pattern) -> Pattern {
    Pattern::from_colors(a.colors().iter().chain(b.colors().iter()).copied())
}

/// Greedy merge pass over a selected pattern set.
///
/// Repeatedly evaluates every pair whose union fits in `cfg.capacity`,
/// accepts the pair whose merged set yields the fewest cycles (strictly
/// fewer or equal with a smaller store), and stops when no pair helps.
/// The scheduler runs with `sched` for every evaluation, so keep the
/// graph small or the pattern count moderate.
pub fn merge_pass(
    adfg: &AnalyzedDfg,
    selected: &PatternSet,
    cfg: &SelectConfig,
    sched: MultiPatternConfig,
) -> MergeOutcome {
    let baseline = schedule_multi_pattern(adfg, selected, sched)
        .map(|r| r.schedule.len())
        .unwrap_or(usize::MAX);
    let mut current: Vec<Pattern> = selected.iter().copied().collect();
    let mut cycles = baseline;
    let mut merges = 0usize;

    loop {
        let mut best: Option<(usize, usize, usize, Pattern)> = None; // (cycles, i, j, merged)
        for i in 0..current.len() {
            for j in i + 1..current.len() {
                let merged = union(&current[i], &current[j]);
                if merged.size() > cfg.capacity {
                    continue;
                }
                let mut candidate: Vec<Pattern> = Vec::with_capacity(current.len() - 1);
                for (k, p) in current.iter().enumerate() {
                    if k != i && k != j {
                        candidate.push(*p);
                    }
                }
                candidate.push(merged);
                let set = PatternSet::from_patterns(candidate);
                if let Ok(r) = schedule_multi_pattern(adfg, &set, sched) {
                    let c = r.schedule.len();
                    // Merging shrinks the config store, so equal cycles
                    // still count as an improvement.
                    if c <= cycles && best.as_ref().is_none_or(|(bc, ..)| c < *bc) {
                        best = Some((c, i, j, merged));
                    }
                }
            }
        }
        match best {
            Some((c, i, j, merged)) => {
                // Remove j first (j > i) to keep indices valid.
                current.remove(j);
                current.remove(i);
                current.push(merged);
                cycles = c;
                merges += 1;
            }
            None => break,
        }
    }

    MergeOutcome {
        patterns: PatternSet::from_patterns(current),
        cycles,
        merges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::select_patterns;
    use mps_dfg::{Color, DfgBuilder};

    fn c(ch: char) -> Color {
        Color::from_char(ch).unwrap()
    }

    /// Adds strictly before subs: no mixed antichain exists, so plain
    /// selection can never propose {aabb}-style patterns — the merge pass
    /// must find them.
    fn phased_graph() -> AnalyzedDfg {
        let mut b = DfgBuilder::new();
        let adds: Vec<_> = (0..4)
            .map(|i| b.add_node(format!("a{i}"), c('a')))
            .collect();
        let subs: Vec<_> = (0..4)
            .map(|i| b.add_node(format!("b{i}"), c('b')))
            .collect();
        for &u in &adds {
            for &v in &subs {
                b.add_edge(u, v).unwrap();
            }
        }
        AnalyzedDfg::new(b.build().unwrap())
    }

    #[test]
    fn merge_never_regresses() {
        for name in ["fig2", "dft5", "dct8"] {
            let adfg = AnalyzedDfg::new(mps_workloads::by_name(name).unwrap());
            let cfg = SelectConfig {
                pdef: 3,
                span_limit: Some(1),
                parallel: false,
                ..Default::default()
            };
            let out = select_patterns(&adfg, &cfg);
            let before = schedule_multi_pattern(&adfg, &out.patterns, Default::default())
                .unwrap()
                .schedule
                .len();
            let merged = merge_pass(&adfg, &out.patterns, &cfg, Default::default());
            assert!(merged.cycles <= before, "{name}");
            assert!(merged.patterns.covers(&adfg.dfg().color_set()), "{name}");
        }
    }

    #[test]
    fn merge_finds_cross_phase_pattern() {
        let adfg = phased_graph();
        let cfg = SelectConfig {
            pdef: 2,
            parallel: false,
            ..Default::default()
        };
        let out = select_patterns(&adfg, &cfg);
        let merged = merge_pass(&adfg, &out.patterns, &cfg, Default::default());
        // Selection alone: candidates are all-a or all-b patterns (plus a
        // possible fabrication); the merged set must do at least as well
        // and usually collapses to a single wide mixed pattern.
        let before = schedule_multi_pattern(&adfg, &out.patterns, Default::default())
            .unwrap()
            .schedule
            .len();
        assert!(merged.cycles <= before);
        if merged.merges > 0 {
            assert!(merged.patterns.len() < out.patterns.len());
        }
    }

    #[test]
    fn merge_respects_capacity() {
        let adfg = phased_graph();
        let cfg = SelectConfig {
            pdef: 2,
            capacity: 5,
            parallel: false,
            ..Default::default()
        };
        let out = select_patterns(&adfg, &cfg);
        let merged = merge_pass(&adfg, &out.patterns, &cfg, Default::default());
        assert!(merged.patterns.iter().all(|p| p.size() <= 5));
    }

    #[test]
    fn empty_selection_is_noop() {
        let adfg = AnalyzedDfg::new(DfgBuilder::new().build().unwrap());
        let merged = merge_pass(
            &adfg,
            &PatternSet::new(),
            &SelectConfig::default(),
            Default::default(),
        );
        assert_eq!(merged.merges, 0);
    }
}
