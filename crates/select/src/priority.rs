//! The Eq. 8 selection priority.

use crate::config::SelectConfig;
use mps_patterns::PatternStats;

/// Compute the Eq. 8 priority of a candidate pattern.
///
/// `selected_freq[n]` must hold `Σ_{p̄_i ∈ Ps} h(p̄_i, n)` — the number of
/// antichains covering node `n` across the already-selected patterns.
///
/// With `cfg.balancing` off the denominator is the constant `ε`; with
/// `cfg.size_bonus` off the `α·|p̄|²` term is dropped.
pub fn eq8_priority(stats: &PatternStats, selected_freq: &[u64], cfg: &SelectConfig) -> f64 {
    let mut sum = 0.0;
    for (n, &h) in stats.node_freq.iter().enumerate() {
        if h == 0 {
            continue;
        }
        let denom = if cfg.balancing {
            selected_freq[n] as f64 + cfg.epsilon
        } else {
            cfg.epsilon
        };
        sum += h as f64 / denom;
    }
    if cfg.size_bonus {
        let size = stats.pattern.size() as f64;
        sum += cfg.alpha * size * size;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_patterns::Pattern;

    fn stats(pattern: &str, freq: Vec<u64>) -> PatternStats {
        PatternStats {
            pattern: Pattern::parse(pattern).unwrap(),
            antichain_count: freq.iter().sum::<u64>() / pattern.len().max(1) as u64,
            node_freq: freq,
        }
    }

    /// The paper's §5.2 first-round worked example on Fig. 4:
    /// f(p̄1)=26, f(p̄2)=24, f(p̄3)=88, f(p̄4)=84.
    #[test]
    fn paper_first_round_values() {
        let cfg = SelectConfig::default();
        let none = vec![0u64; 5];
        assert_eq!(
            eq8_priority(&stats("a", vec![1, 1, 1, 0, 0]), &none, &cfg),
            26.0
        );
        assert_eq!(
            eq8_priority(&stats("b", vec![0, 0, 0, 1, 1]), &none, &cfg),
            24.0
        );
        assert_eq!(
            eq8_priority(&stats("aa", vec![1, 1, 2, 0, 0]), &none, &cfg),
            88.0
        );
        assert_eq!(
            eq8_priority(&stats("bb", vec![0, 0, 0, 1, 1]), &none, &cfg),
            84.0
        );
    }

    /// Second round after selecting p̄3 = {aa}: the a-nodes are covered
    /// (frequencies 1,1,2) but p̄2/p̄4 only touch b-nodes, so their values
    /// keep the old value (the paper makes this exact observation).
    #[test]
    fn paper_second_round_values() {
        let cfg = SelectConfig::default();
        let after_p3 = vec![1u64, 1, 2, 0, 0];
        assert_eq!(
            eq8_priority(&stats("b", vec![0, 0, 0, 1, 1]), &after_p3, &cfg),
            24.0
        );
        assert_eq!(
            eq8_priority(&stats("bb", vec![0, 0, 0, 1, 1]), &after_p3, &cfg),
            84.0
        );
        // A hypothetical second a-pattern *is* damped.
        let damped = eq8_priority(&stats("a", vec![1, 1, 1, 0, 0]), &after_p3, &cfg);
        assert!(damped < 26.0);
        assert_eq!(damped, 1.0 / 1.5 + 1.0 / 1.5 + 1.0 / 2.5 + 20.0);
    }

    #[test]
    fn without_size_bonus_b_and_bb_tie() {
        // The paper: "If α·|p̄|² is not part of the priority function, both
        // f(p̄2) and f(p̄4) will be 4."
        let cfg = SelectConfig {
            size_bonus: false,
            ..Default::default()
        };
        let none = vec![0u64; 5];
        assert_eq!(
            eq8_priority(&stats("b", vec![0, 0, 0, 1, 1]), &none, &cfg),
            4.0
        );
        assert_eq!(
            eq8_priority(&stats("bb", vec![0, 0, 0, 1, 1]), &none, &cfg),
            4.0
        );
    }

    #[test]
    fn without_balancing_no_damping() {
        let cfg = SelectConfig {
            balancing: false,
            size_bonus: false,
            ..Default::default()
        };
        let heavy = vec![100u64, 100, 100, 100, 100];
        let s = stats("a", vec![1, 1, 1, 0, 0]);
        assert_eq!(
            eq8_priority(&s, &heavy, &cfg),
            6.0,
            "ignores selected coverage"
        );
    }

    #[test]
    fn zero_frequency_pattern_scores_only_bonus() {
        let cfg = SelectConfig::default();
        let s = stats("ab", vec![0, 0, 0, 0, 0]);
        assert_eq!(eq8_priority(&s, &[0; 5], &cfg), 20.0 * 4.0);
    }

    /// Eq. 8 is monotone non-increasing in the selected frequencies — the
    /// invariant the cover engine's lazy-greedy argmax rests on (cached
    /// scores are upper bounds): growing any denominator cannot raise the
    /// priority.
    #[test]
    fn priority_is_monotone_in_selected_freq() {
        let s = stats("aab", vec![3, 0, 7, 1, 0, 0, 2]);
        let cfg = SelectConfig::default();
        let mut freq = vec![0u64; 7];
        let mut last = eq8_priority(&s, &freq, &cfg);
        for step in [(0usize, 2u64), (2, 1), (6, 10), (3, 1), (0, 5)] {
            freq[step.0] += step.1;
            let now = eq8_priority(&s, &freq, &cfg);
            assert!(now <= last, "after bumping node {}: {now} > {last}", step.0);
            last = now;
        }
    }
}
