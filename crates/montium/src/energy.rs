//! A coarse energy model for ranking schedules.

use crate::exec::ExecReport;
use serde::{Deserialize, Serialize};

/// Energy cost parameters (arbitrary units — the model ranks schedules,
/// it does not claim absolute Joules; the Montium's published energy
/// figures motivate the default ratios: multiplications dominate, and
/// reconfiguration costs roughly a handful of ALU ops).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Cost of an addition/subtraction-class op.
    pub alu_op: f64,
    /// Cost of a multiplication-class op (color index 2, the paper's `c`).
    pub mul_op: f64,
    /// Cost of loading a configuration into the sequencer.
    pub config_load: f64,
    /// Static cost per cycle per ALU (leakage/clock).
    pub idle_per_alu_cycle: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            alu_op: 1.0,
            mul_op: 3.0,
            config_load: 5.0,
            idle_per_alu_cycle: 0.1,
        }
    }
}

/// Itemized energy estimate of one replay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyEstimate {
    /// Dynamic energy of the executed operations.
    pub compute: f64,
    /// Reconfiguration energy.
    pub reconfig: f64,
    /// Static energy over the schedule's duration.
    pub statics: f64,
}

impl EnergyEstimate {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.compute + self.reconfig + self.statics
    }
}

impl EnergyModel {
    /// Estimate the energy of a replayed schedule. Color index 2 (the
    /// paper's `c`) is priced as a multiplication, everything else as a
    /// plain ALU op.
    pub fn estimate(&self, report: &ExecReport) -> EnergyEstimate {
        let mut compute = 0.0;
        for (ci, &ops) in report.ops_per_color.iter().enumerate() {
            let unit = if ci == 2 { self.mul_op } else { self.alu_op };
            compute += unit * ops as f64;
        }
        EnergyEstimate {
            compute,
            reconfig: self.config_load * report.config_loads as f64,
            statics: self.idle_per_alu_cycle * (report.cycles * report.alu_busy.len()) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: usize, loads: usize, ops: Vec<u64>) -> ExecReport {
        ExecReport {
            cycles,
            alu_busy: vec![0; 5],
            config_loads: loads,
            bindings: Vec::new(),
            ops_per_color: ops,
        }
    }

    #[test]
    fn itemized_costs() {
        let m = EnergyModel::default();
        let e = m.estimate(&report(7, 3, vec![14, 4, 6]));
        assert_eq!(e.compute, 14.0 + 4.0 + 18.0);
        assert_eq!(e.reconfig, 15.0);
        assert!((e.statics - 3.5).abs() < 1e-12);
        assert!((e.total() - (36.0 + 15.0 + 3.5)).abs() < 1e-12);
    }

    #[test]
    fn fewer_reconfigs_cost_less() {
        let m = EnergyModel::default();
        let a = m.estimate(&report(7, 7, vec![10, 0, 0]));
        let b = m.estimate(&report(7, 1, vec![10, 0, 0]));
        assert!(b.total() < a.total());
    }
}
