//! Register allocation for scheduled values — the *allocation* phase.
//!
//! The Montium compiler's fourth phase (paper §1: Transformation,
//! Clustering, Scheduling, **Allocation**) binds every value that crosses a
//! cycle boundary to physical storage: the ALUs' register files (`Ra`–`Rd`
//! per ALU in Fig. 1) or the tile memories (`MEM1`/`MEM2`). Scheduling
//! fixes all lifetimes, so allocation is an interval problem; this module
//! implements the classic **linear-scan** allocator over those intervals:
//!
//! * values are processed in order of production cycle;
//! * each gets a free register if one exists;
//! * otherwise the live value with the *furthest last use* is spilled to
//!   memory (it blocks its register for the longest), which is optimal for
//!   minimizing spill count on interval graphs.
//!
//! The point for the paper's evaluation: two schedules with equal cycle
//! counts can differ sharply in storage footprint. [`allocate_registers`]
//! makes that visible, and the invariant (`verify`) that no two
//! simultaneously-live values share a register is enforced in tests.

use crate::error::MontiumError;
use mps_dfg::{AnalyzedDfg, NodeId};
use mps_scheduler::Schedule;

/// Storage parameters for allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegFileParams {
    /// Total register slots across the tile. The published tile has four
    /// register files (`Ra`–`Rd`) on each of 5 ALUs.
    pub registers: usize,
    /// Memory slots available for spills (`MEM1`/`MEM2` banks). Allocation
    /// fails with [`MontiumError`] when even spilling cannot hold a value.
    pub memory_slots: usize,
}

impl Default for RegFileParams {
    /// 5 ALUs × 4 register files, two 512-word memories.
    fn default() -> Self {
        RegFileParams {
            registers: 20,
            memory_slots: 1024,
        }
    }
}

/// Where a value lives for its whole lifetime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Location {
    /// Held in register `r` (tile-global register index).
    Reg(u16),
    /// Spilled to memory slot `m`.
    Mem(u32),
}

/// Result of register allocation for one schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegAllocReport {
    /// Location of each node's output value, indexed by node id. `None`
    /// for values that never cross a cycle boundary (consumed in the same
    /// cycle is impossible here — dependencies are strict — so `None`
    /// only ever appears for zero-lifetime sinks of empty schedules).
    pub assignments: Vec<Option<Location>>,
    /// Distinct registers actually used.
    pub registers_used: usize,
    /// Number of values spilled to memory.
    pub spills: usize,
    /// Total value-cycles spent in memory (spill cost proxy).
    pub spilled_value_cycles: u64,
    /// Peak number of simultaneously live values (register + memory).
    pub peak_live: usize,
}

/// A value's live interval: live during cycles `(born, dies]`.
#[derive(Clone, Copy, Debug)]
struct Interval {
    node: NodeId,
    born: usize,
    dies: usize,
}

fn overlaps(a: &Interval, b: &Interval) -> bool {
    a.born < b.dies && b.born < a.dies
}

/// Compute the live interval of every node under `schedule`. Sinks stay
/// live through the final cycle (application outputs must be written out).
fn intervals(adfg: &AnalyzedDfg, schedule: &Schedule) -> Vec<Interval> {
    let n = adfg.len();
    let at = schedule.node_cycles(n);
    let cycles = schedule.len();
    let mut out = Vec::with_capacity(n);
    for v in adfg.dfg().node_ids() {
        let born = at[v.index()].expect("schedule must place every node; validate first");
        let succs = adfg.dfg().succs(v);
        let dies = if succs.is_empty() {
            cycles
        } else {
            succs
                .iter()
                .map(|s| at[s.index()].expect("schedule must place every node"))
                .max()
                .unwrap()
        };
        out.push(Interval {
            node: v,
            born,
            dies,
        });
    }
    out
}

/// Linear-scan register allocation for the values of `schedule`.
///
/// Errors with [`MontiumError::OutOfStorage`] when registers *and* memory
/// are exhausted at some cycle. The schedule must place every node — run
/// [`mps_scheduler::Schedule::validate`] first.
pub fn allocate_registers(
    adfg: &AnalyzedDfg,
    schedule: &Schedule,
    params: RegFileParams,
) -> Result<RegAllocReport, MontiumError> {
    let mut ivs = intervals(adfg, schedule);
    ivs.sort_by_key(|iv| (iv.born, iv.dies, iv.node.0));

    let n = adfg.len();
    let mut assignments: Vec<Option<Location>> = vec![None; n];
    // Active register-resident intervals, kept sorted by (dies, node) so
    // expiry and furthest-end lookups are cheap and deterministic.
    let mut active: Vec<(Interval, u16)> = Vec::new();
    let mut free_regs: Vec<u16> = (0..params.registers as u16).rev().collect();
    let mut regs_high_water = 0usize;
    let mut mem_in_use: Vec<Interval> = Vec::new();
    let mut next_mem_slot = 0u32;
    let mut spills = 0usize;
    let mut spilled_cycles = 0u64;

    for iv in ivs.iter().copied() {
        if iv.dies <= iv.born {
            // Zero-length lifetime: the value never crosses a cycle
            // boundary (only possible for sinks in degenerate schedules).
            continue;
        }
        // Expire register intervals that died at or before this birth.
        let mut i = 0;
        while i < active.len() {
            if active[i].0.dies <= iv.born {
                free_regs.push(active[i].1);
                active.remove(i);
            } else {
                i += 1;
            }
        }
        mem_in_use.retain(|m| m.dies > iv.born);

        if let Some(r) = free_regs.pop() {
            assignments[iv.node.index()] = Some(Location::Reg(r));
            active.push((iv, r));
            regs_high_water = regs_high_water.max(params.registers - free_regs.len());
        } else {
            // No free register: spill whichever live value (including the
            // incoming one) has the furthest last use.
            let victim = active
                .iter()
                .enumerate()
                .max_by_key(|(_, (a, _))| (a.dies, a.node.0))
                .map(|(i, _)| i);
            let spill_iv = match victim {
                Some(vi) if active[vi].0.dies > iv.dies => {
                    // Steal the register from the furthest-ending value.
                    let (old, reg) = active.remove(vi);
                    assignments[iv.node.index()] = Some(Location::Reg(reg));
                    active.push((iv, reg));
                    old
                }
                _ => iv,
            };
            if mem_in_use.len() >= params.memory_slots {
                return Err(MontiumError::OutOfStorage {
                    cycle: spill_iv.born,
                    live: params.registers + mem_in_use.len() + 1,
                });
            }
            assignments[spill_iv.node.index()] = Some(Location::Mem(next_mem_slot));
            next_mem_slot += 1;
            mem_in_use.push(spill_iv);
            spills += 1;
            spilled_cycles += (spill_iv.dies - spill_iv.born) as u64;
        }
    }

    // Peak simultaneous liveness over all cycles (register + memory).
    let lt = crate::lifetime::lifetimes(adfg, schedule);

    Ok(RegAllocReport {
        assignments,
        registers_used: regs_high_water,
        spills,
        spilled_value_cycles: spilled_cycles,
        peak_live: lt.peak,
    })
}

/// Check an allocation: no two values whose lifetimes overlap may share a
/// register. Returns the first conflicting pair, if any. Memory slots are
/// unique per value by construction and are not checked.
pub fn verify(
    adfg: &AnalyzedDfg,
    schedule: &Schedule,
    report: &RegAllocReport,
) -> Option<(NodeId, NodeId)> {
    let ivs = intervals(adfg, schedule);
    for (i, a) in ivs.iter().enumerate() {
        let Some(Location::Reg(ra)) = report.assignments[a.node.index()] else {
            continue;
        };
        for b in ivs.iter().skip(i + 1) {
            let Some(Location::Reg(rb)) = report.assignments[b.node.index()] else {
                continue;
            };
            if ra == rb && overlaps(a, b) {
                return Some((a.node, b.node));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dfg::{Color, DfgBuilder};
    use mps_patterns::PatternSet;
    use mps_scheduler::{schedule_multi_pattern, MultiPatternConfig};

    fn c(ch: char) -> Color {
        Color::from_char(ch).unwrap()
    }

    fn schedule(adfg: &AnalyzedDfg, pats: &str) -> Schedule {
        let ps = PatternSet::parse(pats).unwrap();
        schedule_multi_pattern(adfg, &ps, MultiPatternConfig::default())
            .unwrap()
            .schedule
    }

    fn chain(len: usize) -> AnalyzedDfg {
        let mut b = DfgBuilder::new();
        let ids: Vec<_> = (0..len)
            .map(|i| b.add_node(format!("n{i}"), c('a')))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        AnalyzedDfg::new(b.build().unwrap())
    }

    /// k producers, one consumer of all.
    fn fanin(k: usize) -> AnalyzedDfg {
        let mut b = DfgBuilder::new();
        let prods: Vec<_> = (0..k)
            .map(|i| b.add_node(format!("p{i}"), c('a')))
            .collect();
        let sink = b.add_node("sink", c('b'));
        for &p in &prods {
            b.add_edge(p, sink).unwrap();
        }
        AnalyzedDfg::new(b.build().unwrap())
    }

    #[test]
    fn chain_needs_one_register() {
        let adfg = chain(6);
        let s = schedule(&adfg, "a");
        let r = allocate_registers(&adfg, &s, RegFileParams::default()).unwrap();
        assert_eq!(r.registers_used, 1);
        assert_eq!(r.spills, 0);
        assert!(verify(&adfg, &s, &r).is_none());
    }

    #[test]
    fn no_spills_when_registers_cover_peak() {
        let adfg = fanin(6);
        let s = schedule(&adfg, "aaab");
        let r = allocate_registers(&adfg, &s, RegFileParams::default()).unwrap();
        assert_eq!(r.spills, 0);
        assert!(r.registers_used <= r.peak_live);
        assert!(verify(&adfg, &s, &r).is_none());
    }

    #[test]
    fn spills_under_register_pressure() {
        let adfg = fanin(6);
        let s = schedule(&adfg, "aaab"); // 2 producer cycles, all 6 live at sink
        let tight = RegFileParams {
            registers: 2,
            memory_slots: 16,
        };
        let r = allocate_registers(&adfg, &s, tight).unwrap();
        assert!(r.spills >= 1, "peak {} with 2 regs must spill", r.peak_live);
        assert!(verify(&adfg, &s, &r).is_none());
        assert!(r.spilled_value_cycles >= r.spills as u64);
    }

    #[test]
    fn out_of_storage_is_an_error() {
        let adfg = fanin(8);
        let s = schedule(&adfg, "aaaab");
        let starved = RegFileParams {
            registers: 1,
            memory_slots: 1,
        };
        assert!(matches!(
            allocate_registers(&adfg, &s, starved),
            Err(MontiumError::OutOfStorage { .. })
        ));
    }

    #[test]
    fn every_crossing_value_gets_a_location() {
        let adfg = AnalyzedDfg::new(mps_workloads::fig2());
        let s = schedule(&adfg, "aabcc aaacc");
        let r = allocate_registers(&adfg, &s, RegFileParams::default()).unwrap();
        for v in adfg.dfg().node_ids() {
            assert!(
                r.assignments[v.index()].is_some(),
                "value of {} must be stored",
                adfg.dfg().name(v)
            );
        }
        assert!(verify(&adfg, &s, &r).is_none());
    }

    #[test]
    fn furthest_end_spilling_beats_spilling_newcomer() {
        // One long-lived value (lives to the end) plus a stream of
        // short-lived ones through a single register: linear scan parks
        // the long value in memory once and keeps the register hot.
        let mut b = DfgBuilder::new();
        let long = b.add_node("long", c('a'));
        let sink = b.add_node("sink", c('b'));
        b.add_edge(long, sink).unwrap();
        let mut prev = None;
        for i in 0..4 {
            let v = b.add_node(format!("s{i}"), c('a'));
            if let Some(p) = prev {
                b.add_edge(p, v).unwrap();
            }
            prev = Some(v);
        }
        if let Some(p) = prev {
            b.add_edge(p, sink).unwrap();
        }
        let adfg = AnalyzedDfg::new(b.build().unwrap());
        let s = schedule(&adfg, "ab");
        let tight = RegFileParams {
            registers: 1,
            memory_slots: 8,
        };
        let r = allocate_registers(&adfg, &s, tight).unwrap();
        assert!(verify(&adfg, &s, &r).is_none());
        // Exactly one spill: the long-lived value.
        assert_eq!(r.spills, 1);
        assert!(matches!(
            r.assignments[long.index()],
            Some(Location::Mem(_))
        ));
    }

    #[test]
    fn deterministic() {
        let adfg = AnalyzedDfg::new(mps_workloads::fig2());
        let s = schedule(&adfg, "aabcc aaacc");
        let a = allocate_registers(&adfg, &s, RegFileParams::default()).unwrap();
        let b = allocate_registers(&adfg, &s, RegFileParams::default()).unwrap();
        assert_eq!(a, b);
    }
}
