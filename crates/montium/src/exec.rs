//! Cycle-accurate schedule replay.

use crate::config_store::ConfigStore;
use crate::error::MontiumError;
use crate::tile::TileParams;
use mps_dfg::{AnalyzedDfg, NodeId};
use mps_patterns::PatternSet;
use mps_scheduler::Schedule;
use serde::{Deserialize, Serialize};

/// Binding of one node to one ALU in one cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AluSlot {
    /// Cycle index (0-based).
    pub cycle: usize,
    /// ALU index within the tile.
    pub alu: usize,
    /// The node executed.
    pub node: NodeId,
}

/// Replay statistics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExecReport {
    /// Total cycles executed.
    pub cycles: usize,
    /// Busy cycles of each ALU.
    pub alu_busy: Vec<u64>,
    /// Number of cycles whose configuration differs from the previous
    /// cycle's (the sequencer reconfigures between them). The first cycle
    /// counts as one load.
    pub config_loads: usize,
    /// Every node→ALU binding, in execution order.
    pub bindings: Vec<AluSlot>,
    /// Operations executed per color index.
    pub ops_per_color: Vec<u64>,
}

impl ExecReport {
    /// Fraction of ALU-cycles doing useful work.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 || self.alu_busy.is_empty() {
            return 0.0;
        }
        let busy: u64 = self.alu_busy.iter().sum();
        busy as f64 / (self.cycles as u64 * self.alu_busy.len() as u64) as f64
    }
}

/// Execute `schedule` for `adfg` on a tile.
///
/// The store is allocated from `patterns` (enforcing the ≤32 limit), then
/// every cycle is replayed:
///
/// 1. the cycle's pattern must be in the store,
/// 2. each issued node binds to a free ALU slot of its color (leftmost
///    free slot of that color in the pattern's canonical order),
/// 3. every operand must have been produced in a strictly earlier cycle,
/// 4. at the end, every node must have executed.
pub fn execute(
    adfg: &AnalyzedDfg,
    schedule: &Schedule,
    patterns: &PatternSet,
    params: TileParams,
) -> Result<ExecReport, MontiumError> {
    let store = ConfigStore::allocate(params, patterns)?;
    let n = adfg.len();
    let mut produced_at: Vec<Option<usize>> = vec![None; n];
    let mut alu_busy = vec![0u64; params.alus];
    let mut bindings = Vec::with_capacity(n);
    let num_colors = adfg
        .dfg()
        .node_ids()
        .map(|v| adfg.dfg().color(v).index() + 1)
        .max()
        .unwrap_or(0);
    let mut ops_per_color = vec![0u64; num_colors];
    let mut config_loads = 0usize;
    let mut last_slot: Option<usize> = None;

    for (t, cyc) in schedule.cycles().iter().enumerate() {
        let slot = store
            .slot_of(&cyc.pattern)
            .ok_or(MontiumError::UnknownConfig { cycle: t })?;
        if last_slot != Some(slot) {
            config_loads += 1;
            last_slot = Some(slot);
        }

        // Bind nodes to concrete ALUs: the pattern's canonical color list
        // maps color slots to ALU indices; each node takes the leftmost
        // free slot of its color.
        let pattern_colors = cyc.pattern.colors();
        let mut slot_taken = vec![false; pattern_colors.len()];
        for &node in &cyc.nodes {
            let color = adfg.dfg().color(node);
            let alu = pattern_colors
                .iter()
                .enumerate()
                .position(|(i, &c)| c == color && !slot_taken[i])
                .ok_or(MontiumError::SlotOverflow { cycle: t })?;
            slot_taken[alu] = true;

            // Operand readiness: every in-graph predecessor must already
            // have a value (produced in an earlier cycle; `produced_at` is
            // only updated after the full cycle is bound, so same-cycle
            // production is caught too).
            for &p in adfg.dfg().preds(node) {
                match produced_at[p.index()] {
                    Some(tp) if tp < t => {}
                    _ => return Err(MontiumError::OperandNotReady { node, cycle: t }),
                }
            }

            alu_busy[alu] += 1;
            ops_per_color[color.index()] += 1;
            bindings.push(AluSlot {
                cycle: t,
                alu,
                node,
            });
        }
        for &node in &cyc.nodes {
            produced_at[node.index()] = Some(t);
        }
    }

    if let Some(missing) = (0..n).find(|&i| produced_at[i].is_none()) {
        return Err(MontiumError::IncompleteSchedule {
            missing: NodeId(missing as u32),
        });
    }

    Ok(ExecReport {
        cycles: schedule.len(),
        alu_busy,
        config_loads,
        bindings,
        ops_per_color,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_scheduler::{schedule_multi_pattern, MultiPatternConfig};
    use mps_workloads::fig2;

    fn fig2_setup() -> (AnalyzedDfg, PatternSet, Schedule) {
        let adfg = AnalyzedDfg::new(fig2());
        let patterns = PatternSet::parse("aabcc aaacc").unwrap();
        let sched = schedule_multi_pattern(&adfg, &patterns, MultiPatternConfig::default())
            .unwrap()
            .schedule;
        (adfg, patterns, sched)
    }

    #[test]
    fn replays_fig2_schedule() {
        let (adfg, patterns, sched) = fig2_setup();
        let report = execute(&adfg, &sched, &patterns, TileParams::default()).unwrap();
        assert_eq!(report.cycles, 7, "the Table 2 schedule is 7 cycles");
        assert_eq!(report.bindings.len(), 24, "all 24 nodes execute");
        assert_eq!(report.ops_per_color, vec![14, 4, 6]);
        // 24 ops on 5 ALUs × 7 cycles.
        assert!((report.utilization() - 24.0 / 35.0).abs() < 1e-12);
        // Table 2's pattern sequence 1,1,1,1,2,2,1 → loads at cycles
        // 0, 4, 6 ⇒ 3.
        assert_eq!(report.config_loads, 3);
    }

    #[test]
    fn rejects_unknown_pattern() {
        let (adfg, _patterns, sched) = fig2_setup();
        let other = PatternSet::parse("abc").unwrap();
        let err = execute(&adfg, &sched, &other, TileParams::default()).unwrap_err();
        assert!(matches!(err, MontiumError::UnknownConfig { cycle: 0 }));
    }

    #[test]
    fn rejects_operand_not_ready() {
        use mps_scheduler::ScheduledCycle;
        let adfg = AnalyzedDfg::new(fig2());
        let patterns = PatternSet::parse("aabcc").unwrap();
        // b3 and its consumer a8 in the same cycle.
        let b3 = adfg.dfg().find("b3").unwrap();
        let a8 = adfg.dfg().find("a8").unwrap();
        let bad = Schedule::from_cycles(vec![ScheduledCycle {
            pattern: mps_patterns::Pattern::parse("aabcc").unwrap(),
            nodes: vec![b3, a8],
        }]);
        let err = execute(&adfg, &bad, &patterns, TileParams::default()).unwrap_err();
        assert!(matches!(err, MontiumError::OperandNotReady { .. }));
    }

    #[test]
    fn rejects_incomplete_schedule() {
        let adfg = AnalyzedDfg::new(fig2());
        let patterns = PatternSet::parse("aabcc").unwrap();
        let empty = Schedule::default();
        let err = execute(&adfg, &empty, &patterns, TileParams::default()).unwrap_err();
        assert!(matches!(err, MontiumError::IncompleteSchedule { .. }));
    }

    #[test]
    fn rejects_slot_overflow() {
        use mps_scheduler::ScheduledCycle;
        let adfg = AnalyzedDfg::new(fig2());
        // Pattern "abc" but two 'b' nodes issued.
        let b3 = adfg.dfg().find("b3").unwrap();
        let b6 = adfg.dfg().find("b6").unwrap();
        let patterns = PatternSet::parse("abc").unwrap();
        let bad = Schedule::from_cycles(vec![ScheduledCycle {
            pattern: mps_patterns::Pattern::parse("abc").unwrap(),
            nodes: vec![b3, b6],
        }]);
        let err = execute(&adfg, &bad, &patterns, TileParams::default()).unwrap_err();
        assert!(matches!(err, MontiumError::SlotOverflow { cycle: 0 }));
    }

    #[test]
    fn binding_is_injective_per_cycle() {
        let (adfg, patterns, sched) = fig2_setup();
        let report = execute(&adfg, &sched, &patterns, TileParams::default()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for b in &report.bindings {
            assert!(
                seen.insert((b.cycle, b.alu)),
                "two nodes on one ALU in cycle {}",
                b.cycle
            );
        }
    }
}
