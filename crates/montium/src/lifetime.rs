//! Value-lifetime / register-pressure analysis of a schedule.
//!
//! The Montium compiler's fourth phase (*allocation*, paper §1) binds the
//! values flowing between cycles to the tile's registers and memories.
//! Scheduling determines those lifetimes completely: a value produced in
//! cycle `t` stays live until the cycle of its last consumer. This module
//! computes, for any schedule, the per-cycle count of live values — the
//! register pressure the allocation phase will face — so schedules can be
//! compared on storage cost as well as cycle count.
//!
//! A value with no consumers (a DFG sink) is an application output and is
//! counted live from production through the end of the schedule (it must
//! survive to be written out).

use mps_dfg::AnalyzedDfg;
use mps_scheduler::Schedule;

/// Lifetime statistics of one schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LifetimeReport {
    /// `live[t]` = number of values live *during* cycle `t` (produced in
    /// an earlier cycle, still needed in `t` or later).
    pub live: Vec<usize>,
    /// Maximum over `live` — the minimum register/memory capacity that
    /// the allocation phase needs.
    pub peak: usize,
    /// Sum of all lifetimes in value-cycles (storage-time product).
    pub total_value_cycles: u64,
}

/// Compute value lifetimes for `schedule` on `adfg`.
///
/// Panics if the schedule does not place every node (validate first).
pub fn lifetimes(adfg: &AnalyzedDfg, schedule: &Schedule) -> LifetimeReport {
    let n = adfg.len();
    let cycles = schedule.len();
    let at = schedule.node_cycles(n);

    let mut live = vec![0usize; cycles];
    let mut total = 0u64;
    for v in adfg.dfg().node_ids() {
        let born = at[v.index()].expect("schedule must place every node");
        let succs = adfg.dfg().succs(v);
        // Last use: the latest consumer's cycle, or the end of the
        // schedule for outputs.
        let dies = if succs.is_empty() {
            cycles
        } else {
            succs
                .iter()
                .map(|s| at[s.index()].expect("schedule must place every node"))
                .max()
                .unwrap()
        };
        // Live during cycles (born, dies]: available from born+1, still
        // needed through its consumption cycle `dies` (outputs: through
        // the last cycle).
        for slot in live.iter_mut().take((dies + 1).min(cycles)).skip(born + 1) {
            *slot += 1;
        }
        total += (dies - born) as u64;
    }

    LifetimeReport {
        peak: live.iter().copied().max().unwrap_or(0),
        live,
        total_value_cycles: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dfg::{Color, DfgBuilder};
    use mps_patterns::PatternSet;
    use mps_scheduler::{schedule_multi_pattern, MultiPatternConfig};

    fn c(ch: char) -> Color {
        Color::from_char(ch).unwrap()
    }

    #[test]
    fn chain_has_pressure_one() {
        let mut b = DfgBuilder::new();
        let ids: Vec<_> = (0..4)
            .map(|i| b.add_node(format!("n{i}"), c('a')))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        let adfg = AnalyzedDfg::new(b.build().unwrap());
        let ps = PatternSet::parse("a").unwrap();
        let r = schedule_multi_pattern(&adfg, &ps, MultiPatternConfig::default()).unwrap();
        let lt = lifetimes(&adfg, &r.schedule);
        // Each intermediate lives exactly one cycle; the output lives to
        // the end. During every cycle after the first exactly one value
        // is live.
        assert_eq!(lt.live, vec![0, 1, 1, 1]);
        assert_eq!(lt.peak, 1);
        // Three intermediates live one cycle each; the output lives one
        // (virtual) cycle to be written out.
        assert_eq!(lt.total_value_cycles, 4);
    }

    #[test]
    fn wide_producer_creates_pressure() {
        // 4 independent producers, one consumer of all of them.
        let mut b = DfgBuilder::new();
        let prods: Vec<_> = (0..4)
            .map(|i| b.add_node(format!("p{i}"), c('a')))
            .collect();
        let sink = b.add_node("sink", c('b'));
        for &p in &prods {
            b.add_edge(p, sink).unwrap();
        }
        let adfg = AnalyzedDfg::new(b.build().unwrap());
        // 2 producers per cycle: p p | p p | sink.
        let ps = PatternSet::parse("aab").unwrap();
        let r = schedule_multi_pattern(&adfg, &ps, MultiPatternConfig::default()).unwrap();
        assert_eq!(r.schedule.len(), 3);
        let lt = lifetimes(&adfg, &r.schedule);
        // Cycle 2: first 2 products live. Cycle 3: all 4 live (consumed).
        assert_eq!(lt.live, vec![0, 2, 4]);
        assert_eq!(lt.peak, 4);
    }

    #[test]
    fn fig2_pressure_is_bounded() {
        let adfg = AnalyzedDfg::new(mps_workloads::fig2());
        let ps = PatternSet::parse("aabcc aaacc").unwrap();
        let r = schedule_multi_pattern(&adfg, &ps, MultiPatternConfig::default()).unwrap();
        let lt = lifetimes(&adfg, &r.schedule);
        assert_eq!(lt.live.len(), 7);
        // Six outputs accumulate, so pressure is at least 6 at the end.
        assert!(*lt.live.last().unwrap() >= 6);
        // And cannot exceed the total node count.
        assert!(lt.peak <= 24);
    }

    #[test]
    fn shorter_schedules_can_cost_more_registers() {
        // The classic trade-off exists in our model: ASAP (widest) has
        // pressure >= the serialized capacity-1 schedule... in terms of
        // peak live values.
        let adfg = AnalyzedDfg::new(mps_workloads::fig2());
        let asap = mps::classic_asap(&adfg);
        let narrow = mps::classic_narrow(&adfg);
        let wide_peak = lifetimes(&adfg, &asap).peak;
        let narrow_peak = lifetimes(&adfg, &narrow).peak;
        // Not universally ordered, but for the 3DFT the wide schedule
        // hoards more simultaneously-live intermediates.
        assert!(wide_peak >= narrow_peak.min(wide_peak));
        assert!(wide_peak >= 1 && narrow_peak >= 1);
    }

    /// Small shim: avoid a dev-dependency cycle on the umbrella crate.
    mod mps {
        use mps_dfg::AnalyzedDfg;
        use mps_scheduler::Schedule;

        pub fn classic_asap(adfg: &AnalyzedDfg) -> Schedule {
            mps_scheduler::classic::asap_schedule(adfg)
        }
        pub fn classic_narrow(adfg: &AnalyzedDfg) -> Schedule {
            mps_scheduler::classic::list_schedule_uniform(adfg, 1)
        }
    }
}
