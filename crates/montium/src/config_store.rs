//! The configuration store: the ≤32 pattern configurations of a tile.

use crate::error::MontiumError;
use crate::tile::TileParams;
use mps_patterns::{Pattern, PatternSet};

/// Allocated pattern configurations of one tile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigStore {
    params: TileParams,
    configs: Vec<Pattern>,
}

impl ConfigStore {
    /// Allocate configurations for a pattern set.
    ///
    /// Fails if the set exceeds the store capacity or any pattern is wider
    /// than the ALU array.
    pub fn allocate(
        params: TileParams,
        patterns: &PatternSet,
    ) -> Result<ConfigStore, MontiumError> {
        if patterns.len() > params.max_configs {
            return Err(MontiumError::TooManyConfigs {
                requested: patterns.len(),
                capacity: params.max_configs,
            });
        }
        for p in patterns.iter() {
            if p.size() > params.alus {
                return Err(MontiumError::PatternTooWide {
                    width: p.size(),
                    alus: params.alus,
                });
            }
        }
        Ok(ConfigStore {
            params,
            configs: patterns.iter().copied().collect(),
        })
    }

    /// Config slot of a pattern, if stored.
    pub fn slot_of(&self, p: &Pattern) -> Option<usize> {
        self.configs.iter().position(|q| q == p)
    }

    /// Stored configurations in slot order.
    pub fn configs(&self) -> &[Pattern] {
        &self.configs
    }

    /// The tile parameters.
    pub fn params(&self) -> TileParams {
        self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_within_capacity() {
        let ps = PatternSet::parse("aabcc aaacc ab").unwrap();
        let store = ConfigStore::allocate(TileParams::default(), &ps).unwrap();
        assert_eq!(store.configs().len(), 3);
        assert_eq!(store.slot_of(&Pattern::parse("aaacc").unwrap()), Some(1));
        assert_eq!(store.slot_of(&Pattern::parse("zz").unwrap()), None);
    }

    #[test]
    fn rejects_too_many_configs() {
        let mut ps = PatternSet::new();
        // 33 distinct patterns: "a", "aa", ..., via mixed sizes.
        for i in 1..=33usize {
            let s: String = (0..=(i / 26))
                .map(|_| (b'a' + (i % 26) as u8) as char)
                .collect();
            ps.insert(Pattern::parse(&s).unwrap());
        }
        assert!(ps.len() == 33);
        let err = ConfigStore::allocate(TileParams::default(), &ps).unwrap_err();
        assert!(matches!(
            err,
            MontiumError::TooManyConfigs {
                requested: 33,
                capacity: 32
            }
        ));
    }

    #[test]
    fn rejects_wide_patterns() {
        let ps = PatternSet::parse("aaaaaa").unwrap(); // 6 slots on 5 ALUs
        let err = ConfigStore::allocate(TileParams::default(), &ps).unwrap_err();
        assert!(matches!(
            err,
            MontiumError::PatternTooWide { width: 6, alus: 5 }
        ));
    }
}
