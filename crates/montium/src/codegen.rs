//! Code generation: lower a schedule to a Montium instruction stream.
//!
//! The last stop of the compiler flow the paper sketches (§1:
//! Transformation → Clustering → **Scheduling** → **Allocation**). Given
//! a graph, a schedule, the allowed patterns and the register allocation,
//! [`lower`] emits a [`Program`]: one [`Instruction`] per cycle carrying
//! the configuration-store index the sequencer must point at and, per
//! busy ALU, the operation with the *physical* operand and result
//! locations chosen by the register allocator. What the real toolchain
//! would encode as configuration bits is kept symbolic (op color, ALU
//! index, register/memory ids) — enough for the assembly listing, the
//! size accounting, and for tests to verify the whole pipeline
//! end-to-end without a bit-level ISA spec (which was never published).

use crate::config_store::ConfigStore;
use crate::error::MontiumError;
use crate::exec::execute;
use crate::regalloc::{allocate_registers, Location, RegFileParams};
use crate::tile::TileParams;
use mps_dfg::{AnalyzedDfg, NodeId};
use mps_patterns::PatternSet;
use mps_scheduler::Schedule;
use std::fmt;

/// One ALU operation within an instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AluOp {
    /// ALU index executing the op.
    pub alu: usize,
    /// The DFG node.
    pub node: NodeId,
    /// Physical locations of the operands (graph predecessors, in
    /// ascending node order). Primary inputs have no location.
    pub operands: Vec<Location>,
    /// Where the result value is stored, `None` if the value is never
    /// consumed across a cycle boundary.
    pub result: Option<Location>,
}

/// One cycle of the lowered program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instruction {
    /// Configuration-store slot the sequencer selects this cycle.
    pub config: usize,
    /// `true` when `config` differs from the previous cycle (a
    /// configuration load is issued).
    pub reconfigure: bool,
    /// Operations issued on the ALUs, ascending by ALU index.
    pub ops: Vec<AluOp>,
}

/// A lowered Montium program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// One instruction per schedule cycle.
    pub instructions: Vec<Instruction>,
    /// Number of configuration-store slots used.
    pub configs_used: usize,
    /// Registers used and spills taken by the allocation.
    pub registers_used: usize,
    /// Values parked in tile memory.
    pub spills: usize,
}

impl Program {
    /// Total ALU operations.
    pub fn op_count(&self) -> usize {
        self.instructions.iter().map(|i| i.ops.len()).sum()
    }

    /// Number of configuration loads over the run.
    pub fn config_loads(&self) -> usize {
        self.instructions.iter().filter(|i| i.reconfigure).count()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "; montium program: {} cycles, {} ops, {} configs, {} regs, {} spills",
            self.instructions.len(),
            self.op_count(),
            self.configs_used,
            self.registers_used,
            self.spills
        )?;
        for (t, ins) in self.instructions.iter().enumerate() {
            writeln!(
                f,
                "cycle {t:>3}: cfg#{}{}",
                ins.config,
                if ins.reconfigure { " (load)" } else { "" }
            )?;
            for op in &ins.ops {
                let operands: Vec<String> = op.operands.iter().map(loc_str).collect();
                let result = op.result.map(|l| loc_str(&l)).unwrap_or_else(|| "-".into());
                writeln!(
                    f,
                    "  alu{}: {} ({}) -> {}",
                    op.alu,
                    op.node,
                    operands.join(", "),
                    result
                )?;
            }
        }
        Ok(())
    }
}

fn loc_str(l: &Location) -> String {
    match l {
        Location::Reg(r) => format!("r{r}"),
        Location::Mem(m) => format!("m{m}"),
    }
}

/// Lower `schedule` to a [`Program`]: replay it for the ALU binding (all
/// replay errors propagate — overflow, unknown config, operand timing),
/// run register allocation for value locations, and stitch both into the
/// instruction stream.
pub fn lower(
    adfg: &AnalyzedDfg,
    schedule: &Schedule,
    patterns: &PatternSet,
    tile: TileParams,
    regs: RegFileParams,
) -> Result<Program, MontiumError> {
    let store = ConfigStore::allocate(tile, patterns)?;
    let report = execute(adfg, schedule, patterns, tile)?;
    let alloc = allocate_registers(adfg, schedule, regs)?;

    let mut instructions: Vec<Instruction> = Vec::with_capacity(schedule.len());
    let mut last: Option<usize> = None;
    for cyc in schedule.cycles() {
        let config = store
            .slot_of(&cyc.pattern)
            .expect("execute() verified every cycle's pattern");
        instructions.push(Instruction {
            config,
            reconfigure: last != Some(config),
            ops: Vec::new(),
        });
        last = Some(config);
    }
    for b in &report.bindings {
        let operands: Vec<Location> = adfg
            .dfg()
            .preds(b.node)
            .iter()
            .map(|p| alloc.assignments[p.index()].expect("a consumed value always has a location"))
            .collect();
        instructions[b.cycle].ops.push(AluOp {
            alu: b.alu,
            node: b.node,
            operands,
            result: alloc.assignments[b.node.index()],
        });
    }
    for ins in &mut instructions {
        ins.ops.sort_by_key(|op| op.alu);
    }

    Ok(Program {
        instructions,
        configs_used: store.configs().len(),
        registers_used: alloc.registers_used,
        spills: alloc.spills,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dfg::{Color, DfgBuilder};
    use mps_scheduler::{schedule_multi_pattern, MultiPatternConfig};

    fn c(ch: char) -> Color {
        Color::from_char(ch).unwrap()
    }

    fn lowered(adfg: &AnalyzedDfg, pats: &str) -> Program {
        let ps = PatternSet::parse(pats).unwrap();
        let schedule = schedule_multi_pattern(adfg, &ps, MultiPatternConfig::default())
            .unwrap()
            .schedule;
        lower(
            adfg,
            &schedule,
            &ps,
            TileParams::default(),
            RegFileParams::default(),
        )
        .unwrap()
    }

    fn chain3() -> AnalyzedDfg {
        let mut b = DfgBuilder::new();
        let x = b.add_node("x", c('a'));
        let y = b.add_node("y", c('b'));
        let z = b.add_node("z", c('c'));
        b.add_edge(x, y).unwrap();
        b.add_edge(y, z).unwrap();
        AnalyzedDfg::new(b.build().unwrap())
    }

    #[test]
    fn every_node_appears_exactly_once() {
        let adfg = AnalyzedDfg::new(mps_workloads::fig2());
        let prog = lowered(&adfg, "aabcc aaacc");
        assert_eq!(prog.op_count(), 24);
        let mut seen = [false; 24];
        for ins in &prog.instructions {
            for op in &ins.ops {
                assert!(!seen[op.node.index()], "{} lowered twice", op.node);
                seen[op.node.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn operands_reference_producers_locations() {
        let adfg = chain3();
        let prog = lowered(&adfg, "a b c");
        // y consumes x's value at x's allocated location; z consumes y's.
        let y_op = prog
            .instructions
            .iter()
            .flat_map(|i| &i.ops)
            .find(|o| o.node == NodeId(1))
            .unwrap();
        assert_eq!(y_op.operands.len(), 1);
        let x_op = prog
            .instructions
            .iter()
            .flat_map(|i| &i.ops)
            .find(|o| o.node == NodeId(0))
            .unwrap();
        assert_eq!(Some(y_op.operands[0]), x_op.result);
    }

    #[test]
    fn reconfigure_flags_match_config_changes() {
        let adfg = AnalyzedDfg::new(mps_workloads::fig2());
        let prog = lowered(&adfg, "aabcc aaacc");
        assert!(prog.instructions[0].reconfigure, "first cycle always loads");
        let mut loads = 0;
        let mut last = None;
        for ins in &prog.instructions {
            if last != Some(ins.config) {
                assert!(ins.reconfigure);
                loads += 1;
            } else {
                assert!(!ins.reconfigure);
            }
            last = Some(ins.config);
        }
        assert_eq!(prog.config_loads(), loads);
    }

    #[test]
    fn listing_mentions_every_node_and_location() {
        let adfg = chain3();
        let prog = lowered(&adfg, "a b c");
        let listing = prog.to_string();
        for name in ["n0", "n1", "n2"] {
            assert!(listing.contains(name), "{listing}");
        }
        assert!(listing.contains("-> r"), "results land in registers");
        assert!(listing.contains("(load)"));
    }

    #[test]
    fn ops_sorted_by_alu_within_cycle() {
        let adfg = AnalyzedDfg::new(mps_workloads::fig2());
        let prog = lowered(&adfg, "aabcc aaacc");
        for ins in &prog.instructions {
            for w in ins.ops.windows(2) {
                assert!(w[0].alu < w[1].alu);
            }
        }
    }

    #[test]
    fn replay_errors_propagate() {
        let adfg = chain3();
        // Pattern set missing color 'c': lowering must fail like replay.
        let ps = PatternSet::parse("a b").unwrap();
        let schedule = Schedule::from_cycles(vec![]);
        let r = lower(
            &adfg,
            &schedule,
            &ps,
            TileParams::default(),
            RegFileParams::default(),
        );
        assert!(matches!(r, Err(MontiumError::IncompleteSchedule { .. })));
    }
}
