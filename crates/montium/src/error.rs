//! Replay errors.

use mps_dfg::NodeId;
use std::fmt;

/// Errors detected while mapping or replaying a schedule on the tile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MontiumError {
    /// The application needs more distinct patterns than the configuration
    /// store holds.
    TooManyConfigs {
        /// Patterns requested.
        requested: usize,
        /// Store capacity.
        capacity: usize,
    },
    /// A pattern is wider than the ALU array.
    PatternTooWide {
        /// Slots in the offending pattern.
        width: usize,
        /// Available ALUs.
        alus: usize,
    },
    /// A cycle issues more nodes of a color than its pattern has slots.
    SlotOverflow {
        /// Offending cycle (0-based).
        cycle: usize,
    },
    /// A cycle uses a pattern the store does not hold.
    UnknownConfig {
        /// Offending cycle (0-based).
        cycle: usize,
    },
    /// A node is issued before (or in the same cycle as) one of its
    /// operands is produced.
    OperandNotReady {
        /// The consuming node.
        node: NodeId,
        /// The cycle it was issued in (0-based).
        cycle: usize,
    },
    /// The schedule does not cover every node of the graph.
    IncompleteSchedule {
        /// A node that never executes.
        missing: NodeId,
    },
    /// Register allocation ran out of registers *and* spill memory.
    OutOfStorage {
        /// Cycle at which storage was exhausted (0-based).
        cycle: usize,
        /// Values that needed to be live at that point.
        live: usize,
    },
}

impl fmt::Display for MontiumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MontiumError::TooManyConfigs {
                requested,
                capacity,
            } => write!(
                f,
                "{requested} patterns requested but the configuration store holds {capacity}"
            ),
            MontiumError::PatternTooWide { width, alus } => {
                write!(f, "pattern with {width} slots on a {alus}-ALU tile")
            }
            MontiumError::SlotOverflow { cycle } => {
                write!(f, "cycle {cycle} overflows its pattern's color slots")
            }
            MontiumError::UnknownConfig { cycle } => {
                write!(f, "cycle {cycle} uses a pattern missing from the store")
            }
            MontiumError::OperandNotReady { node, cycle } => {
                write!(f, "node {node} issued in cycle {cycle} before its operand")
            }
            MontiumError::IncompleteSchedule { missing } => {
                write!(f, "node {missing} never executes")
            }
            MontiumError::OutOfStorage { cycle, live } => {
                write!(
                    f,
                    "cycle {cycle}: {live} live values exceed registers + memory"
                )
            }
        }
    }
}

impl std::error::Error for MontiumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(MontiumError::TooManyConfigs {
            requested: 40,
            capacity: 32
        }
        .to_string()
        .contains("40"));
        assert!(MontiumError::OperandNotReady {
            node: NodeId(3),
            cycle: 1
        }
        .to_string()
        .contains("n3"));
    }
}
