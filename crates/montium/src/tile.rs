//! Tile hardware parameters.

use serde::{Deserialize, Serialize};

/// Architectural parameters of one Montium tile.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileParams {
    /// Number of reconfigurable ALUs (`C`). The real tile has 5.
    pub alus: usize,
    /// Size of the configuration store — the hard upper bound on distinct
    /// patterns per application. The real tile allows 32.
    pub max_configs: usize,
}

impl Default for TileParams {
    /// The published Montium tile: 5 ALUs, 32 configurations.
    fn default() -> Self {
        TileParams {
            alus: 5,
            max_configs: 32,
        }
    }
}

impl TileParams {
    /// A tile with a custom ALU count, keeping the 32-entry store.
    pub fn with_alus(alus: usize) -> TileParams {
        TileParams {
            alus,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_published_tile() {
        let t = TileParams::default();
        assert_eq!(t.alus, 5);
        assert_eq!(t.max_configs, 32);
    }

    #[test]
    fn with_alus() {
        let t = TileParams::with_alus(8);
        assert_eq!(t.alus, 8);
        assert_eq!(t.max_configs, 32);
    }
}
