//! A Montium tile model: resource-accurate replay of schedules.
//!
//! The paper targets the Montium, a coarse-grained reconfigurable tile with
//! five ALUs whose per-cycle function combination (the *pattern*) is drawn
//! from a small configuration store — "although the five ALUs can execute
//! thousands of different possible patterns, … it is only allowed to use up
//! to 32 of them" (§1). The silicon and its toolchain are proprietary, so
//! this crate simulates the relevant behaviour:
//!
//! * [`TileParams`] — ALU count and configuration-store size;
//! * [`ConfigStore`] — allocation of pattern configurations, rejecting
//!   pattern sets beyond the hardware limit;
//! * [`execute`] — cycle-accurate replay of a [`mps_scheduler::Schedule`]:
//!   every cycle the sequencer points at one configuration, nodes are bound
//!   to concrete ALU slots of matching color, and every operand must have
//!   been produced in an earlier cycle (values cross cycles through
//!   registers/memories, which the Montium compiler's later *allocation*
//!   phase assigns — out of scope for the scheduling paper and for us);
//! * [`ExecReport`] — utilization, per-ALU busy counts, configuration
//!   switches;
//! * [`EnergyModel`] — a simple per-op + per-reconfiguration energy
//!   estimate, enough to *rank* schedules (absolute Joules are not
//!   claimed).
//!
//! Replay failures are real errors, not warnings: a schedule that uses 33
//! patterns or issues a node before its operands exists only because some
//! upstream component is buggy — tests rely on this crate to catch that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codegen;
mod config_store;
mod energy;
mod error;
mod exec;
mod lifetime;
mod regalloc;
mod tile;

pub use codegen::{lower, AluOp, Instruction, Program};
pub use config_store::ConfigStore;
pub use energy::{EnergyEstimate, EnergyModel};
pub use error::MontiumError;
pub use exec::{execute, AluSlot, ExecReport};
pub use lifetime::{lifetimes, LifetimeReport};
pub use regalloc::{
    allocate_registers, verify as verify_allocation, Location, RegAllocReport, RegFileParams,
};
pub use tile::TileParams;
