//! Node identifiers and payloads.

use crate::color::Color;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense index of a node inside one [`crate::Dfg`].
///
/// `NodeId`s are assigned by [`crate::DfgBuilder::add_node`] in insertion
/// order and are only meaningful for the graph that created them. The
/// insertion order doubles as the deterministic tie-break order used by the
/// scheduler, which is how the paper's Table 2 trace is reproduced exactly.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

/// A DFG node: a named operation with a color (operation type).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Node {
    /// Human-readable name, e.g. `"a24"` in the paper's figures.
    pub name: String,
    /// Operation type executed by a reconfigurable ALU.
    pub color: Color,
}

impl Node {
    /// Create a node.
    pub fn new(name: impl Into<String>, color: Color) -> Node {
        Node {
            name: name.into(),
            color,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_ordering_matches_index() {
        assert!(NodeId(3) < NodeId(10));
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(NodeId(7).to_string(), "n7");
    }

    #[test]
    fn node_construction() {
        let n = Node::new("a24", Color::from_char('a').unwrap());
        assert_eq!(n.name, "a24");
        assert_eq!(n.color.as_char(), Some('a'));
    }
}
