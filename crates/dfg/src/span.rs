//! The span of a node set and the Theorem 1 lower bound (paper §5.1).

use crate::analysis::Levels;
use crate::node::NodeId;

/// `Span(A) = U(max ASAP(n) − min ALAP(n))` over `n ∈ A`, where
/// `U(x) = max(x, 0)` (paper §5.1).
///
/// The span captures how far apart in schedule levels the members of an
/// antichain sit: members that could never share a "natural" cycle have a
/// positive span, and by Theorem 1 forcing them into one cycle stretches
/// the whole schedule. An empty set has span 0.
pub fn span(levels: &Levels, set: &[NodeId]) -> u32 {
    let mut max_asap = 0u32;
    let mut min_alap = u32::MAX;
    for &n in set {
        max_asap = max_asap.max(levels.asap(n));
        min_alap = min_alap.min(levels.alap(n));
    }
    if set.is_empty() {
        return 0;
    }
    max_asap.saturating_sub(min_alap)
}

/// Theorem 1: if all nodes of an antichain `A` are scheduled in the same
/// clock cycle, the final schedule has at least
/// `ASAPmax + Span(A) + 1` cycles.
///
/// (For `Span(A) = 0` this degenerates to the critical-path bound
/// `ASAPmax + 1`.)
pub fn theorem1_lower_bound(levels: &Levels, set: &[NodeId]) -> u32 {
    levels.asap_max() + span(levels, set) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Color;
    use crate::graph::{Dfg, DfgBuilder};

    fn c(ch: char) -> Color {
        Color::from_char(ch).unwrap()
    }

    /// A graph shaped like the paper's span example: a long chain plus an
    /// early, flexible node.
    ///
    /// chain: p0 -> p1 -> p2 -> p3 -> p4 (critical path, ASAPmax = 4)
    /// free:  q (source and sink, mobility 4)
    /// late:  p0 -> r (ASAP 1, ALAP 4)
    fn chain_with_extras() -> (Dfg, Vec<NodeId>) {
        let mut b = DfgBuilder::new();
        let p: Vec<NodeId> = (0..5)
            .map(|i| b.add_node(format!("p{i}"), c('a')))
            .collect();
        for w in p.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        let q = b.add_node("q", c('b'));
        let r = b.add_node("r", c('b'));
        b.add_edge(p[0], r).unwrap();
        let mut ids = p;
        ids.push(q);
        ids.push(r);
        (b.build().unwrap(), ids)
    }

    #[test]
    fn span_of_singleton_is_zero() {
        let (g, ids) = chain_with_extras();
        let l = Levels::compute(&g);
        for &n in &ids {
            assert_eq!(span(&l, &[n]), 0, "ASAP ≤ ALAP so singleton span is 0");
        }
    }

    #[test]
    fn span_of_empty_set_is_zero() {
        let (g, _) = chain_with_extras();
        let l = Levels::compute(&g);
        assert_eq!(span(&l, &[]), 0);
    }

    #[test]
    fn paper_example_a24_b3() {
        // Reproduces the §5.1 worked example: ASAP(a24)=1, ALAP(a24)=4,
        // ASAP(b3)=0, ALAP(b3)=0 ⇒ Span = U(1−0) = 1. We model it with a
        // minimal graph giving the same levels: b3 at (0,0), a24 at (1,4).
        //
        //  b3 -> x1 -> x2 -> x3 -> x4   (pins b3 to ALAP 0, ASAPmax = 4)
        //  s  -> a24                    (pins a24 to ASAP 1, sink ⇒ ALAP 4)
        let mut b = DfgBuilder::new();
        let b3 = b.add_node("b3", c('b'));
        let xs: Vec<NodeId> = (0..4)
            .map(|i| b.add_node(format!("x{i}"), c('a')))
            .collect();
        b.add_edge(b3, xs[0]).unwrap();
        for w in xs.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        let s = b.add_node("s", c('a'));
        let a24 = b.add_node("a24", c('a'));
        b.add_edge(s, a24).unwrap();
        let g = b.build().unwrap();
        let l = Levels::compute(&g);
        assert_eq!((l.asap(b3), l.alap(b3)), (0, 0));
        assert_eq!((l.asap(a24), l.alap(a24)), (1, 4));
        assert_eq!(span(&l, &[a24, b3]), 1);
        assert_eq!(theorem1_lower_bound(&l, &[a24, b3]), 4 + 1 + 1);
    }

    #[test]
    fn span_is_monotone_under_insertion() {
        let (g, ids) = chain_with_extras();
        let l = Levels::compute(&g);
        // Adding elements can only increase (or keep) the span.
        let mut set = Vec::new();
        let mut prev = 0;
        for &n in &ids {
            set.push(n);
            let s = span(&l, &set);
            assert!(s >= prev, "span must be monotone, got {s} after {prev}");
            prev = s;
        }
    }

    #[test]
    fn late_and_early_nodes_have_positive_span() {
        let (g, _) = chain_with_extras();
        let l = Levels::compute(&g);
        let p4 = g.find("p4").unwrap(); // ASAP 4, ALAP 4
        let q = g.find("q").unwrap(); // ASAP 0, ALAP 4
        let p0 = g.find("p0").unwrap(); // ASAP 0, ALAP 0
        assert_eq!(span(&l, &[p4, q]), 0, "q is flexible; span stays 0");
        assert_eq!(span(&l, &[p4, p0]), 4, "start vs end of the chain");
        assert_eq!(theorem1_lower_bound(&l, &[p4, p0]), 4 + 4 + 1);
    }
}
