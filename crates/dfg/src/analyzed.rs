//! Bundle of a graph with its standard analyses.

use crate::analysis::Levels;
use crate::graph::Dfg;
use crate::node::NodeId;
use crate::reach::Reachability;

/// A [`Dfg`] together with its [`Levels`] and [`Reachability`] analyses.
///
/// Every stage of the pipeline (antichain enumeration, pattern selection,
/// scheduling) needs the same two analyses; computing them once here keeps
/// the stages decoupled without redundant O(V·E) work.
#[derive(Clone, Debug)]
pub struct AnalyzedDfg {
    dfg: Dfg,
    levels: Levels,
    reach: Reachability,
}

impl AnalyzedDfg {
    /// Analyze a graph (computes levels and the transitive closure).
    pub fn new(dfg: Dfg) -> AnalyzedDfg {
        let levels = Levels::compute(&dfg);
        let reach = Reachability::compute(&dfg);
        AnalyzedDfg { dfg, levels, reach }
    }

    /// The underlying graph.
    #[inline]
    pub fn dfg(&self) -> &Dfg {
        &self.dfg
    }

    /// Level attributes (ASAP/ALAP/Height).
    #[inline]
    pub fn levels(&self) -> &Levels {
        &self.levels
    }

    /// Transitive closure / parallelizability.
    #[inline]
    pub fn reach(&self) -> &Reachability {
        &self.reach
    }

    /// Span of a node set (see [`crate::span`]).
    pub fn span(&self, set: &[NodeId]) -> u32 {
        crate::span::span(&self.levels, set)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.dfg.len()
    }

    /// `true` if the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.dfg.is_empty()
    }
}

impl From<Dfg> for AnalyzedDfg {
    fn from(dfg: Dfg) -> Self {
        AnalyzedDfg::new(dfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Color;
    use crate::graph::DfgBuilder;

    #[test]
    fn bundle_is_consistent() {
        let mut b = DfgBuilder::new();
        let x = b.add_node("x", Color(0));
        let y = b.add_node("y", Color(1));
        b.add_edge(x, y).unwrap();
        let a = AnalyzedDfg::new(b.build().unwrap());
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert_eq!(a.levels().asap(y), 1);
        assert!(a.reach().reaches(x, y));
        // max ASAP = 1 (y), min ALAP = 0 (x) ⇒ span 1. (Not an antichain,
        // but span is defined for any node set.)
        assert_eq!(a.span(&[x, y]), 1);
        assert_eq!(a.span(&[x]), 0);
        assert_eq!(a.dfg().name(x), "x");
    }
}
