//! Graph transformations: transpose, induced subgraphs, disjoint union,
//! and critical-path extraction.
//!
//! All transformations produce fresh immutable graphs via [`DfgBuilder`] —
//! the substrate stays mutation-free.

use crate::analysis::Levels;
use crate::color::Color;
use crate::graph::{Dfg, DfgBuilder};
use crate::node::NodeId;

/// The transpose (edge-reversed) graph. Node ids and payloads are
/// preserved; every edge `u → v` becomes `v → u`.
pub fn transpose(dfg: &Dfg) -> Dfg {
    let mut b = DfgBuilder::with_capacity(dfg.len(), dfg.edge_count());
    for id in dfg.node_ids() {
        b.add_node(dfg.name(id).to_string(), dfg.color(id));
    }
    for (u, v) in dfg.edges() {
        b.add_edge(v, u).expect("transposed edges are valid");
    }
    b.build().expect("transposing a DAG yields a DAG")
}

/// The subgraph induced by `keep` (any iteration order, duplicates
/// ignored). Returns the new graph plus the mapping `old id → new id`.
pub fn induced_subgraph(dfg: &Dfg, keep: &[NodeId]) -> (Dfg, Vec<Option<NodeId>>) {
    let mut mapping: Vec<Option<NodeId>> = vec![None; dfg.len()];
    let mut b = DfgBuilder::new();
    for &old in keep {
        if mapping[old.index()].is_none() {
            let new = b.add_node(dfg.name(old).to_string(), dfg.color(old));
            mapping[old.index()] = Some(new);
        }
    }
    for (u, v) in dfg.edges() {
        if let (Some(nu), Some(nv)) = (mapping[u.index()], mapping[v.index()]) {
            b.add_edge(nu, nv).expect("mapped edges are valid");
        }
    }
    (
        b.build().expect("induced subgraph of a DAG is a DAG"),
        mapping,
    )
}

/// The disjoint union of two graphs (e.g. to schedule two independent
/// kernels on one tile). Names are prefixed to stay unique.
pub fn disjoint_union(a: &Dfg, b_graph: &Dfg) -> Dfg {
    let mut b = DfgBuilder::with_capacity(
        a.len() + b_graph.len(),
        a.edge_count() + b_graph.edge_count(),
    );
    for id in a.node_ids() {
        b.add_node(format!("l_{}", a.name(id)), a.color(id));
    }
    let offset = a.len() as u32;
    for id in b_graph.node_ids() {
        b.add_node(format!("r_{}", b_graph.name(id)), b_graph.color(id));
    }
    for (u, v) in a.edges() {
        b.add_edge(u, v).expect("left edges are valid");
    }
    for (u, v) in b_graph.edges() {
        b.add_edge(NodeId(u.0 + offset), NodeId(v.0 + offset))
            .expect("right edges are valid");
    }
    b.build().expect("a disjoint union of DAGs is a DAG")
}

/// One critical path (a longest chain), as node ids from a source to a
/// sink. Deterministic: the smallest-id qualifying node is taken at each
/// step. Empty for an empty graph.
pub fn critical_path(dfg: &Dfg) -> Vec<NodeId> {
    if dfg.is_empty() {
        return Vec::new();
    }
    let levels = Levels::compute(dfg);
    // Start: a source with maximal height.
    let start = dfg
        .node_ids()
        .filter(|&v| dfg.preds(v).is_empty())
        .max_by_key(|&v| (levels.height(v), std::cmp::Reverse(v.0)))
        .expect("non-empty DAG has a source");
    let mut path = vec![start];
    let mut cur = start;
    while let Some(&next) = dfg
        .succs(cur)
        .iter()
        .find(|&&s| levels.height(s) + 1 == levels.height(cur))
    {
        path.push(next);
        cur = next;
    }
    path
}

/// Relabel all nodes with a new color map (e.g. to study how color
/// distribution affects pattern selection on the same dependence shape).
pub fn recolor(dfg: &Dfg, color_of: impl Fn(NodeId, Color) -> Color) -> Dfg {
    let mut b = DfgBuilder::with_capacity(dfg.len(), dfg.edge_count());
    for id in dfg.node_ids() {
        b.add_node(dfg.name(id).to_string(), color_of(id, dfg.color(id)));
    }
    for (u, v) in dfg.edges() {
        b.add_edge(u, v).expect("same edges");
    }
    b.build().expect("recoloring preserves the DAG")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(ch: char) -> Color {
        Color::from_char(ch).unwrap()
    }

    fn diamond() -> Dfg {
        let mut b = DfgBuilder::new();
        let s = b.add_node("s", c('a'));
        let l = b.add_node("l", c('b'));
        let r = b.add_node("r", c('b'));
        let t = b.add_node("t", c('a'));
        b.add_edge(s, l).unwrap();
        b.add_edge(s, r).unwrap();
        b.add_edge(l, t).unwrap();
        b.add_edge(r, t).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = transpose(&g);
        assert_eq!(t.len(), 4);
        assert_eq!(t.edge_count(), 4);
        assert_eq!(t.sources().len(), 1);
        assert_eq!(t.name(t.sources()[0]), "t");
        // Double transpose is the original.
        assert_eq!(transpose(&t), g);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = diamond();
        let s = g.find("s").unwrap();
        let l = g.find("l").unwrap();
        let (sub, map) = induced_subgraph(&g, &[s, l]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.edge_count(), 1);
        assert!(map[s.index()].is_some());
        assert!(map[g.find("t").unwrap().index()].is_none());
    }

    #[test]
    fn induced_subgraph_dedups() {
        let g = diamond();
        let s = g.find("s").unwrap();
        let (sub, _) = induced_subgraph(&g, &[s, s, s]);
        assert_eq!(sub.len(), 1);
    }

    #[test]
    fn union_is_independent() {
        let g = diamond();
        let u = disjoint_union(&g, &g);
        assert_eq!(u.len(), 8);
        assert_eq!(u.edge_count(), 8);
        let levels = Levels::compute(&u);
        assert_eq!(levels.critical_path_len(), 3, "no cross edges");
        assert!(u.find("l_s").is_some());
        assert!(u.find("r_s").is_some());
    }

    #[test]
    fn critical_path_is_a_longest_chain() {
        let g = diamond();
        let path = critical_path(&g);
        assert_eq!(path.len(), 3);
        assert_eq!(g.name(path[0]), "s");
        assert_eq!(g.name(path[2]), "t");
        for w in path.windows(2) {
            assert!(g.succs(w[0]).contains(&w[1]));
        }
        assert!(critical_path(&DfgBuilder::new().build().unwrap()).is_empty());
    }

    #[test]
    fn recolor_changes_only_colors() {
        let g = diamond();
        let mono = recolor(&g, |_, _| c('z'));
        assert_eq!(mono.color_set().len(), 1);
        assert_eq!(mono.edge_count(), g.edge_count());
        assert_eq!(mono.name(NodeId(0)), g.name(NodeId(0)));
    }
}
