//! A plain-text interchange format for DFGs.
//!
//! The workloads crate covers the paper's graphs, but a library user (or the
//! `mps` CLI) needs a way to feed their *own* kernel into the pipeline
//! without writing Rust. This module defines a line-oriented text format and
//! its parser/writer:
//!
//! ```text
//! # 3-node example — comments run to end of line
//! node x a        # "node <name> <color>"; color is a letter or #<int>
//! node y b
//! node mul0 #30   # colors beyond 'z' use the numeric form
//! edge x y        # "edge <producer> <consumer>", by node name
//! edge x mul0
//! ```
//!
//! * Node names are any whitespace-free string not starting with `#`.
//! * Node order in the file fixes [`crate::NodeId`] order (and therefore the
//!   scheduler's deterministic tie-break order), so the format round-trips
//!   exactly: `parse_text(&to_text(&g))` reproduces `g` including ids.
//! * All structural validation of [`crate::DfgBuilder::build`] applies:
//!   duplicate edges, self-loops and cycles are rejected with the offending
//!   line number where one exists.

use crate::color::Color;
use crate::error::DfgError;
use crate::graph::{Dfg, DfgBuilder};
use crate::node::NodeId;
use std::collections::HashMap;
use std::fmt;

/// Errors produced by [`parse_text`], carrying the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// A line whose first token is not `node` or `edge`.
    UnknownDirective {
        /// 1-based line number.
        line: usize,
        /// The offending first token.
        token: String,
    },
    /// A `node` or `edge` line with the wrong number of fields.
    WrongArity {
        /// 1-based line number.
        line: usize,
        /// What the line declared (`"node"` or `"edge"`).
        directive: &'static str,
        /// Number of operands found (excluding the directive).
        found: usize,
    },
    /// A color token that is neither a lowercase letter nor `#<0..=255>`.
    BadColor {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// The same node name declared twice.
    DuplicateNode {
        /// 1-based line number of the second declaration.
        line: usize,
        /// The repeated name.
        name: String,
    },
    /// An `edge` line referencing an undeclared node name.
    UnknownName {
        /// 1-based line number.
        line: usize,
        /// The unresolved name.
        name: String,
    },
    /// Graph-level validation failed (cycle, duplicate edge, self-loop).
    Graph(DfgError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnknownDirective { line, token } => {
                write!(
                    f,
                    "line {line}: unknown directive {token:?} (expected node/edge)"
                )
            }
            ParseError::WrongArity {
                line,
                directive,
                found,
            } => write!(
                f,
                "line {line}: {directive} takes 2 operands, found {found}"
            ),
            ParseError::BadColor { line, token } => {
                write!(
                    f,
                    "line {line}: bad color {token:?} (use a..z or #<0..=255>)"
                )
            }
            ParseError::DuplicateNode { line, name } => {
                write!(f, "line {line}: node {name:?} declared twice")
            }
            ParseError::UnknownName { line, name } => {
                write!(f, "line {line}: edge references unknown node {name:?}")
            }
            ParseError::Graph(e) => write!(f, "graph validation: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<DfgError> for ParseError {
    fn from(e: DfgError) -> ParseError {
        ParseError::Graph(e)
    }
}

fn parse_color(tok: &str, line: usize) -> Result<Color, ParseError> {
    if let Some(rest) = tok.strip_prefix('#') {
        return match rest.parse::<u8>() {
            Ok(v) => Ok(Color(v)),
            Err(_) => Err(ParseError::BadColor {
                line,
                token: tok.to_string(),
            }),
        };
    }
    let mut chars = tok.chars();
    match (chars.next(), chars.next()) {
        (Some(c), None) => Color::from_char(c).ok_or(ParseError::BadColor {
            line,
            token: tok.to_string(),
        }),
        _ => Err(ParseError::BadColor {
            line,
            token: tok.to_string(),
        }),
    }
}

/// Render a color in the format's notation: a letter when it has one,
/// otherwise `#<index>`.
fn color_token(c: Color) -> String {
    match c.as_char() {
        Some(ch) => ch.to_string(),
        None => format!("#{}", c.index()),
    }
}

/// Parse the text format into a validated [`Dfg`].
///
/// ```
/// let g = mps_dfg::parse_text("node x a\nnode y b\nedge x y\n").unwrap();
/// assert_eq!(g.len(), 2);
/// assert_eq!(g.edge_count(), 1);
/// ```
pub fn parse_text(src: &str) -> Result<Dfg, ParseError> {
    let mut builder = DfgBuilder::new();
    let mut names: HashMap<String, NodeId> = HashMap::new();

    for (i, raw) in src.lines().enumerate() {
        let line = i + 1;
        // Strip trailing comment, then surrounding whitespace.
        let body = raw.split('#').next().unwrap_or("").trim();
        // A line like "#42" would be wrongly eaten by the comment strip if
        // it stood alone; but a bare color token is not a valid line anyway,
        // and node/edge lines keep their color tokens only when the `#` is
        // part of a larger token — handle that by re-splitting below.
        if body.is_empty() {
            // Could still be a comment-only or blank line; but also covers
            // the case where the whole line was a comment.
            continue;
        }
        // Re-tokenize from the raw line so `#N` color tokens survive: a `#`
        // introduces a comment only when it starts a token.
        let mut tokens: Vec<&str> = Vec::new();
        for tok in raw.split_whitespace() {
            if tok.starts_with('#')
                && !tokens.is_empty()
                && tokens[0] == "node"
                && tokens.len() == 2
            {
                // This is the color operand of a node line: keep it.
                tokens.push(tok);
            } else if tok.starts_with('#') {
                break; // comment to end of line
            } else {
                tokens.push(tok);
            }
        }
        if tokens.is_empty() {
            continue;
        }
        match tokens[0] {
            "node" => {
                if tokens.len() != 3 {
                    return Err(ParseError::WrongArity {
                        line,
                        directive: "node",
                        found: tokens.len() - 1,
                    });
                }
                let name = tokens[1];
                let color = parse_color(tokens[2], line)?;
                if names.contains_key(name) {
                    return Err(ParseError::DuplicateNode {
                        line,
                        name: name.to_string(),
                    });
                }
                let id = builder.add_node(name, color);
                names.insert(name.to_string(), id);
            }
            "edge" => {
                if tokens.len() != 3 {
                    return Err(ParseError::WrongArity {
                        line,
                        directive: "edge",
                        found: tokens.len() - 1,
                    });
                }
                let from = *names
                    .get(tokens[1])
                    .ok_or_else(|| ParseError::UnknownName {
                        line,
                        name: tokens[1].to_string(),
                    })?;
                let to = *names
                    .get(tokens[2])
                    .ok_or_else(|| ParseError::UnknownName {
                        line,
                        name: tokens[2].to_string(),
                    })?;
                builder.add_edge(from, to)?;
            }
            other => {
                return Err(ParseError::UnknownDirective {
                    line,
                    token: other.to_string(),
                })
            }
        }
    }
    Ok(builder.build()?)
}

/// Write a graph in the text format accepted by [`parse_text`].
///
/// Nodes are listed in id order, then edges in `(from, to)` order, so the
/// output is canonical: equal graphs produce equal text.
pub fn to_text(g: &Dfg) -> String {
    let mut out = String::with_capacity(16 * (g.len() + g.edge_count()));
    for id in g.node_ids() {
        out.push_str("node ");
        out.push_str(g.name(id));
        out.push(' ');
        out.push_str(&color_token(g.color(id)));
        out.push('\n');
    }
    for (u, v) in g.edges() {
        out.push_str("edge ");
        out.push_str(g.name(u));
        out.push(' ');
        out.push_str(g.name(v));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(ch: char) -> Color {
        Color::from_char(ch).unwrap()
    }

    #[test]
    fn parses_minimal_graph() {
        let g = parse_text("node x a\nnode y b\nedge x y\n").unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.edge_count(), 1);
        let x = g.find("x").unwrap();
        let y = g.find("y").unwrap();
        assert_eq!(g.color(x), c('a'));
        assert_eq!(g.color(y), c('b'));
        assert_eq!(g.succs(x), &[y]);
    }

    #[test]
    fn skips_blanks_and_comments() {
        let src = "\n# header comment\n  node x a  # trailing\n\nnode y a\nedge x y # dep\n";
        let g = parse_text(src).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn numeric_colors_round_trip() {
        let src = "node m #30\nnode n #255\nedge m n\n";
        let g = parse_text(src).unwrap();
        assert_eq!(g.color(g.find("m").unwrap()), Color(30));
        assert_eq!(g.color(g.find("n").unwrap()), Color(255));
        let text = to_text(&g);
        assert_eq!(parse_text(&text).unwrap(), g);
    }

    #[test]
    fn node_ids_follow_file_order() {
        let g = parse_text("node z a\nnode a a\nnode m a\n").unwrap();
        assert_eq!(g.find("z"), Some(NodeId(0)));
        assert_eq!(g.find("a"), Some(NodeId(1)));
        assert_eq!(g.find("m"), Some(NodeId(2)));
    }

    #[test]
    fn rejects_unknown_directive() {
        let err = parse_text("vertex x a\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::UnknownDirective {
                line: 1,
                token: "vertex".into()
            }
        );
    }

    #[test]
    fn rejects_bad_arity() {
        assert!(matches!(
            parse_text("node x\n").unwrap_err(),
            ParseError::WrongArity {
                line: 1,
                directive: "node",
                found: 1
            }
        ));
        assert!(matches!(
            parse_text("node x a extra\n").unwrap_err(),
            ParseError::WrongArity { .. }
        ));
        assert!(matches!(
            parse_text("node x a\nedge x\n").unwrap_err(),
            ParseError::WrongArity {
                line: 2,
                directive: "edge",
                found: 1
            }
        ));
    }

    #[test]
    fn rejects_bad_color() {
        for bad in ["A", "ab", "#", "#256", "#-1", "1"] {
            let src = format!("node x {bad}\n");
            assert!(
                matches!(parse_text(&src).unwrap_err(), ParseError::BadColor { .. }),
                "color {bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn rejects_duplicate_node_name() {
        let err = parse_text("node x a\nnode x b\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::DuplicateNode {
                line: 2,
                name: "x".into()
            }
        );
    }

    #[test]
    fn rejects_unknown_edge_name() {
        let err = parse_text("node x a\nedge x ghost\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::UnknownName {
                line: 2,
                name: "ghost".into()
            }
        );
    }

    #[test]
    fn graph_validation_errors_propagate() {
        // Cycle.
        let err = parse_text("node x a\nnode y a\nedge x y\nedge y x\n").unwrap_err();
        assert!(matches!(err, ParseError::Graph(DfgError::Cycle(_))));
        // Duplicate edge.
        let err = parse_text("node x a\nnode y a\nedge x y\nedge x y\n").unwrap_err();
        assert!(matches!(
            err,
            ParseError::Graph(DfgError::DuplicateEdge(_, _))
        ));
        // Self-loop surfaces immediately from add_edge.
        let err = parse_text("node x a\nedge x x\n").unwrap_err();
        assert!(matches!(err, ParseError::Graph(DfgError::SelfLoop(_))));
    }

    #[test]
    fn to_text_is_canonical_and_round_trips() {
        let mut b = DfgBuilder::new();
        let s = b.add_node("src", c('a'));
        let l = b.add_node("lft", c('b'));
        let r = b.add_node("rgt", c('b'));
        let t = b.add_node("snk", c('c'));
        b.add_edge(s, l).unwrap();
        b.add_edge(s, r).unwrap();
        b.add_edge(l, t).unwrap();
        b.add_edge(r, t).unwrap();
        let g = b.build().unwrap();

        let text = to_text(&g);
        let g2 = parse_text(&text).unwrap();
        assert_eq!(g, g2);
        // Canonical: writing again yields identical text.
        assert_eq!(to_text(&g2), text);
    }

    #[test]
    fn empty_input_is_an_empty_graph() {
        let g = parse_text("").unwrap();
        assert!(g.is_empty());
        assert_eq!(to_text(&g), "");
    }

    #[test]
    fn error_messages_name_the_line() {
        let msg = parse_text("node x a\nweird\n").unwrap_err().to_string();
        assert!(msg.contains("line 2"), "{msg}");
        let msg = parse_text("node x q!\n").unwrap_err().to_string();
        assert!(msg.contains("bad color"), "{msg}");
    }
}
