//! Operation colors.
//!
//! The paper calls the function type of a node its *color* (`l(n)`): on the
//! Montium, "a" might be addition, "b" subtraction, "c" multiplication. A
//! pattern is a bag of colors. We represent a color as a small integer
//! (`u8`), displayable as a lowercase letter for the paper's notation, and
//! provide [`ColorSet`] — a 256-bit set — for the *complete color set* `L`
//! and *selected color set* `Ls` manipulated by the color number condition
//! (Eq. 9).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An operation type ("color" in the paper's terminology).
///
/// Colors are dense small integers. For graphs written in the paper's
/// letter notation, color 0 is `'a'`, 1 is `'b'`, … Colors ≥ 26 display as
/// `#<index>`.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Color(pub u8);

impl Color {
    /// Color for a lowercase letter, `'a' → Color(0)`, …, `'z' → Color(25)`.
    pub fn from_char(c: char) -> Option<Color> {
        if c.is_ascii_lowercase() {
            Some(Color(c as u8 - b'a'))
        } else {
            None
        }
    }

    /// The letter for this color if it is within `'a'..='z'`.
    pub fn as_char(self) -> Option<char> {
        if self.0 < 26 {
            Some((b'a' + self.0) as char)
        } else {
            None
        }
    }

    /// Raw index of this color.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.as_char() {
            Some(c) => write!(f, "{c}"),
            None => write!(f, "#{}", self.0),
        }
    }
}

impl fmt::Debug for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Color({self})")
    }
}

/// A set of colors, stored as a 256-bit bitset (colors are `u8`-indexed).
///
/// Implements the paper's `L` (complete color set), `Ls` (selected color
/// set) and `Ln(p̄)` (new color set of a candidate pattern) with O(1) set
/// algebra.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ColorSet {
    bits: [u64; 4],
}

impl ColorSet {
    /// The empty color set.
    pub const EMPTY: ColorSet = ColorSet { bits: [0; 4] };

    /// Create an empty set.
    pub fn new() -> ColorSet {
        Self::EMPTY
    }

    /// Build a set from an iterator of colors.
    #[allow(clippy::should_implement_trait)] // also provided via FromIterator
    pub fn from_iter<I: IntoIterator<Item = Color>>(iter: I) -> ColorSet {
        let mut s = Self::EMPTY;
        for c in iter {
            s.insert(c);
        }
        s
    }

    /// Insert a color. Returns `true` if it was not already present.
    pub fn insert(&mut self, c: Color) -> bool {
        let (w, b) = (c.index() / 64, c.index() % 64);
        let had = self.bits[w] & (1 << b) != 0;
        self.bits[w] |= 1 << b;
        !had
    }

    /// Remove a color. Returns `true` if it was present.
    pub fn remove(&mut self, c: Color) -> bool {
        let (w, b) = (c.index() / 64, c.index() % 64);
        let had = self.bits[w] & (1 << b) != 0;
        self.bits[w] &= !(1 << b);
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, c: Color) -> bool {
        let (w, b) = (c.index() / 64, c.index() % 64);
        self.bits[w] & (1 << b) != 0
    }

    /// Number of colors in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no color is present.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Set union.
    pub fn union(&self, other: &ColorSet) -> ColorSet {
        let mut bits = self.bits;
        for (a, b) in bits.iter_mut().zip(other.bits.iter()) {
            *a |= b;
        }
        ColorSet { bits }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &ColorSet) -> ColorSet {
        let mut bits = self.bits;
        for (a, b) in bits.iter_mut().zip(other.bits.iter()) {
            *a &= !b;
        }
        ColorSet { bits }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &ColorSet) -> ColorSet {
        let mut bits = self.bits;
        for (a, b) in bits.iter_mut().zip(other.bits.iter()) {
            *a &= b;
        }
        ColorSet { bits }
    }

    /// `true` if every color of `self` is in `other`.
    pub fn is_subset(&self, other: &ColorSet) -> bool {
        self.bits
            .iter()
            .zip(other.bits.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterate over the colors in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = Color> + '_ {
        (0..=255u16).filter_map(move |i| {
            let c = Color(i as u8);
            self.contains(c).then_some(c)
        })
    }
}

impl fmt::Debug for ColorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Color> for ColorSet {
    fn from_iter<I: IntoIterator<Item = Color>>(iter: I) -> Self {
        ColorSet::from_iter(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(ch: char) -> Color {
        Color::from_char(ch).unwrap()
    }

    #[test]
    fn char_round_trip() {
        for ch in 'a'..='z' {
            assert_eq!(c(ch).as_char(), Some(ch));
        }
        assert_eq!(Color::from_char('A'), None);
        assert_eq!(Color::from_char('1'), None);
        assert_eq!(Color(200).as_char(), None);
    }

    #[test]
    fn display_letters_and_indices() {
        assert_eq!(c('a').to_string(), "a");
        assert_eq!(c('z').to_string(), "z");
        assert_eq!(Color(30).to_string(), "#30");
    }

    #[test]
    fn colorset_insert_remove_contains() {
        let mut s = ColorSet::new();
        assert!(s.is_empty());
        assert!(s.insert(c('a')));
        assert!(!s.insert(c('a')));
        assert!(s.contains(c('a')));
        assert!(!s.contains(c('b')));
        assert_eq!(s.len(), 1);
        assert!(s.remove(c('a')));
        assert!(!s.remove(c('a')));
        assert!(s.is_empty());
    }

    #[test]
    fn colorset_algebra() {
        let ab = ColorSet::from_iter([c('a'), c('b')]);
        let bc = ColorSet::from_iter([c('b'), c('c')]);
        assert_eq!(ab.union(&bc).len(), 3);
        assert_eq!(ab.intersection(&bc).len(), 1);
        assert!(ab.intersection(&bc).contains(c('b')));
        let diff = ab.difference(&bc);
        assert_eq!(diff.len(), 1);
        assert!(diff.contains(c('a')));
        assert!(ab.is_subset(&ab.union(&bc)));
        assert!(!ab.is_subset(&bc));
    }

    #[test]
    fn colorset_handles_high_indices() {
        let mut s = ColorSet::new();
        s.insert(Color(255));
        s.insert(Color(64));
        s.insert(Color(128));
        assert_eq!(s.len(), 3);
        let collected: Vec<Color> = s.iter().collect();
        assert_eq!(collected, vec![Color(64), Color(128), Color(255)]);
    }

    #[test]
    fn colorset_iter_ascending() {
        let s = ColorSet::from_iter([c('c'), c('a'), c('b')]);
        let v: Vec<char> = s.iter().map(|x| x.as_char().unwrap()).collect();
        assert_eq!(v, vec!['a', 'b', 'c']);
    }
}
