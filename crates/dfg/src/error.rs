//! Error type for graph construction and validation.

use crate::node::NodeId;
use std::fmt;

/// Errors produced while building or validating a [`crate::Dfg`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DfgError {
    /// An edge endpoint refers to a node that was never added.
    UnknownNode(NodeId),
    /// A node depends on itself.
    SelfLoop(NodeId),
    /// The dependency relation contains a cycle; the payload is one node on
    /// the cycle (a DFG must be a DAG for ASAP/ALAP to exist).
    Cycle(NodeId),
    /// The same edge was added more than once.
    DuplicateEdge(NodeId, NodeId),
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::UnknownNode(n) => write!(f, "edge endpoint {n} does not exist"),
            DfgError::SelfLoop(n) => write!(f, "node {n} depends on itself"),
            DfgError::Cycle(n) => write!(f, "dependency cycle through node {n}"),
            DfgError::DuplicateEdge(u, v) => write!(f, "duplicate edge {u} -> {v}"),
        }
    }
}

impl std::error::Error for DfgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            DfgError::UnknownNode(NodeId(5)).to_string(),
            "edge endpoint n5 does not exist"
        );
        assert_eq!(
            DfgError::SelfLoop(NodeId(1)).to_string(),
            "node n1 depends on itself"
        );
        assert_eq!(
            DfgError::Cycle(NodeId(0)).to_string(),
            "dependency cycle through node n0"
        );
        assert_eq!(
            DfgError::DuplicateEdge(NodeId(0), NodeId(1)).to_string(),
            "duplicate edge n0 -> n1"
        );
    }
}
