//! Transitive reachability (the paper's *follower* relation) as a bitset
//! matrix, plus the derived *parallelizable* relation.

use crate::graph::Dfg;
use crate::node::NodeId;

/// Bit-matrix transitive closure of a DFG.
///
/// `n` is a *follower* of `m` iff there is a directed path `m ⇝ n`; two
/// distinct nodes are *parallelizable* iff neither follows the other
/// (paper §3). An *antichain* is a set of pairwise parallelizable nodes.
///
/// Rows are `u64`-packed bitsets of length `ceil(V/64)`; construction is a
/// single reverse-topological sweep with word-wise OR, i.e. O(V·E/64).
/// For every node we also precompute its **parallel mask** — the bitset of
/// nodes it is parallelizable with — which lets antichain enumeration
/// maintain candidate sets with pure word-wise ANDs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reachability {
    words: usize,
    /// `desc[u]` = bitset of strict descendants (followers) of `u`.
    desc: Vec<u64>,
    /// `anc[u]` = bitset of strict ancestors of `u`.
    anc: Vec<u64>,
    /// `par[u]` = bitset of nodes parallelizable with `u` (excludes `u`).
    par: Vec<u64>,
}

impl Reachability {
    /// Compute the closure for a graph.
    pub fn compute(dfg: &Dfg) -> Reachability {
        let n = dfg.len();
        let words = n.div_ceil(64);
        let mut desc = vec![0u64; n * words];
        let mut anc = vec![0u64; n * words];

        // Descendants: reverse topological order, OR in each successor's
        // row plus the successor itself.
        for &u in dfg.topo_order().iter().rev() {
            for &v in dfg.succs(u) {
                let (ui, vi) = (u.index() * words, v.index() * words);
                // Split-borrow the flat matrix around the two rows.
                if ui < vi {
                    let (a, b) = desc.split_at_mut(vi);
                    or_into(&mut a[ui..ui + words], &b[..words]);
                } else {
                    let (a, b) = desc.split_at_mut(ui);
                    or_into(&mut b[..words], &a[vi..vi + words]);
                }
                set_bit(&mut desc[ui..ui + words], v.index());
            }
        }

        // Ancestors: forward topological order.
        for &v in dfg.topo_order() {
            for &u in dfg.preds(v) {
                let (vi, ui) = (v.index() * words, u.index() * words);
                if vi < ui {
                    let (a, b) = anc.split_at_mut(ui);
                    or_into(&mut a[vi..vi + words], &b[..words]);
                } else {
                    let (a, b) = anc.split_at_mut(vi);
                    or_into(&mut b[..words], &a[ui..ui + words]);
                }
                set_bit(&mut anc[vi..vi + words], u.index());
            }
        }

        // Parallel mask: everything that is neither ancestor, descendant,
        // nor the node itself.
        let mut par = vec![0u64; n * words];
        for u in 0..n {
            let row = u * words;
            for w in 0..words {
                par[row + w] = !(desc[row + w] | anc[row + w]);
            }
            clear_bit(&mut par[row..row + words], u);
            // Mask tail bits beyond n.
            if !n.is_multiple_of(64) && words > 0 {
                par[row + words - 1] &= (1u64 << (n % 64)) - 1;
            }
        }

        Reachability {
            words,
            desc,
            anc,
            par,
        }
    }

    /// `true` iff there is a directed path `from ⇝ to` (strict: a node does
    /// not reach itself).
    #[inline]
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        get_bit(self.desc_row(from), to.index())
    }

    /// The paper's follower relation: `n` is a follower of `m`.
    #[inline]
    pub fn is_follower(&self, n: NodeId, m: NodeId) -> bool {
        self.reaches(m, n)
    }

    /// `true` iff the two nodes are distinct and neither follows the other.
    #[inline]
    pub fn parallelizable(&self, a: NodeId, b: NodeId) -> bool {
        a != b && get_bit(self.par_row(a), b.index())
    }

    /// Bitset row of strict descendants of `u`.
    #[inline]
    pub fn desc_row(&self, u: NodeId) -> &[u64] {
        &self.desc[u.index() * self.words..(u.index() + 1) * self.words]
    }

    /// Bitset row of strict ancestors of `u`.
    #[inline]
    pub fn anc_row(&self, u: NodeId) -> &[u64] {
        &self.anc[u.index() * self.words..(u.index() + 1) * self.words]
    }

    /// Bitset row of nodes parallelizable with `u`.
    #[inline]
    pub fn par_row(&self, u: NodeId) -> &[u64] {
        &self.par[u.index() * self.words..(u.index() + 1) * self.words]
    }

    /// Words per bitset row.
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// `true` iff `set` is an antichain: pairwise parallelizable (singleton
    /// and empty sets count as antichains, matching the paper).
    pub fn is_antichain(&self, set: &[NodeId]) -> bool {
        for (i, &a) in set.iter().enumerate() {
            for &b in &set[i + 1..] {
                if !self.parallelizable(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

#[inline]
fn or_into(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d |= *s;
    }
}

#[inline]
fn set_bit(row: &mut [u64], i: usize) {
    row[i / 64] |= 1u64 << (i % 64);
}

#[inline]
fn clear_bit(row: &mut [u64], i: usize) {
    row[i / 64] &= !(1u64 << (i % 64));
}

#[inline]
fn get_bit(row: &[u64], i: usize) -> bool {
    row[i / 64] & (1u64 << (i % 64)) != 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Color;
    use crate::graph::DfgBuilder;

    fn c(ch: char) -> Color {
        Color::from_char(ch).unwrap()
    }

    /// The paper's Fig. 4: a1 -> a2 -> b4, b5 with pred a3... precisely:
    /// a1 -> a2, a2 -> b4, a3 -> b5.
    fn fig4() -> (Dfg, [NodeId; 5]) {
        let mut b = DfgBuilder::new();
        let a1 = b.add_node("a1", c('a'));
        let a2 = b.add_node("a2", c('a'));
        let a3 = b.add_node("a3", c('a'));
        let b4 = b.add_node("b4", c('b'));
        let b5 = b.add_node("b5", c('b'));
        b.add_edge(a1, a2).unwrap();
        b.add_edge(a2, b4).unwrap();
        b.add_edge(a3, b5).unwrap();
        (b.build().unwrap(), [a1, a2, a3, b4, b5])
    }

    #[test]
    fn reaches_transitively() {
        let (g, [a1, a2, a3, b4, b5]) = fig4();
        let r = Reachability::compute(&g);
        assert!(r.reaches(a1, a2));
        assert!(r.reaches(a1, b4), "transitive closure");
        assert!(!r.reaches(a2, a1), "no backwards reach");
        assert!(!r.reaches(a1, a1), "strict");
        assert!(!r.reaches(a1, b5));
        assert!(r.reaches(a3, b5));
    }

    #[test]
    fn follower_matches_paper_definition() {
        let (g, [a1, _a2, _a3, b4, _b5]) = fig4();
        let r = Reachability::compute(&g);
        // b4 is a follower of a1 (path a1 -> a2 -> b4).
        assert!(r.is_follower(b4, a1));
        assert!(!r.is_follower(a1, b4));
    }

    #[test]
    fn parallelizable_pairs() {
        let (g, [a1, a2, a3, b4, b5]) = fig4();
        let r = Reachability::compute(&g);
        assert!(r.parallelizable(a1, a3));
        assert!(r.parallelizable(a2, a3));
        assert!(r.parallelizable(b4, b5));
        assert!(r.parallelizable(a1, b5));
        assert!(!r.parallelizable(a1, a2));
        assert!(!r.parallelizable(a1, b4));
        assert!(
            !r.parallelizable(a1, a1),
            "a node is not parallel to itself"
        );
    }

    #[test]
    fn antichains_from_table4() {
        // Table 4 lists the maximal-size-2 antichains {a1,a3}, {a2,a3},
        // {b4,b5} for this graph.
        let (g, [a1, a2, a3, b4, b5]) = fig4();
        let r = Reachability::compute(&g);
        assert!(r.is_antichain(&[a1, a3]));
        assert!(r.is_antichain(&[a2, a3]));
        assert!(r.is_antichain(&[b4, b5]));
        assert!(!r.is_antichain(&[a1, a2]));
        assert!(r.is_antichain(&[a1]), "singletons are antichains");
        assert!(r.is_antichain(&[]), "the empty set is an antichain");
        assert!(!r.is_antichain(&[a1, a3, b4]), "b4 follows a1");
        assert!(r.is_antichain(&[a3, b4]));
    }

    #[test]
    fn par_row_excludes_self_and_tail_bits() {
        let (g, _) = fig4();
        let r = Reachability::compute(&g);
        for u in g.node_ids() {
            assert!(!get_bit(r.par_row(u), u.index()));
            // No bits set beyond the node count.
            let row = r.par_row(u);
            for i in g.len()..r.words() * 64 {
                assert!(!get_bit(row, i), "tail bit {i} set for {u}");
            }
        }
    }

    #[test]
    fn large_graph_crosses_word_boundary() {
        // A chain of 130 nodes exercises multi-word rows.
        let mut b = DfgBuilder::new();
        let ids: Vec<NodeId> = (0..130)
            .map(|i| b.add_node(format!("n{i}"), c('a')))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        let g = b.build().unwrap();
        let r = Reachability::compute(&g);
        assert!(r.reaches(ids[0], ids[129]));
        assert!(r.reaches(ids[63], ids[64]));
        assert!(!r.parallelizable(ids[0], ids[129]));
        // Ancestor rows mirror descendant rows.
        for i in 0..130 {
            for j in 0..130 {
                assert_eq!(
                    r.reaches(ids[i], ids[j]),
                    get_bit(r.anc_row(ids[j]), ids[i].index()),
                    "desc/anc mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn parallel_mask_symmetry() {
        let (g, _) = fig4();
        let r = Reachability::compute(&g);
        for u in g.node_ids() {
            for v in g.node_ids() {
                assert_eq!(r.parallelizable(u, v), r.parallelizable(v, u));
            }
        }
    }
}
