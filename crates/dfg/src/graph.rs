//! The immutable DFG and its builder.

use crate::color::{Color, ColorSet};
use crate::error::DfgError;
use crate::node::{Node, NodeId};

/// Mutable construction phase of a [`Dfg`].
///
/// All mutation happens here; [`DfgBuilder::build`] validates the graph
/// (known endpoints, no self-loops, no duplicate edges, acyclic) and freezes
/// it into compressed adjacency arrays.
#[derive(Clone, Debug, Default)]
pub struct DfgBuilder {
    nodes: Vec<Node>,
    edges: Vec<(NodeId, NodeId)>,
}

impl DfgBuilder {
    /// Start an empty graph.
    pub fn new() -> DfgBuilder {
        DfgBuilder::default()
    }

    /// Start an empty graph with reserved capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> DfgBuilder {
        DfgBuilder {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Add a node; returns its id. Ids are assigned in insertion order,
    /// which doubles as the scheduler's deterministic tie-break order.
    pub fn add_node(&mut self, name: impl Into<String>, color: Color) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("more than u32::MAX nodes"));
        self.nodes.push(Node::new(name, color));
        id
    }

    /// Add a dependency edge `from -> to` ("`to` consumes a value produced
    /// by `from`"). Fails immediately on unknown endpoints or self-loops;
    /// duplicate edges and cycles are reported by [`DfgBuilder::build`].
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), DfgError> {
        let n = self.nodes.len() as u32;
        if from.0 >= n {
            return Err(DfgError::UnknownNode(from));
        }
        if to.0 >= n {
            return Err(DfgError::UnknownNode(to));
        }
        if from == to {
            return Err(DfgError::SelfLoop(from));
        }
        self.edges.push((from, to));
        Ok(())
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Validate and freeze into an immutable [`Dfg`].
    pub fn build(self) -> Result<Dfg, DfgError> {
        let n = self.nodes.len();

        // Detect duplicate edges.
        let mut sorted = self.edges.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(DfgError::DuplicateEdge(w[0].0, w[0].1));
            }
        }

        // CSR for successors.
        let mut succ_offsets = vec![0u32; n + 1];
        for &(u, _) in &self.edges {
            succ_offsets[u.index() + 1] += 1;
        }
        for i in 0..n {
            succ_offsets[i + 1] += succ_offsets[i];
        }
        let mut succ_targets = vec![NodeId(0); self.edges.len()];
        let mut cursor = succ_offsets.clone();
        for &(u, v) in &self.edges {
            succ_targets[cursor[u.index()] as usize] = v;
            cursor[u.index()] += 1;
        }
        // Deterministic order within each adjacency list.
        for i in 0..n {
            let (s, e) = (succ_offsets[i] as usize, succ_offsets[i + 1] as usize);
            succ_targets[s..e].sort_unstable();
        }

        // CSR for predecessors.
        let mut pred_offsets = vec![0u32; n + 1];
        for &(_, v) in &self.edges {
            pred_offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            pred_offsets[i + 1] += pred_offsets[i];
        }
        let mut pred_targets = vec![NodeId(0); self.edges.len()];
        let mut cursor = pred_offsets.clone();
        for &(u, v) in &self.edges {
            pred_targets[cursor[v.index()] as usize] = u;
            cursor[v.index()] += 1;
        }
        for i in 0..n {
            let (s, e) = (pred_offsets[i] as usize, pred_offsets[i + 1] as usize);
            pred_targets[s..e].sort_unstable();
        }

        let dfg = Dfg {
            nodes: self.nodes,
            succ_offsets,
            succ_targets,
            pred_offsets,
            pred_targets,
            topo: Vec::new(),
        };

        // Kahn's algorithm: topological order + cycle detection.
        let mut indeg: Vec<u32> = (0..n)
            .map(|i| dfg.preds(NodeId(i as u32)).len() as u32)
            .collect();
        let mut queue: std::collections::VecDeque<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|&v| indeg[v.index()] == 0)
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(u) = queue.pop_front() {
            topo.push(u);
            for &v in dfg.succs(u) {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push_back(v);
                }
            }
        }
        if topo.len() != n {
            let on_cycle = (0..n as u32)
                .map(NodeId)
                .find(|v| indeg[v.index()] > 0)
                .expect("some node remains with nonzero in-degree");
            return Err(DfgError::Cycle(on_cycle));
        }

        Ok(Dfg { topo, ..dfg })
    }
}

/// An immutable data-flow graph: colored nodes plus dependency edges, stored
/// as CSR adjacency for cache-friendly traversal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dfg {
    pub(crate) nodes: Vec<Node>,
    succ_offsets: Vec<u32>,
    succ_targets: Vec<NodeId>,
    pred_offsets: Vec<u32>,
    pred_targets: Vec<NodeId>,
    topo: Vec<NodeId>,
}

impl Dfg {
    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.succ_targets.len()
    }

    /// All node ids, in insertion order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Payload of a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Color of a node (the paper's `l(n)`).
    #[inline]
    pub fn color(&self, id: NodeId) -> Color {
        self.nodes[id.index()].color
    }

    /// Name of a node.
    #[inline]
    pub fn name(&self, id: NodeId) -> &str {
        &self.nodes[id.index()].name
    }

    /// Direct successors of a node (the paper's `Succ(n)`), ascending.
    #[inline]
    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        let (s, e) = (
            self.succ_offsets[id.index()] as usize,
            self.succ_offsets[id.index() + 1] as usize,
        );
        &self.succ_targets[s..e]
    }

    /// Direct predecessors of a node (the paper's `Pred(n)`), ascending.
    #[inline]
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        let (s, e) = (
            self.pred_offsets[id.index()] as usize,
            self.pred_offsets[id.index() + 1] as usize,
        );
        &self.pred_targets[s..e]
    }

    /// A topological order of the nodes (sources first).
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// All edges `(from, to)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.node_ids()
            .flat_map(move |u| self.succs(u).iter().map(move |&v| (u, v)))
    }

    /// The complete color set `L`: every color appearing in the graph.
    pub fn color_set(&self) -> ColorSet {
        self.nodes.iter().map(|n| n.color).collect()
    }

    /// Count of nodes per color, indexed by [`Color::index`]. The returned
    /// vector is long enough to index every color present.
    pub fn color_histogram(&self) -> Vec<usize> {
        let max = self
            .nodes
            .iter()
            .map(|n| n.color.index())
            .max()
            .unwrap_or(0);
        let mut hist = vec![0usize; max + 1];
        for n in &self.nodes {
            hist[n.color.index()] += 1;
        }
        hist
    }

    /// A stable 64-bit content hash of the graph: node names, colors, and
    /// edges, in insertion order. Two graphs hash equal iff they would
    /// compare equal under `==` (modulo the astronomically unlikely
    /// collision), independent of process, run, or platform — the identity
    /// key the serving layer's artifact and table caches are built on.
    pub fn content_hash(&self) -> u64 {
        // FNV-1a, 64-bit: no std::hash dependence, so the value is stable
        // across Rust versions (DefaultHasher makes no such promise).
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        };
        eat(&(self.nodes.len() as u64).to_le_bytes());
        for n in &self.nodes {
            eat(n.name.as_bytes());
            // NUL-terminate the name so ("ab", color 1) can never collide
            // with ("a", …): node names come from identifiers and never
            // contain NUL.
            eat(&[0, n.color.0]);
        }
        for (u, v) in self.edges() {
            eat(&u.0.to_le_bytes());
            eat(&v.0.to_le_bytes());
        }
        h
    }

    /// Find a node by name (linear scan; intended for tests and examples).
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// Nodes with no predecessors.
    pub fn sources(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&v| self.preds(v).is_empty())
            .collect()
    }

    /// Nodes with no successors.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&v| self.succs(v).is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(ch: char) -> Color {
        Color::from_char(ch).unwrap()
    }

    /// Diamond: s -> l, s -> r, l -> t, r -> t.
    fn diamond() -> Dfg {
        let mut b = DfgBuilder::new();
        let s = b.add_node("s", c('a'));
        let l = b.add_node("l", c('b'));
        let r = b.add_node("r", c('b'));
        let t = b.add_node("t", c('a'));
        b.add_edge(s, l).unwrap();
        b.add_edge(s, r).unwrap();
        b.add_edge(l, t).unwrap();
        b.add_edge(r, t).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = DfgBuilder::new();
        assert_eq!(b.add_node("x", c('a')), NodeId(0));
        assert_eq!(b.add_node("y", c('a')), NodeId(1));
        assert_eq!(b.node_count(), 2);
    }

    #[test]
    fn adjacency_round_trip() {
        let g = diamond();
        let s = g.find("s").unwrap();
        let l = g.find("l").unwrap();
        let r = g.find("r").unwrap();
        let t = g.find("t").unwrap();
        assert_eq!(g.succs(s), &[l, r]);
        assert_eq!(g.preds(t), &[l, r]);
        assert_eq!(g.preds(s), &[] as &[NodeId]);
        assert_eq!(g.succs(t), &[] as &[NodeId]);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn sources_and_sinks() {
        let g = diamond();
        assert_eq!(g.sources(), vec![g.find("s").unwrap()]);
        assert_eq!(g.sinks(), vec![g.find("t").unwrap()]);
    }

    #[test]
    fn topo_order_is_valid() {
        let g = diamond();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.len()];
            for (i, &v) in g.topo_order().iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        for (u, v) in g.edges() {
            assert!(
                pos[u.index()] < pos[v.index()],
                "edge {u}->{v} violates topo"
            );
        }
    }

    #[test]
    fn rejects_unknown_endpoint() {
        let mut b = DfgBuilder::new();
        let x = b.add_node("x", c('a'));
        assert_eq!(
            b.add_edge(x, NodeId(9)),
            Err(DfgError::UnknownNode(NodeId(9)))
        );
        assert_eq!(
            b.add_edge(NodeId(9), x),
            Err(DfgError::UnknownNode(NodeId(9)))
        );
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = DfgBuilder::new();
        let x = b.add_node("x", c('a'));
        assert_eq!(b.add_edge(x, x), Err(DfgError::SelfLoop(x)));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut b = DfgBuilder::new();
        let x = b.add_node("x", c('a'));
        let y = b.add_node("y", c('a'));
        b.add_edge(x, y).unwrap();
        b.add_edge(x, y).unwrap();
        assert_eq!(b.build().unwrap_err(), DfgError::DuplicateEdge(x, y));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = DfgBuilder::new();
        let x = b.add_node("x", c('a'));
        let y = b.add_node("y", c('a'));
        let z = b.add_node("z", c('a'));
        b.add_edge(x, y).unwrap();
        b.add_edge(y, z).unwrap();
        b.add_edge(z, x).unwrap();
        assert!(matches!(b.build(), Err(DfgError::Cycle(_))));
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = DfgBuilder::new().build().unwrap();
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
        assert!(g.sources().is_empty());
        assert!(g.color_set().is_empty());
    }

    #[test]
    fn color_helpers() {
        let g = diamond();
        let set = g.color_set();
        assert_eq!(set.len(), 2);
        let hist = g.color_histogram();
        assert_eq!(hist[c('a').index()], 2);
        assert_eq!(hist[c('b').index()], 2);
    }

    #[test]
    fn find_by_name() {
        let g = diamond();
        assert!(g.find("s").is_some());
        assert!(g.find("nope").is_none());
    }

    #[test]
    fn content_hash_tracks_equality() {
        let g = diamond();
        assert_eq!(g.content_hash(), diamond().content_hash());
        assert_eq!(g.content_hash(), g.clone().content_hash());

        // Any structural difference — name, color, edge set — changes it.
        let mut b = DfgBuilder::new();
        let x = b.add_node("x", c('a'));
        let y = b.add_node("y", c('b'));
        b.add_edge(x, y).unwrap();
        let with_edge = b.build().unwrap();
        let mut b = DfgBuilder::new();
        b.add_node("x", c('a'));
        b.add_node("y", c('b'));
        let without_edge = b.build().unwrap();
        assert_ne!(with_edge.content_hash(), without_edge.content_hash());

        let mut b = DfgBuilder::new();
        b.add_node("x", c('a'));
        b.add_node("y", c('c'));
        let recolored = b.build().unwrap();
        assert_ne!(without_edge.content_hash(), recolored.content_hash());

        // The name/color boundary is unambiguous: ("ab", …) never hashes
        // like ("a", …) with the following byte absorbed into the name.
        let mut b = DfgBuilder::new();
        b.add_node("ab", c('a'));
        let joined = b.build().unwrap();
        let mut b = DfgBuilder::new();
        b.add_node("a", c('b'));
        let split = b.build().unwrap();
        assert_ne!(joined.content_hash(), split.content_hash());
    }
}
