//! Serde support: a `Dfg` serializes as its node and edge lists and is
//! re-validated through [`DfgBuilder`] on deserialization, so a corrupted
//! or hand-edited file can never produce a cyclic "DFG".

use crate::color::Color;
use crate::graph::{Dfg, DfgBuilder};
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

#[derive(Serialize, Deserialize)]
struct DfgRepr {
    nodes: Vec<(String, Color)>,
    edges: Vec<(u32, u32)>,
}

impl Serialize for Dfg {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let repr = DfgRepr {
            nodes: self
                .node_ids()
                .map(|id| (self.name(id).to_string(), self.color(id)))
                .collect(),
            edges: self.edges().map(|(u, v)| (u.0, v.0)).collect(),
        };
        repr.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Dfg {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = DfgRepr::deserialize(deserializer)?;
        let mut b = DfgBuilder::with_capacity(repr.nodes.len(), repr.edges.len());
        for (name, color) in repr.nodes {
            b.add_node(name, color);
        }
        for (u, v) in repr.edges {
            b.add_edge(crate::NodeId(u), crate::NodeId(v))
                .map_err(D::Error::custom)?;
        }
        b.build().map_err(D::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_bincode_like_tokens() {
        // Use a simple self-describing format we control: serde_test is not
        // in the offline set, so round-trip through serde's JSON-ish value
        // via the `serde` "derive"d representation using `serde::__private`
        // is unavailable; instead round-trip through our own tiny writer.
        // Here we just assert the Serialize impl is callable and stable by
        // serializing to a debug-friendly format via serde's Serializer for
        // `Vec<u8>`... Simplest available: assert structural equality after
        // a manual repr round trip.
        let mut b = DfgBuilder::new();
        let x = b.add_node("x", Color(0));
        let y = b.add_node("y", Color(2));
        b.add_edge(x, y).unwrap();
        let g = b.build().unwrap();

        // Manual repr round trip mirrors what any serde format does.
        let repr = DfgRepr {
            nodes: g
                .node_ids()
                .map(|id| (g.name(id).to_string(), g.color(id)))
                .collect(),
            edges: g.edges().map(|(u, v)| (u.0, v.0)).collect(),
        };
        let mut b2 = DfgBuilder::new();
        for (name, color) in &repr.nodes {
            b2.add_node(name.clone(), *color);
        }
        for &(u, v) in &repr.edges {
            b2.add_edge(crate::NodeId(u), crate::NodeId(v)).unwrap();
        }
        let g2 = b2.build().unwrap();
        assert_eq!(g, g2);
    }
}
