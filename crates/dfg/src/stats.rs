//! Summary statistics of a DFG — the numbers a paper's "benchmark
//! characteristics" table reports.

use crate::analysis::Levels;
use crate::graph::Dfg;
use serde::{Deserialize, Serialize};

/// Shape metrics of a graph.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DfgStats {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Distinct colors.
    pub colors: usize,
    /// Critical path length in cycles.
    pub critical_path: u32,
    /// Sources (no predecessors).
    pub sources: usize,
    /// Sinks (no successors).
    pub sinks: usize,
    /// Maximum level population (nodes sharing one ASAP level) — an upper
    /// bound on exploitable parallelism per cycle.
    pub max_level_width: usize,
    /// Average parallelism: `nodes / critical_path`.
    pub avg_parallelism: f64,
    /// Mean mobility (`ALAP − ASAP`) over all nodes.
    pub mean_mobility: f64,
}

impl DfgStats {
    /// Compute the statistics.
    pub fn compute(dfg: &Dfg) -> DfgStats {
        let levels = Levels::compute(dfg);
        let n = dfg.len();
        let mut width = vec![0usize; levels.asap_max() as usize + 1];
        let mut mobility_sum = 0u64;
        for v in dfg.node_ids() {
            width[levels.asap(v) as usize] += 1;
            mobility_sum += levels.mobility(v) as u64;
        }
        DfgStats {
            nodes: n,
            edges: dfg.edge_count(),
            colors: dfg.color_set().len(),
            critical_path: levels.critical_path_len(),
            sources: dfg.sources().len(),
            sinks: dfg.sinks().len(),
            max_level_width: width.iter().copied().max().unwrap_or(0),
            avg_parallelism: if n == 0 {
                0.0
            } else {
                n as f64 / levels.critical_path_len() as f64
            },
            mean_mobility: if n == 0 {
                0.0
            } else {
                mobility_sum as f64 / n as f64
            },
        }
    }
}

impl std::fmt::Display for DfgStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} nodes, {} edges, {} colors, critical path {}",
            self.nodes, self.edges, self.colors, self.critical_path
        )?;
        writeln!(
            f,
            "{} sources, {} sinks, max level width {}, avg parallelism {:.2}, mean mobility {:.2}",
            self.sources,
            self.sinks,
            self.max_level_width,
            self.avg_parallelism,
            self.mean_mobility
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Color;
    use crate::graph::DfgBuilder;

    #[test]
    fn chain_stats() {
        let mut b = DfgBuilder::new();
        let x = b.add_node("x", Color(0));
        let y = b.add_node("y", Color(1));
        let z = b.add_node("z", Color(0));
        b.add_edge(x, y).unwrap();
        b.add_edge(y, z).unwrap();
        let s = DfgStats::compute(&b.build().unwrap());
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 2);
        assert_eq!(s.colors, 2);
        assert_eq!(s.critical_path, 3);
        assert_eq!(s.sources, 1);
        assert_eq!(s.sinks, 1);
        assert_eq!(s.max_level_width, 1);
        assert!((s.avg_parallelism - 1.0).abs() < 1e-12);
        assert_eq!(s.mean_mobility, 0.0);
    }

    #[test]
    fn flat_stats() {
        let mut b = DfgBuilder::new();
        for i in 0..4 {
            b.add_node(format!("n{i}"), Color(0));
        }
        let s = DfgStats::compute(&b.build().unwrap());
        assert_eq!(s.critical_path, 1);
        assert_eq!(s.max_level_width, 4);
        assert!((s.avg_parallelism - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats() {
        let s = DfgStats::compute(&DfgBuilder::new().build().unwrap());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.avg_parallelism, 0.0);
    }

    #[test]
    fn display_mentions_counts() {
        let mut b = DfgBuilder::new();
        b.add_node("x", Color(0));
        let s = DfgStats::compute(&b.build().unwrap());
        let txt = s.to_string();
        assert!(txt.contains("1 nodes"));
        assert!(txt.contains("critical path 1"));
    }
}
