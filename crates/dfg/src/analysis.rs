//! ASAP / ALAP / Height level analysis (paper Eqs. 1–3).

use crate::graph::Dfg;
use crate::node::NodeId;

/// Per-node level attributes of a DFG.
///
/// Follows the paper's conventions exactly:
///
/// * `ASAP(n) = 0` for sources, else `max over preds (ASAP + 1)` (Eq. 1);
/// * `ALAP(n) = ASAPmax` for sinks, else `min over succs (ALAP − 1)`
///   (Eq. 2) — note sinks are pinned at `ASAPmax`, not at their own
///   earliest level;
/// * `Height(n) = 1` for sinks, else `max over succs (Height + 1)`
///   (Eq. 3) — heights count *nodes* on the longest downward path, so a
///   source on the critical path of a depth-`d` graph has height `d`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Levels {
    asap: Vec<u32>,
    alap: Vec<u32>,
    height: Vec<u32>,
    asap_max: u32,
}

impl Levels {
    /// Compute all level attributes in two passes over the topological
    /// order (O(V + E)).
    pub fn compute(dfg: &Dfg) -> Levels {
        let n = dfg.len();
        let mut asap = vec![0u32; n];
        let mut height = vec![1u32; n];

        // Forward pass: ASAP.
        for &v in dfg.topo_order() {
            for &u in dfg.preds(v) {
                asap[v.index()] = asap[v.index()].max(asap[u.index()] + 1);
            }
        }
        let asap_max = asap.iter().copied().max().unwrap_or(0);

        // Backward pass: ALAP and Height.
        let mut alap = vec![asap_max; n];
        for &v in dfg.topo_order().iter().rev() {
            for &w in dfg.succs(v) {
                alap[v.index()] = alap[v.index()].min(alap[w.index()].saturating_sub(1));
                height[v.index()] = height[v.index()].max(height[w.index()] + 1);
            }
        }

        Levels {
            asap,
            alap,
            height,
            asap_max,
        }
    }

    /// Earliest cycle of `n` (Eq. 1).
    #[inline]
    pub fn asap(&self, n: NodeId) -> u32 {
        self.asap[n.index()]
    }

    /// Latest cycle of `n` (Eq. 2).
    #[inline]
    pub fn alap(&self, n: NodeId) -> u32 {
        self.alap[n.index()]
    }

    /// Longest node-count distance from `n` to a sink (Eq. 3).
    #[inline]
    pub fn height(&self, n: NodeId) -> u32 {
        self.height[n.index()]
    }

    /// `ASAPmax`: the largest ASAP level in the graph. The critical path
    /// contains `asap_max + 1` nodes, so no schedule can be shorter than
    /// `asap_max + 1` cycles.
    #[inline]
    pub fn asap_max(&self) -> u32 {
        self.asap_max
    }

    /// Scheduling slack `ALAP(n) − ASAP(n)` (classic "mobility").
    #[inline]
    pub fn mobility(&self, n: NodeId) -> u32 {
        self.alap[n.index()] - self.asap[n.index()]
    }

    /// Length (in cycles) of the shortest possible schedule: the critical
    /// path, `ASAPmax + 1`.
    #[inline]
    pub fn critical_path_len(&self) -> u32 {
        self.asap_max + 1
    }

    /// Number of nodes the analysis was computed for.
    pub fn len(&self) -> usize {
        self.asap.len()
    }

    /// `true` if computed for an empty graph.
    pub fn is_empty(&self) -> bool {
        self.asap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Color;
    use crate::graph::DfgBuilder;

    fn c(ch: char) -> Color {
        Color::from_char(ch).unwrap()
    }

    /// Chain x -> y -> z plus an independent node w.
    fn chain_plus_isolated() -> Dfg {
        let mut b = DfgBuilder::new();
        let x = b.add_node("x", c('a'));
        let y = b.add_node("y", c('a'));
        let z = b.add_node("z", c('a'));
        let _w = b.add_node("w", c('b'));
        b.add_edge(x, y).unwrap();
        b.add_edge(y, z).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn chain_levels() {
        let g = chain_plus_isolated();
        let l = Levels::compute(&g);
        let (x, y, z, w) = (
            g.find("x").unwrap(),
            g.find("y").unwrap(),
            g.find("z").unwrap(),
            g.find("w").unwrap(),
        );
        assert_eq!(l.asap(x), 0);
        assert_eq!(l.asap(y), 1);
        assert_eq!(l.asap(z), 2);
        assert_eq!(l.asap(w), 0);
        assert_eq!(l.asap_max(), 2);

        assert_eq!(l.alap(x), 0);
        assert_eq!(l.alap(y), 1);
        assert_eq!(l.alap(z), 2);
        // Sinks are pinned at ASAPmax per Eq. 2, so the isolated node has
        // full mobility.
        assert_eq!(l.alap(w), 2);
        assert_eq!(l.mobility(w), 2);
        assert_eq!(l.mobility(x), 0);

        assert_eq!(l.height(x), 3);
        assert_eq!(l.height(y), 2);
        assert_eq!(l.height(z), 1);
        assert_eq!(l.height(w), 1);
        assert_eq!(l.critical_path_len(), 3);
    }

    #[test]
    fn diamond_levels() {
        let mut b = DfgBuilder::new();
        let s = b.add_node("s", c('a'));
        let l = b.add_node("l", c('b'));
        let r = b.add_node("r", c('b'));
        let t = b.add_node("t", c('a'));
        b.add_edge(s, l).unwrap();
        b.add_edge(s, r).unwrap();
        b.add_edge(l, t).unwrap();
        b.add_edge(r, t).unwrap();
        let g = b.build().unwrap();
        let lv = Levels::compute(&g);
        assert_eq!(lv.asap(s), 0);
        assert_eq!(lv.asap(l), 1);
        assert_eq!(lv.asap(r), 1);
        assert_eq!(lv.asap(t), 2);
        assert_eq!(lv.alap(l), 1);
        assert_eq!(lv.alap(r), 1);
        assert_eq!(lv.height(s), 3);
        assert_eq!(lv.height(l), 2);
        assert_eq!(lv.height(t), 1);
    }

    #[test]
    fn asap_never_exceeds_alap() {
        let g = chain_plus_isolated();
        let l = Levels::compute(&g);
        for v in g.node_ids() {
            assert!(l.asap(v) <= l.alap(v), "ASAP must bound ALAP for {v}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = DfgBuilder::new().build().unwrap();
        let l = Levels::compute(&g);
        assert!(l.is_empty());
        assert_eq!(l.asap_max(), 0);
        assert_eq!(l.critical_path_len(), 1);
    }

    #[test]
    fn single_node() {
        let mut b = DfgBuilder::new();
        let x = b.add_node("x", c('a'));
        let g = b.build().unwrap();
        let l = Levels::compute(&g);
        assert_eq!(l.asap(x), 0);
        assert_eq!(l.alap(x), 0);
        assert_eq!(l.height(x), 1);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn edge_implies_strictly_increasing_asap() {
        let g = chain_plus_isolated();
        let l = Levels::compute(&g);
        for (u, v) in g.edges() {
            assert!(l.asap(u) < l.asap(v));
            assert!(l.alap(u) < l.alap(v));
            assert!(l.height(u) > l.height(v));
        }
    }
}
