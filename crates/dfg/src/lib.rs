//! Data-flow-graph substrate for multi-pattern scheduling.
//!
//! This crate implements Section 3 of Guo, Hoede & Smit, *"A Pattern
//! Selection Algorithm for Multi-Pattern Scheduling"* (IPPS 2006): a DFG
//! whose nodes carry a *color* (the operation type executed by a
//! reconfigurable ALU) and whose directed edges are data dependencies,
//! together with the per-node level attributes the paper builds on:
//!
//! * **ASAP** — earliest clock cycle a node may occupy (Eq. 1),
//! * **ALAP** — latest clock cycle a node may occupy (Eq. 2),
//! * **Height** — longest node-count distance to a sink (Eq. 3),
//! * the **follower** relation (transitive reachability), from which
//!   *parallelizable* node pairs and *antichains* are defined,
//! * the **span** of a node set (Section 5.1), with the Theorem 1 lower
//!   bound `ASAPmax + Span(A) + 1`.
//!
//! # Design
//!
//! Graphs are built with [`DfgBuilder`] and frozen into an immutable [`Dfg`]
//! backed by compressed adjacency (CSR) arrays — node iteration, predecessor
//! and successor access are all contiguous slice walks. Derived analyses live
//! in separate value types ([`Levels`], [`Reachability`]) produced from a
//! `&Dfg`, which keeps the borrow checker out of the way: there is no
//! interior mutation of a graph anywhere in the workspace. [`AnalyzedDfg`]
//! bundles a graph with both analyses for the common case.
//!
//! # Example
//!
//! ```
//! use mps_dfg::{Color, DfgBuilder};
//!
//! let mut b = DfgBuilder::new();
//! let x = b.add_node("x", Color::from_char('a').unwrap());
//! let y = b.add_node("y", Color::from_char('b').unwrap());
//! b.add_edge(x, y).unwrap();
//! let dfg = b.build().unwrap();
//!
//! let levels = mps_dfg::Levels::compute(&dfg);
//! assert_eq!(levels.asap(x), 0);
//! assert_eq!(levels.asap(y), 1);
//! assert_eq!(levels.height(x), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod analyzed;
mod color;
mod dot;
mod error;
mod graph;
mod node;
mod parse;
mod reach;
mod serde_impl;
mod smallset;
mod span;
mod stats;
mod transform;

pub use analysis::Levels;
pub use analyzed::AnalyzedDfg;
pub use color::{Color, ColorSet};
pub use dot::dot_string;
pub use error::DfgError;
pub use graph::{Dfg, DfgBuilder};
pub use node::{Node, NodeId};
pub use parse::{parse_text, to_text, ParseError};
pub use reach::Reachability;
pub use smallset::SmallSet;
pub use span::{span, theorem1_lower_bound};
pub use stats::DfgStats;
pub use transform::{critical_path, disjoint_union, induced_subgraph, recolor, transpose};

/// An antichain as manipulated by the pattern machinery: at most `C` nodes
/// (the Montium has `C = 5` ALUs, and we allow up to 16 for generality),
/// stored inline without heap allocation.
pub type Antichain = SmallSet<NodeId, 16>;
