//! Graphviz DOT export (for regenerating the paper's Figures 2 and 4).

use crate::graph::Dfg;

/// Render the graph in Graphviz DOT syntax.
///
/// Nodes are labelled with their name and grouped into fill colors by
/// operation color so the paper's "a = addition, b = subtraction,
/// c = multiplication" convention is visually distinguishable.
pub fn dot_string(dfg: &Dfg, title: &str) -> String {
    let palette = [
        "#cde7ff", "#ffd6c9", "#d8f5d0", "#f3e0ff", "#fff3bf", "#e0e0e0",
    ];
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", escape(title)));
    out.push_str("  rankdir=TB;\n  node [shape=circle, style=filled, fontname=\"Helvetica\"];\n");
    for id in dfg.node_ids() {
        let color = dfg.color(id);
        let fill = palette[color.index() % palette.len()];
        out.push_str(&format!(
            "  {} [label=\"{}\", fillcolor=\"{}\"];\n",
            id,
            escape(dfg.name(id)),
            fill
        ));
    }
    for (u, v) in dfg.edges() {
        out.push_str(&format!("  {u} -> {v};\n"));
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Color;
    use crate::graph::DfgBuilder;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut b = DfgBuilder::new();
        let x = b.add_node("x1", Color(0));
        let y = b.add_node("y\"q", Color(1));
        b.add_edge(x, y).unwrap();
        let g = b.build().unwrap();
        let dot = dot_string(&g, "test");
        assert!(dot.starts_with("digraph \"test\" {"));
        assert!(dot.contains("n0 [label=\"x1\""));
        assert!(dot.contains("label=\"y\\\"q\""), "names are escaped");
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn distinct_colors_get_distinct_fills() {
        let mut b = DfgBuilder::new();
        b.add_node("x", Color(0));
        b.add_node("y", Color(1));
        let g = b.build().unwrap();
        let dot = dot_string(&g, "t");
        assert!(dot.contains("#cde7ff"));
        assert!(dot.contains("#ffd6c9"));
    }
}
