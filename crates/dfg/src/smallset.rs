//! A tiny inline vector for antichains and patterns.

use std::fmt;
use std::ops::Deref;

/// A fixed-capacity inline vector of `Copy` elements.
///
/// Antichains have at most `C` elements (5 on the Montium), so the
/// enumeration hot loop must not heap-allocate per antichain. `SmallSet`
/// stores up to `N` elements inline and is itself `Copy`.
///
/// Pushing beyond capacity panics — callers bound their sizes by
/// construction (the enumerator never extends past `C`).
#[derive(Clone, Copy)]
pub struct SmallSet<T: Copy, const N: usize> {
    items: [T; N],
    len: u8,
}

impl<T: Copy + Default, const N: usize> SmallSet<T, N> {
    /// An empty set.
    pub fn new() -> Self {
        assert!(N <= u8::MAX as usize, "capacity must fit in u8");
        SmallSet {
            items: [T::default(); N],
            len: 0,
        }
    }

    /// Build from a slice (panics if `slice.len() > N`).
    pub fn from_slice(slice: &[T]) -> Self {
        let mut s = Self::new();
        for &x in slice {
            s.push(x);
        }
        s
    }

    /// Append an element (panics at capacity).
    #[inline]
    pub fn push(&mut self, x: T) {
        assert!((self.len as usize) < N, "SmallSet capacity {N} exceeded");
        self.items[self.len as usize] = x;
        self.len += 1;
    }

    /// Remove and return the last element.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            None
        } else {
            self.len -= 1;
            Some(self.items[self.len as usize])
        }
    }

    /// Current length.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// View as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.items[..self.len as usize]
    }

    /// Maximum capacity `N`.
    pub const fn capacity(&self) -> usize {
        N
    }
}

impl<T: Copy + Default + Ord, const N: usize> SmallSet<T, N> {
    /// Insert `x` before the first element greater than it, shifting the
    /// tail right — one insertion-sort step, entirely on the stack.
    ///
    /// If the contents are sorted (non-decreasing) before the call, they
    /// are sorted after it; duplicates are kept, with the new element
    /// placed after existing equals. Panics at capacity, like
    /// [`SmallSet::push`].
    #[inline]
    pub fn insert_sorted(&mut self, x: T) {
        assert!((self.len as usize) < N, "SmallSet capacity {N} exceeded");
        let mut i = self.len as usize;
        while i > 0 && self.items[i - 1] > x {
            self.items[i] = self.items[i - 1];
            i -= 1;
        }
        self.items[i] = x;
        self.len += 1;
    }
}

impl<T: Copy + Default, const N: usize> Default for SmallSet<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy, const N: usize> Deref for SmallSet<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.items[..self.len as usize]
    }
}

impl<T: Copy + PartialEq, const N: usize> PartialEq for SmallSet<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.deref() == other.deref()
    }
}

impl<T: Copy + Eq, const N: usize> Eq for SmallSet<T, N> {}

impl<T: Copy + fmt::Debug, const N: usize> fmt::Debug for SmallSet<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.deref().iter()).finish()
    }
}

impl<T: Copy + std::hash::Hash, const N: usize> std::hash::Hash for SmallSet<T, N> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.deref().hash(state);
    }
}

impl<T: Copy + serde::Serialize, const N: usize> serde::Serialize for SmallSet<T, N> {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.deref().iter())
    }
}

impl<'de, T, const N: usize> serde::Deserialize<'de> for SmallSet<T, N>
where
    T: Copy + Default + serde::Deserialize<'de>,
{
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(deserializer)?;
        if items.len() > N {
            return Err(serde::de::Error::custom(format!(
                "SmallSet capacity {N} exceeded by {} elements",
                items.len()
            )));
        }
        Ok(SmallSet::from_slice(&items))
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallSet<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_len() {
        let mut s: SmallSet<u32, 4> = SmallSet::new();
        assert!(s.is_empty());
        s.push(1);
        s.push(2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.as_slice(), &[1, 2]);
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn push_past_capacity_panics() {
        let mut s: SmallSet<u32, 2> = SmallSet::new();
        s.push(1);
        s.push(2);
        s.push(3);
    }

    #[test]
    fn equality_ignores_spare_capacity() {
        let a: SmallSet<u32, 4> = SmallSet::from_slice(&[1, 2]);
        let mut b: SmallSet<u32, 4> = SmallSet::new();
        b.push(1);
        b.push(2);
        b.push(99);
        b.pop();
        assert_eq!(a, b);
    }

    #[test]
    fn deref_and_iteration() {
        let s: SmallSet<u32, 8> = (0..5).collect();
        let sum: u32 = s.iter().sum();
        assert_eq!(sum, 10);
        assert_eq!(s.capacity(), 8);
        assert_eq!(&s[1..3], &[1, 2]);
    }

    #[test]
    fn insert_sorted_keeps_order() {
        let mut s: SmallSet<u32, 8> = SmallSet::new();
        for x in [5u32, 1, 3, 3, 2, 9, 0] {
            s.insert_sorted(x);
        }
        assert_eq!(s.as_slice(), &[0, 1, 2, 3, 3, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn insert_sorted_past_capacity_panics() {
        let mut s: SmallSet<u32, 2> = SmallSet::new();
        s.insert_sorted(2);
        s.insert_sorted(1);
        s.insert_sorted(3);
    }

    #[test]
    fn debug_format() {
        let s: SmallSet<u32, 4> = SmallSet::from_slice(&[7, 8]);
        assert_eq!(format!("{s:?}"), "[7, 8]");
    }
}
