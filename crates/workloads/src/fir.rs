//! FIR filter DFGs.

use crate::{ADD, MUL};
use mps_dfg::{Dfg, DfgBuilder, NodeId};

/// How the products of a FIR tap line are accumulated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdderShape {
    /// Balanced binary adder tree — depth `⌈log2(taps)⌉`, maximally
    /// parallel.
    #[default]
    Tree,
    /// Sequential accumulator chain — depth `taps − 1`, minimally parallel
    /// (the classic transposed-form accumulation).
    Chain,
}

/// `y[n] = Σ_k b_k · x[n−k]` for `samples` consecutive output samples.
///
/// Each output sample contributes `taps` multiplications (`c`) feeding an
/// adder structure of `taps − 1` additions (`a`). Samples are independent,
/// so `samples > 1` widens the graph without deepening it — a good stress
/// test for pattern selection on multiplication-heavy workloads.
pub fn fir(taps: usize, samples: usize, shape: AdderShape) -> Dfg {
    assert!(taps >= 1, "a FIR filter needs at least one tap");
    assert!(samples >= 1, "need at least one output sample");
    let mut b = DfgBuilder::new();
    for s in 0..samples {
        let products: Vec<NodeId> = (0..taps)
            .map(|k| b.add_node(format!("c_s{s}t{k}"), MUL))
            .collect();
        reduce(&mut b, &products, shape, &format!("s{s}"));
    }
    b.build().expect("FIR graphs are valid DAGs")
}

/// Reduce `inputs` to one value with `a` nodes of the requested shape;
/// returns the root (or the single input).
fn reduce(b: &mut DfgBuilder, inputs: &[NodeId], shape: AdderShape, tag: &str) -> NodeId {
    match shape {
        AdderShape::Chain => {
            let mut acc = inputs[0];
            for (i, &p) in inputs.iter().enumerate().skip(1) {
                let n = b.add_node(format!("a_{tag}_{i}"), ADD);
                b.add_edge(acc, n).unwrap();
                b.add_edge(p, n).unwrap();
                acc = n;
            }
            acc
        }
        AdderShape::Tree => {
            let mut level: Vec<NodeId> = inputs.to_vec();
            let mut li = 0;
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                for (pi, pair) in level.chunks(2).enumerate() {
                    if pair.len() == 2 {
                        let n = b.add_node(format!("a_{tag}_l{li}_{pi}"), ADD);
                        b.add_edge(pair[0], n).unwrap();
                        b.add_edge(pair[1], n).unwrap();
                        next.push(n);
                    } else {
                        next.push(pair[0]);
                    }
                }
                level = next;
                li += 1;
            }
            level[0]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dfg::Levels;

    #[test]
    fn node_counts() {
        for taps in [1usize, 2, 7, 16] {
            for shape in [AdderShape::Tree, AdderShape::Chain] {
                let g = fir(taps, 1, shape);
                let h = g.color_histogram();
                assert_eq!(h[MUL.index()], taps);
                if taps > 1 {
                    assert_eq!(h[ADD.index()], taps - 1, "taps={taps} {shape:?}");
                }
            }
        }
    }

    #[test]
    fn tree_is_shallower_than_chain() {
        let tree = fir(16, 1, AdderShape::Tree);
        let chain = fir(16, 1, AdderShape::Chain);
        let dt = Levels::compute(&tree).critical_path_len();
        let dc = Levels::compute(&chain).critical_path_len();
        assert_eq!(dt, 1 + 4, "mults + log2(16) adds");
        assert_eq!(dc, 1 + 15, "mults + 15 sequential adds");
        assert!(dt < dc);
    }

    #[test]
    fn samples_widen_not_deepen() {
        let one = fir(8, 1, AdderShape::Tree);
        let four = fir(8, 4, AdderShape::Tree);
        assert_eq!(four.len(), 4 * one.len());
        assert_eq!(
            Levels::compute(&one).critical_path_len(),
            Levels::compute(&four).critical_path_len()
        );
    }

    #[test]
    fn single_tap_is_just_a_multiply() {
        let g = fir(1, 1, AdderShape::Tree);
        assert_eq!(g.len(), 1);
    }
}
