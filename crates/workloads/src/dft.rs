//! N-point DFT graph generators.
//!
//! The paper evaluates on "3DFT" and "5DFT" — 3- and 5-point fast Fourier
//! transforms. The exact arithmetic decomposition the authors compiled is
//! not printed (only the 3-point result, reproduced verbatim in
//! [`crate::fig2`]); for the parameterized generator we use the standard
//! Winograd small-N DFT factorizations for N ∈ {2, 3, 4, 5} and the direct
//! (twiddle-matrix) DFT for other sizes. All arithmetic is expanded to
//! real operations via [`crate::ComplexBuilder`], with negations and
//! multiplications by ±1/±j folded away as a real datapath would.

use crate::complexsig::{ComplexBuilder, ComplexSig};
use mps_dfg::Dfg;

/// Which decomposition [`dft`] uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DftStyle {
    /// Winograd factorization where available (N ∈ {2, 3, 4, 5}), direct
    /// otherwise.
    #[default]
    Auto,
    /// Force the direct (dense twiddle) form.
    Direct,
}

/// Build the DFG of an `n`-point complex DFT (`n ≥ 2`).
pub fn dft(n: usize, style: DftStyle) -> Dfg {
    assert!(n >= 2, "a DFT needs at least 2 points");
    let mut b = ComplexBuilder::new();
    let inputs: Vec<ComplexSig> = (0..n).map(|_| b.input()).collect();
    match (style, n) {
        (DftStyle::Auto, 2) => winograd2(&mut b, &inputs),
        (DftStyle::Auto, 3) => winograd3(&mut b, &inputs),
        (DftStyle::Auto, 4) => radix4(&mut b, &inputs),
        (DftStyle::Auto, 5) => winograd5(&mut b, &inputs),
        _ => direct(&mut b, &inputs),
    }
    b.build().expect("generated DFT graphs are valid DAGs")
}

/// The 3-point DFT (Winograd factorization, 16 nodes).
pub fn dft3() -> Dfg {
    dft(3, DftStyle::Auto)
}

/// The 5-point DFT (Winograd factorization, 44 nodes) — the paper's 5DFT
/// workload.
pub fn dft5() -> Dfg {
    dft(5, DftStyle::Auto)
}

fn winograd2(b: &mut ComplexBuilder, x: &[ComplexSig]) {
    let _x0 = b.cadd(x[0], x[1]);
    let _x1 = b.csub(x[0], x[1]);
}

/// Winograd 3-point DFT:
/// `u = x1+x2; v = x1−x2; X0 = x0+u; m1 = (cos(2π/3)−1)·u;
///  m2 = j·sin(2π/3)·v; s = X0+m1; X1 = s+m2; X2 = s−m2.`
fn winograd3(b: &mut ComplexBuilder, x: &[ComplexSig]) {
    let u = b.cadd(x[1], x[2]);
    let v = b.csub(x[1], x[2]);
    let x0 = b.cadd(x[0], u);
    let m1 = b.cmul_real(u, true); // cos(2π/3) − 1 < 0
    let m2 = b.cmul_imag(v, false); // j·sin(2π/3)
    let s = b.cadd(x0, m1);
    let _x1 = b.cadd(s, m2);
    let _x2 = b.csub(s, m2);
}

/// Radix-2 4-point DFT (multiplication-free: twiddles are ±1, ±j).
fn radix4(b: &mut ComplexBuilder, x: &[ComplexSig]) {
    let t0 = b.cadd(x[0], x[2]);
    let t1 = b.csub(x[0], x[2]);
    let t2 = b.cadd(x[1], x[3]);
    let t3 = b.csub(x[1], x[3]);
    let _x0 = b.cadd(t0, t2);
    let _x2 = b.csub(t0, t2);
    let jt3 = t3.mul_j();
    let _x1 = b.csub(t1, jt3);
    let _x3 = b.cadd(t1, jt3);
}

/// Winograd 5-point DFT (10 real multiplications):
///
/// ```text
/// t1 = x1+x4   t2 = x2+x3   t3 = x1−x4   t4 = x2−x3   t5 = t1+t2
/// X0 = x0+t5
/// m1 = ((cos u + cos 2u)/2 − 1)·t5              (u = 2π/5)
/// m2 = ((cos u − cos 2u)/2)·(t1−t2)
/// m3 = −j·sin(u)·(t3+t4)
/// m4 = −j·(sin u + sin 2u)·t4
/// m5 =  j·(sin u − sin 2u)·t3
/// s1 = X0+m1   s2 = s1+m2   s3 = m3−m4   s4 = s1−m2   s5 = m3+m5
/// X1 = s2+s3   X2 = s4+s5   X3 = s4−s5   X4 = s2−s3
/// ```
fn winograd5(b: &mut ComplexBuilder, x: &[ComplexSig]) {
    let t1 = b.cadd(x[1], x[4]);
    let t2 = b.cadd(x[2], x[3]);
    let t3 = b.csub(x[1], x[4]);
    let t4 = b.csub(x[2], x[3]);
    let t5 = b.cadd(t1, t2);
    let x0 = b.cadd(x[0], t5);
    let m1 = b.cmul_real(t5, true); // (cos u + cos 2u)/2 − 1 < 0
    let t12 = b.csub(t1, t2);
    let m2 = b.cmul_real(t12, false);
    let t34 = b.cadd(t3, t4);
    let m3 = b.cmul_imag(t34, true); // −j·sin u
    let m4 = b.cmul_imag(t4, true); // −j·(sin u + sin 2u)
    let m5 = b.cmul_imag(t3, false); // j·(sin u − sin 2u)
    let s1 = b.cadd(x0, m1);
    let s2 = b.cadd(s1, m2);
    let s3 = b.csub(m3, m4);
    let s4 = b.csub(s1, m2);
    let s5 = b.cadd(m3, m5);
    let _x1 = b.cadd(s2, s3);
    let _x2 = b.cadd(s4, s5);
    let _x3 = b.csub(s4, s5);
    let _x4 = b.csub(s2, s3);
}

/// Direct DFT: `X_k = Σ_n x_n·W^{nk}` with trivial twiddles (±1, ±j)
/// folded and general twiddles expanded to the 4-multiply complex product.
fn direct(b: &mut ComplexBuilder, x: &[ComplexSig]) {
    let n = x.len();
    for k in 0..n {
        let mut acc: Option<ComplexSig> = None;
        for (i, &xi) in x.iter().enumerate() {
            let e = (i * k) % n; // twiddle exponent
            let term = apply_twiddle(b, xi, e, n);
            acc = Some(match acc {
                None => term,
                Some(a) => b.cadd(a, term),
            });
        }
        let _xk = acc.expect("n >= 2");
    }
}

/// Multiply by `W_n^e = exp(−2πj·e/n)`, folding the trivial cases.
fn apply_twiddle(b: &mut ComplexBuilder, x: ComplexSig, e: usize, n: usize) -> ComplexSig {
    // 4e/n classifies the quarter turns exactly when 4e % n == 0.
    if e == 0 {
        return x;
    }
    if (4 * e).is_multiple_of(n) {
        return match 4 * e / n {
            1 => x.mul_j().negate(), // W^{n/4} = −j
            2 => x.negate(),         // W^{n/2} = −1
            3 => x.mul_j(),          // W^{3n/4} = +j
            _ => x,
        };
    }
    // General twiddle: cos − j·sin with both parts nonzero.
    b.cmul_full(x, false, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ADD, MUL, SUB};
    use mps_dfg::Levels;

    fn hist(g: &Dfg) -> (usize, usize, usize) {
        let h = g.color_histogram();
        (
            h.get(ADD.index()).copied().unwrap_or(0),
            h.get(SUB.index()).copied().unwrap_or(0),
            h.get(MUL.index()).copied().unwrap_or(0),
        )
    }

    #[test]
    fn dft2_is_one_butterfly() {
        let g = dft(2, DftStyle::Auto);
        assert_eq!(hist(&g), (2, 2, 0));
    }

    #[test]
    fn winograd3_counts() {
        let g = dft3();
        // 6 complex additions/subtractions = 12 real a/b nodes; the
        // negative constant in m1 and the j in m2 fold signs, so the
        // exact a/b split is (6, 6); 2 constant mults × 2 parts = 4 c.
        assert_eq!(hist(&g), (6, 6, 4));
        assert_eq!(g.len(), 16);
    }

    #[test]
    fn radix4_is_multiplication_free() {
        let g = dft(4, DftStyle::Auto);
        let (_, _, muls) = hist(&g);
        assert_eq!(muls, 0);
        assert_eq!(g.len(), 16, "8 complex add/sub = 16 real ops");
    }

    #[test]
    fn winograd5_counts() {
        let g = dft5();
        let (a, b, c) = hist(&g);
        assert_eq!(c, 10, "Winograd 5-point uses 10 real multiplications");
        assert_eq!(a + b, 34, "the canonical 34 real additions/subtractions");
        assert_eq!(g.len(), 44);
    }

    #[test]
    fn direct_dft_has_quadratic_growth() {
        let g5 = dft(5, DftStyle::Direct);
        let g7 = dft(7, DftStyle::Direct);
        assert!(g7.len() > g5.len());
        let (_, _, muls5) = hist(&g5);
        // Direct 5-point: 16 nontrivial twiddles × 4 mults = 64.
        assert_eq!(muls5, 64);
    }

    #[test]
    fn all_variants_are_dags_with_sensible_depth() {
        for n in 2..=8 {
            for style in [DftStyle::Auto, DftStyle::Direct] {
                let g = dft(n, style);
                let l = Levels::compute(&g);
                // dft2 is a single butterfly: depth 1.
                assert!(
                    l.critical_path_len() >= if n == 2 { 1 } else { 2 },
                    "n={n} {style:?}"
                );
                assert!(
                    l.critical_path_len() as usize <= g.len(),
                    "depth bounded by size"
                );
            }
        }
    }

    #[test]
    fn winograd5_depth_is_shallow() {
        let g = dft5();
        let l = Levels::compute(&g);
        // t(1) t5/x0(2) m(3)... longest chain: t1→t5→x0→... count: t1, t5,
        // x0|m1, s1, s2, X1 ⇒ 6 levels.
        assert_eq!(l.critical_path_len(), 6);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn dft1_rejected() {
        dft(1, DftStyle::Auto);
    }
}
