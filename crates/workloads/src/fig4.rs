//! The paper's Fig. 4: the small pattern-selection example.

use crate::{ADD, SUB};
use mps_dfg::{Dfg, DfgBuilder};

/// The 5-node example graph of the paper's Fig. 4 (used by Tables 4 and 6
/// and both §5.2 worked examples).
///
/// Structure (reconstructed from the paper's statements):
///
/// * the antichains are exactly `{a1}`, `{a2}`, `{a3}`, `{b4}`, `{b5}`,
///   `{a1,a3}`, `{a2,a3}`, `{b4,b5}` (Table 4), and
/// * "there is no antichain with color set `{a, b}`" (§5.2, the `Pdef = 1`
///   discussion), so every addition must precede every subtraction.
///
/// The unique minimal DAG with these properties (up to symmetry):
/// `a1 → a2`, `a2 → {b4, b5}`, `a3 → {b4, b5}`.
pub fn fig4() -> Dfg {
    let mut b = DfgBuilder::with_capacity(5, 5);
    let a1 = b.add_node("a1", ADD);
    let a2 = b.add_node("a2", ADD);
    let a3 = b.add_node("a3", ADD);
    let b4 = b.add_node("b4", SUB);
    let b5 = b.add_node("b5", SUB);
    b.add_edge(a1, a2).unwrap();
    b.add_edge(a2, b4).unwrap();
    b.add_edge(a2, b5).unwrap();
    b.add_edge(a3, b4).unwrap();
    b.add_edge(a3, b5).unwrap();
    b.build().expect("fig4 is a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dfg::AnalyzedDfg;

    #[test]
    fn shape() {
        let g = fig4();
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.color_set().len(), 2);
    }

    #[test]
    fn antichains_match_table4() {
        let adfg = AnalyzedDfg::new(fig4());
        let g = adfg.dfg();
        let n = |s: &str| g.find(s).unwrap();
        let r = adfg.reach();
        // The three listed size-2 antichains exist…
        assert!(r.is_antichain(&[n("a1"), n("a3")]));
        assert!(r.is_antichain(&[n("a2"), n("a3")]));
        assert!(r.is_antichain(&[n("b4"), n("b5")]));
        // …and no mixed-color pair is parallelizable (§5.2: "there is no
        // antichain with color set {a, b}").
        for a in ["a1", "a2", "a3"] {
            for b in ["b4", "b5"] {
                assert!(!r.parallelizable(n(a), n(b)), "{a} and {b} must be ordered");
            }
        }
        // a1 → a2 are ordered.
        assert!(!r.parallelizable(n("a1"), n("a2")));
    }

    #[test]
    fn no_triple_antichains() {
        let adfg = AnalyzedDfg::new(fig4());
        let g = adfg.dfg();
        let ids: Vec<_> = g.node_ids().collect();
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                for k in j + 1..ids.len() {
                    assert!(
                        !adfg.reach().is_antichain(&[ids[i], ids[j], ids[k]]),
                        "Table 4 lists no antichain of size 3"
                    );
                }
            }
        }
    }
}
