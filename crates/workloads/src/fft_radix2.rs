//! Full power-of-two FFTs by recursive radix-2 decimation in time.
//!
//! [`crate::dft`] builds the small Winograd kernels the paper evaluates;
//! this module composes them into the *N*-point FFTs a real Montium
//! application would run (N = 8…64), producing graphs an order of
//! magnitude larger with log-depth butterfly structure — the scaling
//! workload for the benches.

use crate::complexsig::{ComplexBuilder, ComplexSig};
use mps_dfg::Dfg;

/// An `n`-point radix-2 DIT FFT (`n` a power of two, `n ≥ 2`).
pub fn fft_radix2(n: usize) -> Dfg {
    assert!(
        n >= 2 && n.is_power_of_two(),
        "n must be a power of two >= 2"
    );
    let mut b = ComplexBuilder::new();
    let inputs: Vec<ComplexSig> = (0..n).map(|_| b.input()).collect();
    let _outputs = rec(&mut b, &inputs, n);
    b.build().expect("FFT graphs are valid DAGs")
}

/// Recursive decimation in time; `stride_n` is the total size at this
/// level (for twiddle classification).
fn rec(b: &mut ComplexBuilder, x: &[ComplexSig], _total: usize) -> Vec<ComplexSig> {
    let n = x.len();
    if n == 1 {
        return vec![x[0]];
    }
    let evens: Vec<ComplexSig> = x.iter().copied().step_by(2).collect();
    let odds: Vec<ComplexSig> = x.iter().copied().skip(1).step_by(2).collect();
    let e = rec(b, &evens, _total);
    let o = rec(b, &odds, _total);

    let mut out = vec![None; n];
    for k in 0..n / 2 {
        // W_n^k · o[k], folding the trivial cases.
        let t = twiddle(b, o[k], k, n);
        out[k] = Some(b.cadd(e[k], t));
        out[k + n / 2] = Some(b.csub(e[k], t));
    }
    out.into_iter().map(Option::unwrap).collect()
}

fn twiddle(b: &mut ComplexBuilder, x: ComplexSig, k: usize, n: usize) -> ComplexSig {
    if k == 0 {
        return x;
    }
    if (4 * k).is_multiple_of(n) {
        return match 4 * k / n {
            1 => x.mul_j().negate(), // W^{n/4} = −j
            2 => x.negate(),
            _ => x.mul_j(),
        };
    }
    b.cmul_full(x, false, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MUL;
    use mps_dfg::Levels;

    #[test]
    fn fft2_is_one_butterfly() {
        let g = fft_radix2(2);
        assert_eq!(g.len(), 4, "one complex add + one complex sub");
    }

    #[test]
    fn fft4_is_multiplication_free() {
        let g = fft_radix2(4);
        let h = g.color_histogram();
        assert_eq!(h.get(MUL.index()).copied().unwrap_or(0), 0);
        assert_eq!(g.len(), 16);
    }

    #[test]
    fn fft8_counts() {
        let g = fft_radix2(8);
        let h = g.color_histogram();
        // Stage twiddles: only W8^1 and W8^3 are non-trivial → 2 full
        // complex mults → 8 real muls + their 2 add/sub combiners each.
        assert_eq!(h[MUL.index()], 8);
        // 12 butterflies × (2a + 2b) + 2×(1a + 1b) from the complex mults.
        assert_eq!(g.len(), 12 * 4 + 8 + 4);
    }

    #[test]
    fn depth_is_logarithmic() {
        let d8 = Levels::compute(&fft_radix2(8)).critical_path_len();
        let d32 = Levels::compute(&fft_radix2(32)).critical_path_len();
        assert!((3..=6).contains(&d8), "got {d8}");
        assert!(d32 > d8);
        assert!(d32 <= 12, "log-depth structure, got {d32}");
    }

    #[test]
    fn size_grows_n_log_n() {
        let s8 = fft_radix2(8).len();
        let s16 = fft_radix2(16).len();
        let s32 = fft_radix2(32).len();
        assert!(s16 > 2 * s8 - 8);
        assert!(s32 > 2 * s16 - 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        fft_radix2(6);
    }
}
