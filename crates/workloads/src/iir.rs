//! IIR biquad cascade DFGs.

use crate::{ADD, MUL};
use mps_dfg::{Dfg, DfgBuilder, NodeId};

/// A cascade of direct-form-II biquad sections.
///
/// Each section computes
/// `w = x + a1·w1 + a2·w2; y = b0·w + b1·w1 + b2·w2`
/// (5 multiplications, 4 additions); the output of section `i` is the
/// input of section `i+1`, giving the long serial dependency chains that
/// make IIR filters the worst case for parallel scheduling — useful as the
/// low-parallelism end of the workload spectrum.
pub fn iir_biquad_cascade(sections: usize) -> Dfg {
    assert!(sections >= 1, "need at least one biquad section");
    let mut b = DfgBuilder::new();
    let mut carry: Option<NodeId> = None;
    for s in 0..sections {
        // Feedback products a1·w1, a2·w2 (state lives in memory: sources).
        let a1w1 = b.add_node(format!("c_s{s}_a1"), MUL);
        let a2w2 = b.add_node(format!("c_s{s}_a2"), MUL);
        // w = x + a1w1 + a2w2.
        let sum1 = b.add_node(format!("a_s{s}_w0"), ADD);
        if let Some(prev) = carry {
            b.add_edge(prev, sum1).unwrap();
        }
        b.add_edge(a1w1, sum1).unwrap();
        let w = b.add_node(format!("a_s{s}_w1"), ADD);
        b.add_edge(sum1, w).unwrap();
        b.add_edge(a2w2, w).unwrap();
        // Feedforward products.
        let b0w = b.add_node(format!("c_s{s}_b0"), MUL);
        b.add_edge(w, b0w).unwrap();
        let b1w1 = b.add_node(format!("c_s{s}_b1"), MUL);
        let b2w2 = b.add_node(format!("c_s{s}_b2"), MUL);
        // y = b0w + b1w1 + b2w2.
        let sum2 = b.add_node(format!("a_s{s}_y0"), ADD);
        b.add_edge(b0w, sum2).unwrap();
        b.add_edge(b1w1, sum2).unwrap();
        let y = b.add_node(format!("a_s{s}_y1"), ADD);
        b.add_edge(sum2, y).unwrap();
        b.add_edge(b2w2, y).unwrap();
        carry = Some(y);
    }
    b.build().expect("IIR graphs are valid DAGs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dfg::Levels;

    #[test]
    fn node_counts_per_section() {
        for sections in [1usize, 2, 5] {
            let g = iir_biquad_cascade(sections);
            assert_eq!(g.len(), sections * 9);
            let h = g.color_histogram();
            assert_eq!(h[MUL.index()], sections * 5);
            assert_eq!(h[ADD.index()], sections * 4);
        }
    }

    #[test]
    fn cascade_depth_grows_linearly() {
        let d1 = Levels::compute(&iir_biquad_cascade(1)).critical_path_len();
        let d3 = Levels::compute(&iir_biquad_cascade(3)).critical_path_len();
        // Section: a1w1 → sum1 → w → b0w → sum2 → y = 6 levels… minus the
        // source products. Cascading adds 5 per section (y feeds sum1).
        assert_eq!(d1, 6);
        assert_eq!(d3, 6 + 2 * 5);
    }

    #[test]
    fn sections_are_serially_dependent() {
        let g = iir_biquad_cascade(2);
        let adfg = mps_dfg::AnalyzedDfg::new(g);
        let y0 = adfg.dfg().find("a_s0_y1").unwrap();
        let y1 = adfg.dfg().find("a_s1_y1").unwrap();
        assert!(adfg.reach().reaches(y0, y1));
    }
}
