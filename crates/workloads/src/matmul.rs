//! Dense matrix-multiply DFGs.

use crate::{ADD, MUL};
use mps_dfg::{Dfg, DfgBuilder, NodeId};

/// `C = A·B` for `n × n` matrices: each of the `n²` output elements is `n`
/// multiplications (`c`) reduced by a balanced adder tree (`a`).
///
/// Embarrassingly wide and perfectly regular — the high-parallelism end of
/// the workload spectrum, where pattern selection matters least and the
/// throughput bound dominates.
pub fn matmul(n: usize) -> Dfg {
    assert!(n >= 1, "matrix dimension must be positive");
    let mut b = DfgBuilder::new();
    for i in 0..n {
        for j in 0..n {
            let prods: Vec<NodeId> = (0..n)
                .map(|k| b.add_node(format!("c_{i}{j}k{k}"), MUL))
                .collect();
            // Balanced reduction.
            let mut level = prods;
            let mut li = 0;
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                for (pi, pair) in level.chunks(2).enumerate() {
                    if pair.len() == 2 {
                        let a = b.add_node(format!("a_{i}{j}l{li}_{pi}"), ADD);
                        b.add_edge(pair[0], a).unwrap();
                        b.add_edge(pair[1], a).unwrap();
                        next.push(a);
                    } else {
                        next.push(pair[0]);
                    }
                }
                level = next;
                li += 1;
            }
        }
    }
    b.build().expect("matmul graphs are valid DAGs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dfg::Levels;

    #[test]
    fn node_counts() {
        for n in [1usize, 2, 3, 4] {
            let g = matmul(n);
            let h = g.color_histogram();
            assert_eq!(h[MUL.index()], n * n * n);
            if n > 1 {
                assert_eq!(h[ADD.index()], n * n * (n - 1));
            }
        }
    }

    #[test]
    fn depth_is_logarithmic() {
        let g = matmul(4);
        let l = Levels::compute(&g);
        assert_eq!(l.critical_path_len(), 1 + 2, "mult + log2(4) adds");
    }

    #[test]
    fn outputs_are_independent() {
        let g = matmul(2);
        assert_eq!(g.sinks().len(), 4);
    }
}
