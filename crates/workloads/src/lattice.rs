//! Lattice (ladder) filter DFG.
//!
//! The order-`m` lattice filter is the standard structure for adaptive
//! prediction (LPC speech coding runs one per frame). Per stage `i`:
//!
//! ```text
//! f_i = f_{i−1} + k_i · g_{i−1}
//! g_i = g_{i−1} + k_i · f_{i−1}
//! ```
//!
//! The two recurrences cross-couple, so the graph is *narrow and deep*:
//! at most two multiplies and two adds are ever ready at once, the polar
//! opposite of the FIR tap line. Pattern selection on this shape must
//! prefer small mixed patterns over wide single-color ones — a useful
//! counterweight in the cross-selector comparison.

use crate::{ADD, MUL};
use mps_dfg::{Dfg, DfgBuilder};

/// Build an order-`stages` lattice filter section for one sample.
///
/// Node colors: `c` = multiply (by the reflection coefficient `k_i`),
/// `a` = add. `4·stages` nodes, depth `2·stages`.
pub fn lattice(stages: usize) -> Dfg {
    assert!(stages >= 1, "need at least one lattice stage");
    let mut b = DfgBuilder::new();
    let mut f_prev = None; // f_0 and g_0 are graph inputs (not nodes)
    let mut g_prev = None;

    for i in 0..stages {
        let mul_f = b.add_node(format!("mf{i}"), MUL); // k_i · g_{i−1}
        let mul_g = b.add_node(format!("mg{i}"), MUL); // k_i · f_{i−1}
        if let Some(g) = g_prev {
            b.add_edge(g, mul_f).unwrap();
        }
        if let Some(f) = f_prev {
            b.add_edge(f, mul_g).unwrap();
        }
        let add_f = b.add_node(format!("af{i}"), ADD); // f_i
        let add_g = b.add_node(format!("ag{i}"), ADD); // g_i
        if let Some(f) = f_prev {
            b.add_edge(f, add_f).unwrap();
        }
        b.add_edge(mul_f, add_f).unwrap();
        if let Some(g) = g_prev {
            b.add_edge(g, add_g).unwrap();
        }
        b.add_edge(mul_g, add_g).unwrap();
        f_prev = Some(add_f);
        g_prev = Some(add_g);
    }

    b.build().expect("lattice is a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dfg::Levels;

    #[test]
    fn node_and_edge_counts() {
        for m in [1usize, 3, 8] {
            let g = lattice(m);
            assert_eq!(g.len(), 4 * m, "stages={m}");
            let h = g.color_histogram();
            assert_eq!(h[MUL.index()], 2 * m);
            assert_eq!(h[ADD.index()], 2 * m);
            // Stage 0 has only its two mul→add edges; each later stage
            // adds 2 mul→add plus 4 cross edges.
            assert_eq!(g.edge_count(), 2 + 6 * (m - 1));
        }
    }

    #[test]
    fn depth_is_two_per_stage() {
        for m in [1usize, 4, 6] {
            let g = lattice(m);
            assert_eq!(Levels::compute(&g).critical_path_len() as usize, 2 * m);
        }
    }

    #[test]
    fn narrow_width() {
        // At most two nodes of each color are ever parallel.
        let adfg = mps_dfg::AnalyzedDfg::new(lattice(5));
        let levels = adfg.levels();
        for asap in 0..levels.critical_path_len() as usize {
            let at_level = adfg
                .dfg()
                .node_ids()
                .filter(|&v| levels.asap(v) as usize == asap)
                .count();
            assert!(at_level <= 2, "level {asap} has {at_level} nodes");
        }
    }

    #[test]
    fn cross_coupling_exists() {
        // f-path and g-path must interleave: mg1 depends on af0.
        let adfg = mps_dfg::AnalyzedDfg::new(lattice(2));
        let af0 = adfg.dfg().find("af0").unwrap();
        let ag1 = adfg.dfg().find("ag1").unwrap();
        assert!(adfg.reach().reaches(af0, ag1));
    }
}
