//! Random series-parallel DAG generator.
//!
//! [`crate::random_layered_dag`] produces layered graphs whose antichains
//! all sit inside a layer — a friendly regime for span-limited
//! enumeration. Series-parallel graphs stress the opposite properties:
//! recursive composition creates antichains that *straddle* levels (big
//! spans) and long thin sections next to wide bushes. Because every SP
//! graph is built by two closed operations, tests can also predict its
//! structure exactly:
//!
//! * **series(A, B)** — every sink of `A` feeds every source of `B`;
//!   nothing in `A` is parallel to anything in `B`;
//! * **parallel(A, B)** — disjoint union; *everything* in `A` is parallel
//!   to everything in `B`.
//!
//! The generator is seeded and deterministic, and returns the composition
//! tree alongside the graph so property tests can cross-check
//! reachability against the algebra (see `integration_extensions.rs`).

use mps_dfg::{Color, Dfg, DfgBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_series_parallel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpConfig {
    /// RNG seed; the same seed always yields the same graph.
    pub seed: u64,
    /// Number of leaf nodes composed (the graph has exactly this many
    /// nodes; edges follow from the composition shape).
    pub leaves: usize,
    /// Number of distinct colors drawn uniformly for leaves.
    pub colors: u8,
    /// Percent (0..=100) of compositions that are *series*; the rest are
    /// parallel. 50 gives balanced graphs; higher = deeper.
    pub series_pct: u32,
}

impl Default for SpConfig {
    fn default() -> SpConfig {
        SpConfig {
            seed: 0,
            leaves: 24,
            colors: 3,
            series_pct: 50,
        }
    }
}

/// One component during composition: its sources and sinks.
struct Part {
    sources: Vec<NodeId>,
    sinks: Vec<NodeId>,
}

/// Generate a random series-parallel DAG.
///
/// Starts from `leaves` single-node components and repeatedly composes
/// two random components in series (all sinks → all sources) or parallel
/// (disjoint union) until one remains.
pub fn random_series_parallel(cfg: &SpConfig) -> Dfg {
    assert!(cfg.leaves >= 1, "need at least one leaf");
    assert!(cfg.colors >= 1, "need at least one color");
    assert!(cfg.series_pct <= 100);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = DfgBuilder::with_capacity(cfg.leaves, cfg.leaves * 2);

    let mut parts: Vec<Part> = (0..cfg.leaves)
        .map(|i| {
            let color = Color(rng.gen_range(0..cfg.colors));
            let id = b.add_node(format!("n{i}"), color);
            Part {
                sources: vec![id],
                sinks: vec![id],
            }
        })
        .collect();

    while parts.len() > 1 {
        // Pick two distinct random components.
        let i = rng.gen_range(0..parts.len());
        let first = parts.swap_remove(i);
        let j = rng.gen_range(0..parts.len());
        let second = parts.swap_remove(j);

        let combined = if rng.gen_range(0..100u32) < cfg.series_pct {
            // Series: first → second.
            for &u in &first.sinks {
                for &v in &second.sources {
                    b.add_edge(u, v).expect("series edges are fresh");
                }
            }
            Part {
                sources: first.sources,
                sinks: second.sinks,
            }
        } else {
            // Parallel: merge interfaces.
            let mut sources = first.sources;
            sources.extend(second.sources);
            let mut sinks = first.sinks;
            sinks.extend(second.sinks);
            Part { sources, sinks }
        };
        parts.push(combined);
    }

    b.build().expect("series-parallel composition is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dfg::{AnalyzedDfg, Levels};

    #[test]
    fn node_count_is_exactly_leaves() {
        for leaves in [1usize, 2, 10, 40] {
            let g = random_series_parallel(&SpConfig {
                leaves,
                seed: 7,
                ..Default::default()
            });
            assert_eq!(g.len(), leaves);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_series_parallel(&SpConfig::default());
        let b = random_series_parallel(&SpConfig::default());
        assert_eq!(a, b);
        let c = random_series_parallel(&SpConfig {
            seed: 99,
            ..Default::default()
        });
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn all_series_is_a_chain() {
        let g = random_series_parallel(&SpConfig {
            leaves: 12,
            series_pct: 100,
            seed: 1,
            ..Default::default()
        });
        assert_eq!(Levels::compute(&g).critical_path_len(), 12);
        assert_eq!(g.edge_count(), 11);
    }

    #[test]
    fn all_parallel_is_edgeless() {
        let g = random_series_parallel(&SpConfig {
            leaves: 12,
            series_pct: 0,
            seed: 1,
            ..Default::default()
        });
        assert_eq!(g.edge_count(), 0);
        assert_eq!(Levels::compute(&g).critical_path_len(), 1);
    }

    #[test]
    fn mixed_graphs_have_both_depth_and_width() {
        let g = random_series_parallel(&SpConfig {
            leaves: 30,
            seed: 5,
            ..Default::default()
        });
        let adfg = AnalyzedDfg::new(g);
        let depth = adfg.levels().critical_path_len() as usize;
        assert!(depth > 1 && depth < 30, "depth = {depth}");
    }

    #[test]
    fn colors_stay_in_range() {
        let g = random_series_parallel(&SpConfig {
            leaves: 20,
            colors: 2,
            seed: 3,
            ..Default::default()
        });
        for id in g.node_ids() {
            assert!(g.color(id).0 < 2);
        }
    }
}
