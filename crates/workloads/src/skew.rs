//! Skewed enumeration stress graphs: `star` and `broom`.
//!
//! Real kernels hand the antichain enumerator heavily skewed root trees —
//! a broadcast constant or a reduction fan-in is parallel to most of the
//! graph, so one root owns a search tree orders of magnitude larger than
//! the rest and a one-root-per-work-unit parallel build serializes on it.
//! These two generators distill that shape to its essence, giving the
//! depth-1 branch splitter something to chew on in tests, benches, and the
//! CI smoke pins:
//!
//! * [`star`] — one hub parallel to `n` mutually parallel leaves feeding a
//!   reduction sink: the hub *and* the early leaves own combinatorially
//!   large trees (the worst case for root-granular scheduling);
//! * [`broom`] — one hub parallel to an `n`-node chain: the hub owns
//!   `n + 1` of the `2n + 1` antichains while every other root is trivial
//!   (the "1 huge + many tiny" work-list shape).

use crate::{ADD, MUL, SUB};
use mps_dfg::{Dfg, DfgBuilder};

/// The `star<N>` workload: a hub node parallel to `leaves` mutually
/// parallel leaf nodes, all feeding one reduction sink.
///
/// Node 0 is the hub (a broadcast constant: no edges, so it is
/// parallelizable with every other node). Nodes `1..=leaves` are the
/// leaves (no edges among them), and the last node is the sink with one
/// incoming edge per leaf — making the sink sequential to every leaf and
/// parallel only to the hub. Leaves alternate between addition and
/// subtraction colors so classification sees mixed bags.
///
/// With capacity `C` and no span limit the antichain count is
/// `Σ_{s=1..C} C(n,s)  +  1 + Σ_{s=1..C-1} C(n,s)  +  2`
/// (leaf-only sets; hub alone and hub+leaf sets; sink and {hub, sink}) —
/// combinatorially dominated by the hub and the first few leaf roots,
/// which is exactly the skew the branch splitter targets.
///
/// Panics if `leaves == 0`.
pub fn star(leaves: usize) -> Dfg {
    assert!(leaves >= 1, "star needs at least one leaf");
    let mut b = DfgBuilder::with_capacity(leaves + 2, leaves);
    b.add_node("hub", MUL);
    let leaf_ids: Vec<_> = (0..leaves)
        .map(|i| b.add_node(format!("leaf{i}"), if i % 2 == 0 { ADD } else { SUB }))
        .collect();
    let sink = b.add_node("sink", ADD);
    for leaf in leaf_ids {
        b.add_edge(leaf, sink).unwrap();
    }
    b.build().expect("star is a valid DAG")
}

/// The `broom<N>` workload: a hub node parallel to an `n`-node chain.
///
/// Node 0 is the hub (no edges); nodes `1..=n` form a dependency chain.
/// Every antichain is a singleton or a `{hub, chain node}` pair, so with
/// capacity ≥ 2 the count is exactly `2n + 1` — but the hub root owns
/// `n + 1` of those while every chain root owns exactly one. At the
/// depth-1 estimate the hub weighs `n` and everything else weighs 0: the
/// sharpest possible test that the splitter (a) finds the hub and (b)
/// leaves the trivial roots alone.
///
/// Panics if `n == 0`.
pub fn broom(n: usize) -> Dfg {
    assert!(n >= 1, "broom needs at least one chain node");
    let mut b = DfgBuilder::with_capacity(n + 1, n.saturating_sub(1));
    b.add_node("hub", MUL);
    let chain: Vec<_> = (0..n).map(|i| b.add_node(format!("c{i}"), ADD)).collect();
    for w in chain.windows(2) {
        b.add_edge(w[0], w[1]).unwrap();
    }
    b.build().expect("broom is a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dfg::AnalyzedDfg;

    fn binom(n: u64, k: u64) -> u64 {
        if k > n {
            return 0;
        }
        (1..=k).fold(1u64, |acc, i| acc * (n - i + 1) / i)
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.len(), 8);
        let adfg = AnalyzedDfg::new(g);
        let hub = adfg.dfg().find("hub").unwrap();
        let sink = adfg.dfg().find("sink").unwrap();
        // Hub is parallel to everything; sink only to the hub.
        for n in adfg.dfg().node_ids() {
            if n != hub {
                assert!(adfg.reach().parallelizable(hub, n));
            }
        }
        assert!(adfg.reach().parallelizable(hub, sink));
        let leaf0 = adfg.dfg().find("leaf0").unwrap();
        assert!(!adfg.reach().parallelizable(leaf0, sink));
    }

    #[test]
    fn star_antichain_count_formula() {
        for leaves in [1usize, 4, 9] {
            let adfg = AnalyzedDfg::new(star(leaves));
            let n = leaves as u64;
            let cap = 5u64;
            let leaf_sets: u64 = (1..=cap).map(|s| binom(n, s)).sum();
            let hub_sets: u64 = 1 + (1..=cap - 1).map(|s| binom(n, s)).sum::<u64>();
            let expect = leaf_sets + hub_sets + 2; // + {sink}, {hub, sink}
            let got = mps_patterns_count(&adfg);
            assert_eq!(got, expect, "leaves={leaves}");
        }
    }

    #[test]
    fn broom_antichain_count_is_2n_plus_1() {
        for n in [1usize, 5, 12] {
            let adfg = AnalyzedDfg::new(broom(n));
            assert_eq!(mps_patterns_count(&adfg), 2 * n as u64 + 1, "n={n}");
        }
    }

    /// Count antichains at the Montium defaults without depending on the
    /// patterns crate (workloads sits below it): brute force over node
    /// subsets, which is fine at test sizes.
    fn mps_patterns_count(adfg: &AnalyzedDfg) -> u64 {
        let n = adfg.len();
        assert!(n <= 16, "brute force only for small test graphs");
        let ids: Vec<_> = adfg.dfg().node_ids().collect();
        let mut count = 0u64;
        for mask in 1u64..(1 << n) {
            if mask.count_ones() > 5 {
                continue;
            }
            let set: Vec<_> = (0..n)
                .filter(|&i| mask >> i & 1 == 1)
                .map(|i| ids[i])
                .collect();
            if adfg.reach().is_antichain(&set) {
                count += 1;
            }
        }
        count
    }

    #[test]
    fn broom_shape() {
        let g = broom(4);
        assert_eq!(g.len(), 5);
        let adfg = AnalyzedDfg::new(g);
        let hub = adfg.dfg().find("hub").unwrap();
        for n in adfg.dfg().node_ids() {
            if n != hub {
                assert!(adfg.reach().parallelizable(hub, n));
            }
        }
        // Chain nodes are mutually sequential.
        let c0 = adfg.dfg().find("c0").unwrap();
        let c3 = adfg.dfg().find("c3").unwrap();
        assert!(!adfg.reach().parallelizable(c0, c3));
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn star_zero_rejected() {
        star(0);
    }

    #[test]
    #[should_panic(expected = "at least one chain node")]
    fn broom_zero_rejected() {
        broom(0);
    }
}
