//! Signed-signal bookkeeping for building arithmetic DFGs.
//!
//! Fast-transform algorithms (Winograd DFTs, DCT factorizations) are full
//! of terms like `−sin(u)·v` and `m3 − m4` where negations should fold
//! into neighbouring operations instead of materializing as extra nodes —
//! real datapaths fold them into the following adder (turning it into a
//! subtractor) or into the multiplier constant. [`Sig`] carries a node
//! reference plus a sign; [`ComplexBuilder`] implements complex arithmetic
//! over signed signals, emitting exactly one `a`/`b`/`c` node per real
//! operation.

use crate::{ADD, MUL, SUB};
use mps_dfg::{Dfg, DfgBuilder, DfgError, NodeId};

/// A real-valued signal: a node plus a sign to be folded into its consumer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sig {
    /// Producing node.
    pub node: NodeId,
    /// `true` if the consumer should read `−value`.
    pub neg: bool,
}

impl Sig {
    /// A positive signal.
    pub fn pos(node: NodeId) -> Sig {
        Sig { node, neg: false }
    }

    /// The negated signal (no node is emitted; the sign folds downstream).
    pub fn negate(self) -> Sig {
        Sig {
            node: self.node,
            neg: !self.neg,
        }
    }
}

/// A complex-valued signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ComplexSig {
    /// Real part.
    pub re: Sig,
    /// Imaginary part.
    pub im: Sig,
}

impl ComplexSig {
    /// Negate both parts (sign-fold, no nodes emitted).
    pub fn negate(self) -> ComplexSig {
        ComplexSig {
            re: self.re.negate(),
            im: self.im.negate(),
        }
    }

    /// Multiply by `j` (swap parts, negate the new real part); emits no
    /// nodes.
    pub fn mul_j(self) -> ComplexSig {
        ComplexSig {
            re: self.im.negate(),
            im: self.re,
        }
    }
}

/// Builder for complex-arithmetic DFGs over signed signals.
///
/// Wraps a [`DfgBuilder`]; each real addition/subtraction/multiplication
/// becomes one colored node. Signs are normalized so that every emitted
/// node computes a positive quantity where possible: `(−x) + (−y)` becomes
/// `−(x + y)` (one `a` node with a negative output sign) rather than two
/// negations.
pub struct ComplexBuilder {
    builder: DfgBuilder,
    counter: usize,
}

impl ComplexBuilder {
    /// Start with an empty graph.
    pub fn new() -> ComplexBuilder {
        ComplexBuilder {
            builder: DfgBuilder::new(),
            counter: 0,
        }
    }

    /// Introduce a primary input as a complex signal (emits no nodes until
    /// used; inputs are represented by source nodes of color `a`? No —
    /// inputs live in memory on the Montium, so they are *not* DFG nodes;
    /// the first arithmetic touching them becomes a source).
    ///
    /// Implementation detail: we still need stable `Sig`s for inputs, so an
    /// input is a pair of phantom signals resolved lazily; callers obtain
    /// them via [`ComplexBuilder::input`], and the first consuming
    /// operation simply has fewer in-graph predecessors.
    pub fn input(&mut self) -> ComplexSig {
        // Inputs are phantom: a reserved id space marked by u32::MAX - k
        // would complicate edge creation, so instead inputs are represented
        // as *absent* predecessors: the signal's node is a sentinel that
        // add_edge skips. See `Sig::INPUT`.
        ComplexSig {
            re: Sig {
                node: INPUT_SENTINEL,
                neg: false,
            },
            im: Sig {
                node: INPUT_SENTINEL,
                neg: false,
            },
        }
    }

    fn fresh_name(&mut self, prefix: char) -> String {
        self.counter += 1;
        format!("{prefix}{}", self.counter)
    }

    fn emit(
        &mut self,
        color: mps_dfg::Color,
        prefix: char,
        operands: &[Sig],
    ) -> Result<NodeId, DfgError> {
        let name = self.fresh_name(prefix);
        let id = self.builder.add_node(name, color);
        for s in operands {
            if s.node != INPUT_SENTINEL {
                self.builder.add_edge(s.node, id)?;
            }
        }
        Ok(id)
    }

    /// Real addition `x + y`, sign-folded:
    /// * `x + y` → `a` node;
    /// * `x + (−y)` → `b` node computing `x − y`;
    /// * `(−x) + y` → `b` node computing `y − x`;
    /// * `(−x) + (−y)` → `a` node with negated output.
    pub fn add(&mut self, x: Sig, y: Sig) -> Sig {
        let (color, prefix, neg) = match (x.neg, y.neg) {
            (false, false) => (ADD, 'a', false),
            (true, true) => (ADD, 'a', true),
            _ => (SUB, 'b', false),
        };
        let id = self.emit(color, prefix, &[x, y]).expect("valid operands");
        Sig { node: id, neg }
    }

    /// Real subtraction `x − y` (= `x + (−y)`).
    pub fn sub(&mut self, x: Sig, y: Sig) -> Sig {
        self.add(x, y.negate())
    }

    /// Real multiplication by a compile-time constant: one `c` node; the
    /// constant's sign folds into the output sign.
    pub fn mul_const(&mut self, x: Sig, const_negative: bool) -> Sig {
        let id = self.emit(MUL, 'c', &[x]).expect("valid operand");
        Sig {
            node: id,
            neg: x.neg ^ const_negative,
        }
    }

    /// Complex addition: two real ops.
    pub fn cadd(&mut self, x: ComplexSig, y: ComplexSig) -> ComplexSig {
        ComplexSig {
            re: self.add(x.re, y.re),
            im: self.add(x.im, y.im),
        }
    }

    /// Complex subtraction: two real ops.
    pub fn csub(&mut self, x: ComplexSig, y: ComplexSig) -> ComplexSig {
        ComplexSig {
            re: self.sub(x.re, y.re),
            im: self.sub(x.im, y.im),
        }
    }

    /// Multiply by a *real* constant `k` (`|k|` folded into the node,
    /// `sign(k)` into the signal): two `c` nodes.
    pub fn cmul_real(&mut self, x: ComplexSig, negative: bool) -> ComplexSig {
        ComplexSig {
            re: self.mul_const(x.re, negative),
            im: self.mul_const(x.im, negative),
        }
    }

    /// Multiply by an *imaginary* constant `j·k`: two `c` nodes plus a
    /// part swap (`(a+bj)·jk = −kb + kaj`).
    pub fn cmul_imag(&mut self, x: ComplexSig, negative: bool) -> ComplexSig {
        let scaled = self.cmul_real(x, negative);
        scaled.mul_j()
    }

    /// Multiply by a general complex constant `(kr + j·ki)`: the classic
    /// 4-multiply form — 4 `c` nodes, 1 `a`/`b` pair.
    ///
    /// `re = kr·xr − ki·xi`, `im = kr·xi + ki·xr`; constant signs are given
    /// as `(kr_negative, ki_negative)`.
    pub fn cmul_full(&mut self, x: ComplexSig, kr_neg: bool, ki_neg: bool) -> ComplexSig {
        let rr = self.mul_const(x.re, kr_neg);
        let ii = self.mul_const(x.im, ki_neg);
        let ri = self.mul_const(x.im, kr_neg);
        let ir = self.mul_const(x.re, ki_neg);
        ComplexSig {
            re: self.sub(rr, ii),
            im: self.add(ri, ir),
        }
    }

    /// Finish: validate and freeze the graph.
    pub fn build(self) -> Result<Dfg, DfgError> {
        self.builder.build()
    }

    /// Nodes emitted so far.
    pub fn node_count(&self) -> usize {
        self.builder.node_count()
    }
}

impl Default for ComplexBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Sentinel for primary inputs (values living in Montium memories, not in
/// the DFG). `add_edge` is skipped for operands carrying it.
const INPUT_SENTINEL: NodeId = NodeId(u32::MAX);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_of_two_positives_is_an_a_node() {
        let mut b = ComplexBuilder::new();
        let x = b.input();
        let y = b.input();
        let s = b.add(x.re, y.re);
        assert!(!s.neg);
        let g = b.build().unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.color(s.node), ADD);
    }

    #[test]
    fn sign_folding_turns_adds_into_subs() {
        let mut b = ComplexBuilder::new();
        let x = b.input().re;
        let y = b.input().re;
        // x + (−y) must become a subtraction node, positive output.
        let s = b.add(x, y.negate());
        assert!(!s.neg);
        // (−x) + (−y) must stay an addition, negative output.
        let t = b.add(x.negate(), y.negate());
        assert!(t.neg);
        let g = b.build().unwrap();
        assert_eq!(g.color(s.node), SUB);
        assert_eq!(g.color(t.node), ADD);
    }

    #[test]
    fn mul_j_swaps_without_nodes() {
        let mut b = ComplexBuilder::new();
        let x = b.input();
        let first = b.add(x.re, x.im); // materialize something
        let v = ComplexSig {
            re: first,
            im: first,
        };
        let before = b.node_count();
        let j = v.mul_j();
        assert_eq!(b.node_count(), before, "mul_j is free");
        assert!(j.re.neg);
        assert!(!j.im.neg);
    }

    #[test]
    fn cmul_full_emits_4c_1a_1b() {
        let mut b = ComplexBuilder::new();
        let x = b.input();
        let seed = b.cadd(x, x); // 2 'a' sources
        let _ = b.cmul_full(seed, false, false);
        let g = b.build().unwrap();
        let hist = g.color_histogram();
        assert_eq!(hist[MUL.index()], 4);
        assert_eq!(hist[ADD.index()], 2 + 1);
        assert_eq!(hist[SUB.index()], 1);
    }

    #[test]
    fn dependencies_are_recorded() {
        let mut b = ComplexBuilder::new();
        let x = b.input();
        let u = b.cadd(x, x);
        let v = b.cmul_real(u, false);
        let g = b.build().unwrap();
        assert!(g.succs(u.re.node).contains(&v.re.node));
    }
}
