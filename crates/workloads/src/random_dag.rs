//! Seeded random layered DAGs for property tests and scaling benches.

use mps_dfg::{Color, Dfg, DfgBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the random layered DAG generator.
#[derive(Clone, Debug, PartialEq)]
pub struct RandomDagConfig {
    /// Number of layers (≥ 1). Edges only go from earlier to later layers.
    pub layers: usize,
    /// Inclusive range of nodes per layer.
    pub width: (usize, usize),
    /// Probability of an edge from a node to a node in the *next* layer.
    pub edge_prob: f64,
    /// Probability of a long-range edge (to any later layer).
    pub long_edge_prob: f64,
    /// Number of distinct colors (uniform over `Color(0..colors)`).
    pub colors: u8,
    /// RNG seed — equal configs generate equal graphs.
    pub seed: u64,
}

impl Default for RandomDagConfig {
    fn default() -> Self {
        RandomDagConfig {
            layers: 6,
            width: (3, 8),
            edge_prob: 0.35,
            long_edge_prob: 0.05,
            colors: 3,
            seed: 0xC0FFEE,
        }
    }
}

/// Generate a random layered DAG.
///
/// Every non-first-layer node receives at least one predecessor from the
/// previous layer, so depth equals the layer count and the graph has no
/// spurious sources — the shape profile of real DSP kernels.
pub fn random_layered_dag(cfg: &RandomDagConfig) -> Dfg {
    assert!(cfg.layers >= 1, "need at least one layer");
    assert!(
        cfg.width.0 >= 1 && cfg.width.0 <= cfg.width.1,
        "bad width range"
    );
    assert!(cfg.colors >= 1, "need at least one color");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = DfgBuilder::new();
    let mut layers: Vec<Vec<NodeId>> = Vec::with_capacity(cfg.layers);

    for li in 0..cfg.layers {
        let w = rng.gen_range(cfg.width.0..=cfg.width.1);
        let layer: Vec<NodeId> = (0..w)
            .map(|i| {
                let color = Color(rng.gen_range(0..cfg.colors));
                b.add_node(format!("n{li}_{i}"), color)
            })
            .collect();
        layers.push(layer);
    }

    for li in 1..cfg.layers {
        // Split the borrow: previous layers are read-only.
        let (prev_part, cur_part) = layers.split_at(li);
        let prev = &prev_part[li - 1];
        for &v in &cur_part[0] {
            let mut has_pred = false;
            for &u in prev {
                if rng.gen_bool(cfg.edge_prob) {
                    b.add_edge(u, v).unwrap();
                    has_pred = true;
                }
            }
            if !has_pred {
                let u = prev[rng.gen_range(0..prev.len())];
                b.add_edge(u, v).unwrap();
            }
            // Long-range edges from any earlier layer but the previous.
            for earlier in prev_part.iter().take(li.saturating_sub(1)) {
                for &u in earlier {
                    if rng.gen_bool(cfg.long_edge_prob) {
                        b.add_edge(u, v).unwrap();
                    }
                }
            }
        }
    }

    b.build()
        .expect("layered construction cannot create cycles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dfg::Levels;

    #[test]
    fn deterministic_for_equal_seeds() {
        let cfg = RandomDagConfig::default();
        let a = random_layered_dag(&cfg);
        let b = random_layered_dag(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_layered_dag(&RandomDagConfig::default());
        let b = random_layered_dag(&RandomDagConfig {
            seed: 999,
            ..Default::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn depth_equals_layer_count() {
        let cfg = RandomDagConfig {
            layers: 7,
            ..Default::default()
        };
        let g = random_layered_dag(&cfg);
        assert_eq!(Levels::compute(&g).critical_path_len(), 7);
    }

    #[test]
    fn colors_within_range() {
        let cfg = RandomDagConfig {
            colors: 2,
            ..Default::default()
        };
        let g = random_layered_dag(&cfg);
        for n in g.node_ids() {
            assert!(g.color(n).0 < 2);
        }
    }

    #[test]
    fn single_layer_has_no_edges() {
        let cfg = RandomDagConfig {
            layers: 1,
            ..Default::default()
        };
        let g = random_layered_dag(&cfg);
        assert_eq!(g.edge_count(), 0);
    }
}
