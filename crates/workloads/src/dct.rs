//! 8-point DCT-II DFG (even/odd butterfly factorization).

use crate::complexsig::{ComplexBuilder, Sig};
use mps_dfg::Dfg;

/// An 8-point DCT-II using the first butterfly stage of the classic
/// even/odd factorization:
///
/// * stage 1: `s_i = x_i + x_{7−i}`, `d_i = x_i − x_{7−i}` (4 adds,
///   4 subs);
/// * even outputs from a 4-point DCT of `s` (recursively butterflied);
/// * odd outputs as 4×4 constant-matrix products of `d` (rotations kept as
///   plain multiply-accumulate).
///
/// Mixes `a`/`b`/`c` colors with both tree and butterfly structure —
/// a denser color mix than the DFTs, exercising pattern selection with
/// balanced per-color demand.
pub fn dct8() -> Dfg {
    let mut b = ComplexBuilder::new();
    // Real-valued: use only the `re` lane of inputs.
    let x: Vec<Sig> = (0..8).map(|_| b.input().re).collect();

    // Stage 1 butterflies.
    let s: Vec<Sig> = (0..4).map(|i| b.add(x[i], x[7 - i])).collect();
    let d: Vec<Sig> = (0..4).map(|i| b.sub(x[i], x[7 - i])).collect();

    // Even half: 4-point DCT of s via another butterfly stage.
    let ss0 = b.add(s[0], s[3]);
    let ss1 = b.add(s[1], s[2]);
    let sd0 = b.sub(s[0], s[3]);
    let sd1 = b.sub(s[1], s[2]);
    // X0 = c·(ss0+ss1), X4 = c·(ss0−ss1).
    let e0 = b.add(ss0, ss1);
    let e1 = b.sub(ss0, ss1);
    let _x0 = b.mul_const(e0, false);
    let _x4 = b.mul_const(e1, false);
    // X2, X6: rotations of (sd0, sd1): each 2 products + 1 add/sub.
    let p0 = b.mul_const(sd0, false);
    let p1 = b.mul_const(sd1, false);
    let p2 = b.mul_const(sd0, false);
    let p3 = b.mul_const(sd1, false);
    let _x2 = b.add(p0, p1);
    let _x6 = b.sub(p2, p3);

    // Odd half: each output X_{2k+1} = Σ_i k_{ki}·d_i (4 products + adder
    // tree of 3).
    for _k in 0..4 {
        let prods: Vec<Sig> = d.iter().map(|&di| b.mul_const(di, false)).collect();
        let t0 = b.add(prods[0], prods[1]);
        let t1 = b.add(prods[2], prods[3]);
        let _xo = b.add(t0, t1);
    }

    b.build().expect("DCT graphs are valid DAGs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ADD, MUL, SUB};
    use mps_dfg::Levels;

    #[test]
    fn node_counts() {
        let g = dct8();
        let h = g.color_histogram();
        // adds: 4 (stage1) + 2 (ss) + 1 (e0) + 1 (X2) + 4×3 (odd trees) = 20
        assert_eq!(h[ADD.index()], 20);
        // subs: 4 (stage1) + 2 (sd) + 1 (e1) + 1 (X6) = 8
        assert_eq!(h[SUB.index()], 8);
        // muls: 2 (X0,X4) + 4 (X2,X6 rotations) + 16 (odd) = 22
        assert_eq!(h[MUL.index()], 22);
        assert_eq!(g.len(), 50);
    }

    #[test]
    fn depth() {
        let g = dct8();
        let l = Levels::compute(&g);
        // stage1(1) → ss(2) → e0(3) → X0(4); odd: d(1) → prod(2) → t(3) →
        // X(4). Longest: stage1 → ss → sd? sd(2) → p(3) → X2(4).
        assert_eq!(l.critical_path_len(), 4);
    }

    #[test]
    fn eight_outputs() {
        let g = dct8();
        assert_eq!(g.sinks().len(), 8);
    }
}
