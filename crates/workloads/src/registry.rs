//! Name-based workload lookup for the CLI and benches.

use crate::{
    broom, cholesky, conv2d, cordic, dct8, dft, fft_radix2, fig2, fig4, fir, horner,
    iir_biquad_cascade, lattice, matmul, random_layered_dag, sobel, star, AdderShape, DftStyle,
    RandomDagConfig,
};
use mps_dfg::Dfg;

/// The names [`by_name`] understands.
pub fn workload_names() -> Vec<&'static str> {
    vec![
        "fig2",
        "fig4",
        "dft3",
        "dft5",
        "dft<N>",
        "dft<N>-direct",
        "fir<T>",
        "fir<T>-chain",
        "iir<S>",
        "dct8",
        "matmul<N>",
        "fft<N>",
        "conv<K>",
        "horner<D>",
        "cholesky<N>",
        "lattice<M>",
        "cordic<I>",
        "sobel<P>",
        "star<N>",
        "broom<N>",
        "random<SEED>",
    ]
}

/// Build a workload by name. Parameterized names embed their parameter,
/// e.g. `dft5`, `fir16`, `fir16-chain`, `iir4`, `matmul4`, `random42`,
/// `dft8-direct`.
pub fn by_name(name: &str) -> Option<Dfg> {
    match name {
        "fig2" => return Some(fig2()),
        "fig4" => return Some(fig4()),
        "dct8" => return Some(dct8()),
        _ => {}
    }
    if let Some(rest) = name.strip_prefix("dft") {
        let (num, style) = match rest.strip_suffix("-direct") {
            Some(n) => (n, DftStyle::Direct),
            None => (rest, DftStyle::Auto),
        };
        let n: usize = num.parse().ok()?;
        if n < 2 {
            return None;
        }
        return Some(dft(n, style));
    }
    if let Some(rest) = name.strip_prefix("fir") {
        let (num, shape) = match rest.strip_suffix("-chain") {
            Some(n) => (n, AdderShape::Chain),
            None => (rest, AdderShape::Tree),
        };
        let taps: usize = num.parse().ok()?;
        if taps < 1 {
            return None;
        }
        return Some(fir(taps, 1, shape));
    }
    if let Some(rest) = name.strip_prefix("iir") {
        let sections: usize = rest.parse().ok()?;
        if sections < 1 {
            return None;
        }
        return Some(iir_biquad_cascade(sections));
    }
    if let Some(rest) = name.strip_prefix("fft") {
        let n: usize = rest.parse().ok()?;
        if n < 2 || !n.is_power_of_two() {
            return None;
        }
        return Some(fft_radix2(n));
    }
    if let Some(rest) = name.strip_prefix("conv") {
        let k: usize = rest.parse().ok()?;
        if k < 1 {
            return None;
        }
        return Some(conv2d(k, 2, 2));
    }
    if let Some(rest) = name.strip_prefix("horner") {
        let d: usize = rest.parse().ok()?;
        if d < 1 {
            return None;
        }
        return Some(horner(d, 4));
    }
    if let Some(rest) = name.strip_prefix("matmul") {
        let n: usize = rest.parse().ok()?;
        if n < 1 {
            return None;
        }
        return Some(matmul(n));
    }
    if let Some(rest) = name.strip_prefix("cholesky") {
        let n: usize = rest.parse().ok()?;
        if n < 1 {
            return None;
        }
        return Some(cholesky(n));
    }
    if let Some(rest) = name.strip_prefix("lattice") {
        let m: usize = rest.parse().ok()?;
        if m < 1 {
            return None;
        }
        return Some(lattice(m));
    }
    if let Some(rest) = name.strip_prefix("cordic") {
        let it: usize = rest.parse().ok()?;
        if it < 1 {
            return None;
        }
        return Some(cordic(it));
    }
    if let Some(rest) = name.strip_prefix("sobel") {
        let px: usize = rest.parse().ok()?;
        if px < 1 {
            return None;
        }
        return Some(sobel(px));
    }
    if let Some(rest) = name.strip_prefix("star") {
        let leaves: usize = rest.parse().ok()?;
        if leaves < 1 {
            return None;
        }
        return Some(star(leaves));
    }
    if let Some(rest) = name.strip_prefix("broom") {
        let n: usize = rest.parse().ok()?;
        if n < 1 {
            return None;
        }
        return Some(broom(n));
    }
    if let Some(rest) = name.strip_prefix("random") {
        let seed: u64 = rest.parse().ok()?;
        return Some(random_layered_dag(&RandomDagConfig {
            seed,
            ..Default::default()
        }));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_names_resolve() {
        for name in [
            "fig2",
            "fig4",
            "dft3",
            "dft5",
            "dct8",
            "fir8",
            "fir8-chain",
            "iir3",
            "matmul3",
            "random7",
            "dft6-direct",
            "fft8",
            "fft16",
            "conv3",
            "horner5",
            "cholesky4",
            "lattice6",
            "cordic8",
            "sobel4",
            "star16",
            "broom64",
        ] {
            assert!(by_name(name).is_some(), "{name} must resolve");
        }
    }

    #[test]
    fn bad_names_do_not_resolve() {
        for name in [
            "",
            "nope",
            "dft1",
            "dftx",
            "fir0",
            "matmul0",
            "randomx",
            "fft6",
            "fft1",
            "conv0",
            "horner0",
            "cholesky0",
            "lattice0",
            "cordic0",
            "sobel0",
            "sobelx",
            "star0",
            "starx",
            "broom0",
            "broomy",
        ] {
            assert!(by_name(name).is_none(), "{name} must not resolve");
        }
    }

    #[test]
    fn names_list_is_nonempty() {
        assert!(workload_names().len() >= 10);
    }
}
