//! 2-D convolution (image filtering) DFGs.

use crate::{ADD, MUL};
use mps_dfg::{Dfg, DfgBuilder, NodeId};

/// A `k × k` convolution applied to an `out_h × out_w` output tile: each
/// output pixel is `k²` multiplications reduced by a balanced adder tree.
/// Pixels are independent, so the graph is `out_h · out_w` replicas of a
/// multiply-accumulate cone — wide, multiplication-heavy, and the typical
/// "streaming DSP" shape the Montium targets.
pub fn conv2d(k: usize, out_h: usize, out_w: usize) -> Dfg {
    assert!(k >= 1, "kernel must be at least 1x1");
    assert!(out_h >= 1 && out_w >= 1, "output tile must be non-empty");
    let mut b = DfgBuilder::new();
    for y in 0..out_h {
        for x in 0..out_w {
            let taps: Vec<NodeId> = (0..k * k)
                .map(|t| b.add_node(format!("c_y{y}x{x}t{t}"), MUL))
                .collect();
            let mut level = taps;
            let mut li = 0;
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                for (pi, pair) in level.chunks(2).enumerate() {
                    if pair.len() == 2 {
                        let a = b.add_node(format!("a_y{y}x{x}l{li}_{pi}"), ADD);
                        b.add_edge(pair[0], a).unwrap();
                        b.add_edge(pair[1], a).unwrap();
                        next.push(a);
                    } else {
                        next.push(pair[0]);
                    }
                }
                level = next;
                li += 1;
            }
        }
    }
    b.build().expect("conv graphs are valid DAGs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dfg::Levels;

    #[test]
    fn node_counts() {
        let g = conv2d(3, 2, 2);
        let h = g.color_histogram();
        assert_eq!(h[MUL.index()], 4 * 9);
        assert_eq!(h[ADD.index()], 4 * 8, "k²−1 adds per pixel");
    }

    #[test]
    fn pixels_are_independent() {
        let g = conv2d(3, 1, 4);
        assert_eq!(g.sinks().len(), 4);
        let depth = Levels::compute(&g).critical_path_len();
        // 9 products → tree depth ceil(log2 9) = 4, plus the product: 5.
        assert_eq!(depth, 5);
    }

    #[test]
    fn one_by_one_kernel_is_a_multiply() {
        let g = conv2d(1, 2, 2);
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 0);
    }
}
