//! DFG workload generators for the multi-pattern scheduling evaluation.
//!
//! Contains the two graphs printed in the paper —
//!
//! * [`fig2`] — the 24-node 3-point DFT of Fig. 2, reverse-engineered so
//!   that its ASAP/ALAP/Height table *is* the paper's Table 1 and the
//!   multi-pattern scheduler's trace *is* Table 2,
//! * [`fig4`] — the 5-node pattern-selection example of Fig. 4 (Tables 4
//!   and 6),
//!
//! — plus parameterized generators for the broader evaluation: Winograd
//! and direct N-point DFTs ([`dft`], giving the paper's 5DFT), FIR filters,
//! IIR biquad cascades, an 8-point DCT-II, dense matrix multiply, and
//! seeded random layered DAGs.
//!
//! Color convention (the paper's): `a` = addition, `b` = subtraction,
//! `c` = multiplication.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cholesky;
mod complexsig;
mod conv2d;
mod cordic;
mod dct;
mod dft;
mod fabric_sweep;
mod fft_radix2;
mod fig2;
mod fig4;
mod fir;
mod horner;
mod iir;
mod lattice;
mod matmul;
mod random_dag;
mod registry;
mod series_parallel;
mod skew;
mod stencil;

pub use cholesky::cholesky;
pub use complexsig::{ComplexBuilder, ComplexSig, Sig};
pub use conv2d::conv2d;
pub use cordic::cordic;
pub use dct::dct8;
pub use dft::{dft, dft3, dft5, DftStyle};
pub use fabric_sweep::{fabric_ladder, fabric_sweep, fabric_sweep_with};
pub use fft_radix2::fft_radix2;
pub use fig2::fig2;
pub use fig4::fig4;
pub use fir::{fir, AdderShape};
pub use horner::horner;
pub use iir::iir_biquad_cascade;
pub use lattice::lattice;
pub use matmul::matmul;
pub use random_dag::{random_layered_dag, RandomDagConfig};
pub use registry::{by_name, workload_names};
pub use series_parallel::{random_series_parallel, SpConfig};
pub use skew::{broom, star};
pub use stencil::sobel;

/// The color used for additions (`'a'`).
pub const ADD: mps_dfg::Color = mps_dfg::Color(0);
/// The color used for subtractions (`'b'`).
pub const SUB: mps_dfg::Color = mps_dfg::Color(1);
/// The color used for multiplications (`'c'`).
pub const MUL: mps_dfg::Color = mps_dfg::Color(2);
/// The color used for divisions (`'d'`; Cholesky only).
pub const DIV: mps_dfg::Color = mps_dfg::Color(3);
/// The color used for square roots (`'e'`; Cholesky only).
pub const SQRT: mps_dfg::Color = mps_dfg::Color(4);
/// The color used for barrel shifts (`'f'`; CORDIC only).
pub const SHIFT: mps_dfg::Color = mps_dfg::Color(5);
