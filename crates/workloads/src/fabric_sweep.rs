//! Fabric sweeps: turn one workload into a *family* of scenarios — the
//! same kernel compiled against a ladder of multi-tile fabrics.
//!
//! The single-tile rung reproduces the plain pipeline bit-identically
//! (the fabric subsystem's built-in oracle), so a sweep's first row
//! doubles as its baseline.

use mps_dfg::Dfg;
use mps_fabric::FabricParams;

/// The standard fabric ladder for design-space sweeps: the single-tile
/// baseline, uniform 2- and 4-tile fabrics, and a heterogeneous trio
/// (narrow/medium/full tiles) that exercises per-tile capacity and
/// config-store bounds.
pub fn fabric_ladder() -> Vec<FabricParams> {
    ["1", "2@1", "4@2", "2,8+3,16+5,32@2"]
        .iter()
        .map(|s| FabricParams::parse(s).expect("ladder specs parse"))
        .collect()
}

/// One workload across every rung of [`fabric_ladder`]: `(graph, fabric)`
/// pairs ready for `CompileConfig.fabric`, or `None` for an unknown
/// workload name. The narrowest tile of each fabric bounds the pattern
/// capacity a caller should select with ([`FabricParams::min_alus`]).
pub fn fabric_sweep(name: &str) -> Option<Vec<(Dfg, FabricParams)>> {
    let dfg = crate::by_name(name)?;
    Some(
        fabric_ladder()
            .into_iter()
            .map(|p| (dfg.clone(), p))
            .collect(),
    )
}

/// [`fabric_sweep`] against caller-chosen specs instead of the standard
/// ladder. `None` when the workload is unknown or any spec fails to
/// parse.
pub fn fabric_sweep_with(name: &str, specs: &[&str]) -> Option<Vec<(Dfg, FabricParams)>> {
    let dfg = crate::by_name(name)?;
    specs
        .iter()
        .map(|s| FabricParams::parse(s).map(|p| (dfg.clone(), p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_ladder_starts_at_the_single_tile_baseline() {
        let ladder = fabric_ladder();
        assert_eq!(ladder[0].tile_count(), 1);
        assert!(ladder.iter().skip(1).all(|p| p.tile_count() > 1));
    }

    #[test]
    fn sweeps_pair_the_same_graph_with_every_rung() {
        let sweep = fabric_sweep("fig2").expect("fig2 exists");
        assert_eq!(sweep.len(), fabric_ladder().len());
        assert!(sweep.iter().all(|(g, _)| g.len() == sweep[0].0.len()));
        assert!(fabric_sweep("no-such-workload").is_none());

        let custom = fabric_sweep_with("fig4", &["2", "3:4,16@2"]).expect("specs parse");
        assert_eq!(custom.len(), 2);
        assert_eq!(custom[1].1.tile_count(), 3);
        assert!(fabric_sweep_with("fig4", &["bogus"]).is_none());
    }
}
