//! The paper's Fig. 2: the 3-point DFT data-flow graph.

use crate::{ADD, MUL, SUB};
use mps_dfg::{Dfg, DfgBuilder};

/// The 24-node 3DFT graph of the paper's Fig. 2.
///
/// The figure itself is not machine-readable, so the edge set was
/// reconstructed from two independent sources of truth printed in the
/// paper:
///
/// 1. **Table 1** fixes `(ASAP, ALAP, Height)` for 22 of the 24 nodes;
/// 2. **Table 2** (the full scheduling trace with patterns `aabcc` and
///    `aaacc`) fixes, cycle by cycle, when each node *becomes a candidate*
///    — i.e. when its last predecessor was scheduled — which pins down the
///    dependencies, including those of the two nodes (`c12`, `c14`)
///    Table 1 omits. Their forced levels are ASAP = ALAP = 2, Height = 3.
///
/// The reconstruction reproduces Table 1 **exactly** (asserted by tests)
/// and, with `mps-scheduler`'s default `F2`/higher-id-tie-break
/// configuration, reproduces the Table 2 trace **exactly**.
///
/// Node insertion order is `(letter, number)`-sorted — `a2, a4, a7, a8,
/// a15, …, a24, b1, b3, b5, b6, c9, …, c14` — because the scheduler's
/// deterministic tie-break (higher insertion id first) must order
/// same-priority same-color nodes as the paper's trace does (`b6` before
/// `b3` in cycle 1, `a24` before `a16` in cycle 2, `b5` before `b1` in
/// cycle 3).
pub fn fig2() -> Dfg {
    let mut b = DfgBuilder::with_capacity(24, 20);

    let a2 = b.add_node("a2", ADD);
    let a4 = b.add_node("a4", ADD);
    let a7 = b.add_node("a7", ADD);
    let a8 = b.add_node("a8", ADD);
    let a15 = b.add_node("a15", ADD);
    let a16 = b.add_node("a16", ADD);
    let a17 = b.add_node("a17", ADD);
    let a18 = b.add_node("a18", ADD);
    let a19 = b.add_node("a19", ADD);
    let a20 = b.add_node("a20", ADD);
    let a21 = b.add_node("a21", ADD);
    let a22 = b.add_node("a22", ADD);
    let a23 = b.add_node("a23", ADD);
    let a24 = b.add_node("a24", ADD);
    let b1 = b.add_node("b1", SUB);
    let b3 = b.add_node("b3", SUB);
    let b5 = b.add_node("b5", SUB);
    let b6 = b.add_node("b6", SUB);
    let c9 = b.add_node("c9", MUL);
    let c10 = b.add_node("c10", MUL);
    let c11 = b.add_node("c11", MUL);
    let c12 = b.add_node("c12", MUL);
    let c13 = b.add_node("c13", MUL);
    let c14 = b.add_node("c14", MUL);

    for (u, v) in [
        (b3, a8),
        (b6, a7),
        (a2, c10),
        (a2, a24),
        (a4, c11),
        (a4, a16),
        (b1, c9),
        (b5, c13),
        (a8, c14),
        (a7, c12),
        (c9, a15),
        (c13, a18),
        (c10, a20),
        (c11, a17),
        (c12, a17),
        (c14, a20),
        (a15, a19),
        (a18, a22),
        (a20, a23),
        (a17, a21),
    ] {
        b.add_edge(u, v).expect("static edge list is valid");
    }

    b.build().expect("fig2 is a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dfg::{AnalyzedDfg, Levels};

    #[test]
    fn shape() {
        let g = fig2();
        assert_eq!(g.len(), 24);
        assert_eq!(g.edge_count(), 20);
        let hist = g.color_histogram();
        assert_eq!(hist[ADD.index()], 14, "14 additions");
        assert_eq!(hist[SUB.index()], 4, "4 subtractions");
        assert_eq!(hist[MUL.index()], 6, "6 multiplications");
    }

    /// The paper's Table 1, verbatim (22 rows), plus the two nodes whose
    /// levels are forced by the Table 2 trace.
    #[test]
    fn levels_match_table1_exactly() {
        let g = fig2();
        let l = Levels::compute(&g);
        let expect = [
            ("b3", 0, 0, 5),
            ("b6", 0, 0, 5),
            ("b1", 0, 1, 4),
            ("b5", 0, 1, 4),
            ("a4", 0, 1, 4),
            ("a2", 0, 1, 4),
            ("a8", 1, 1, 4),
            ("a7", 1, 1, 4),
            ("c9", 1, 2, 3),
            ("c13", 1, 2, 3),
            ("c11", 1, 2, 3),
            ("c10", 1, 2, 3),
            ("a24", 1, 4, 1),
            ("a16", 1, 4, 1),
            ("a15", 2, 3, 2),
            ("a18", 2, 3, 2),
            ("a20", 3, 3, 2),
            ("a17", 3, 3, 2),
            ("a19", 3, 4, 1),
            ("a22", 3, 4, 1),
            ("a23", 4, 4, 1),
            ("a21", 4, 4, 1),
            // Not in Table 1; forced by the Table 2 trace:
            ("c12", 2, 2, 3),
            ("c14", 2, 2, 3),
        ];
        for (name, asap, alap, height) in expect {
            let n = g.find(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(l.asap(n), asap, "ASAP({name})");
            assert_eq!(l.alap(n), alap, "ALAP({name})");
            assert_eq!(l.height(n), height, "Height({name})");
        }
        assert_eq!(l.asap_max(), 4);
    }

    #[test]
    fn six_sinks_matching_three_complex_outputs() {
        let g = fig2();
        let mut sinks: Vec<&str> = g.sinks().into_iter().map(|n| g.name(n)).collect();
        sinks.sort_unstable();
        assert_eq!(sinks, vec!["a16", "a19", "a21", "a22", "a23", "a24"]);
    }

    #[test]
    fn a1_a3_span_example() {
        // §5.1 worked example: Span({a24, b3}) = 1.
        let g = fig2();
        let adfg = AnalyzedDfg::new(g);
        let a24 = adfg.dfg().find("a24").unwrap();
        let b3 = adfg.dfg().find("b3").unwrap();
        assert!(adfg.reach().parallelizable(a24, b3));
        assert_eq!(adfg.span(&[a24, b3]), 1);
    }

    #[test]
    fn a19_b3_parallelizable_but_far() {
        // §5.1: "node a19 and node b3 are unlikely to be scheduled in the
        // same clock cycle although they are parallelizable."
        let g = fig2();
        let adfg = AnalyzedDfg::new(g);
        let a19 = adfg.dfg().find("a19").unwrap();
        let b3 = adfg.dfg().find("b3").unwrap();
        assert!(adfg.reach().parallelizable(a19, b3));
        assert_eq!(adfg.span(&[a19, b3]), 3, "ASAP(a19)=3 vs ALAP(b3)=0");
    }
}
