//! CORDIC rotation DFG.
//!
//! CORDIC computes sin/cos/atan with shift-and-add only — exactly the
//! operation mix a coarse-grained array without a fast multiplier would
//! run. Iteration `i` of the rotation mode:
//!
//! ```text
//! x_{i+1} = x_i − d_i · (y_i >> i)
//! y_{i+1} = y_i + d_i · (x_i >> i)
//! z_{i+1} = z_i − d_i · atan(2^−i)      (angle accumulator)
//! ```
//!
//! Per iteration: two barrel shifts (`f`), one add (`a`), one subtract
//! (`b`), plus the angle-accumulator subtract. Three tightly-coupled
//! recurrences of three different colors — small patterns, long critical
//! path, and a color (`shift`) that no other workload in the suite uses.

use crate::{ADD, SHIFT, SUB};
use mps_dfg::{Dfg, DfgBuilder};

/// Build `iterations` CORDIC rotation iterations.
///
/// `5·iterations` nodes, depth `2·iterations` (shift then add/sub per
/// iteration; the z-chain is depth `iterations` and never critical).
pub fn cordic(iterations: usize) -> Dfg {
    assert!(iterations >= 1, "need at least one CORDIC iteration");
    let mut b = DfgBuilder::new();
    let mut x_prev = None;
    let mut y_prev = None;
    let mut z_prev = None;

    for i in 0..iterations {
        let shx = b.add_node(format!("shx{i}"), SHIFT); // x_i >> i
        let shy = b.add_node(format!("shy{i}"), SHIFT); // y_i >> i
        if let Some(x) = x_prev {
            b.add_edge(x, shx).unwrap();
        }
        if let Some(y) = y_prev {
            b.add_edge(y, shy).unwrap();
        }
        let xn = b.add_node(format!("x{i}"), SUB); // x − d·(y>>i)
        let yn = b.add_node(format!("y{i}"), ADD); // y + d·(x>>i)
        if let Some(x) = x_prev {
            b.add_edge(x, xn).unwrap();
        }
        b.add_edge(shy, xn).unwrap();
        if let Some(y) = y_prev {
            b.add_edge(y, yn).unwrap();
        }
        b.add_edge(shx, yn).unwrap();
        let zn = b.add_node(format!("z{i}"), SUB); // z − d·atan(2^−i)
        if let Some(z) = z_prev {
            b.add_edge(z, zn).unwrap();
        }
        x_prev = Some(xn);
        y_prev = Some(yn);
        z_prev = Some(zn);
    }

    b.build().expect("CORDIC is a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dfg::Levels;

    #[test]
    fn node_counts() {
        for it in [1usize, 4, 12] {
            let g = cordic(it);
            assert_eq!(g.len(), 5 * it);
            let h = g.color_histogram();
            assert_eq!(h[SHIFT.index()], 2 * it);
            assert_eq!(h[ADD.index()], it);
            assert_eq!(h[SUB.index()], 2 * it, "x-chain plus z-chain");
        }
    }

    #[test]
    fn depth_two_per_iteration() {
        for it in [1usize, 3, 8] {
            assert_eq!(
                Levels::compute(&cordic(it)).critical_path_len() as usize,
                2 * it
            );
        }
    }

    #[test]
    fn xy_recurrences_cross() {
        let adfg = mps_dfg::AnalyzedDfg::new(cordic(3));
        // y0 feeds shy1 feeds x1: the x-chain depends on the y-chain.
        let y0 = adfg.dfg().find("y0").unwrap();
        let x1 = adfg.dfg().find("x1").unwrap();
        assert!(adfg.reach().reaches(y0, x1));
    }

    #[test]
    fn z_chain_is_never_critical() {
        let adfg = mps_dfg::AnalyzedDfg::new(cordic(4));
        let levels = adfg.levels();
        let z3 = adfg.dfg().find("z3").unwrap();
        // The angle accumulator has slack: its ALAP exceeds its ASAP.
        assert!(levels.alap(z3) > levels.asap(z3));
    }
}
