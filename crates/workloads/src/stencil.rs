//! Sobel edge-detection stencil DFG.
//!
//! The classic image-processing kernel the Montium's application domain
//! (mobile multimedia) actually ships: per output pixel, two 3×3
//! gradient convolutions (six non-zero taps each — the middle column/row
//! of the Sobel masks is zero) and a gradient-magnitude combine. Pixels
//! are independent, so the graph is *embarrassingly wide* with a shallow
//! fixed depth — the opposite extreme from [`crate::lattice`], and a
//! stress test for pattern selection when one color (multiply) dominates
//! 12 : 11.

use crate::{ADD, MUL};
use mps_dfg::{Dfg, DfgBuilder, NodeId};

/// Build a Sobel stencil over `pixels` independent output pixels.
///
/// Per pixel: 6 multiplies + 5-add tree per gradient (`Gx`, `Gy`), then
/// one add for `|Gx| + |Gy|` — 23 nodes, depth 5.
pub fn sobel(pixels: usize) -> Dfg {
    assert!(pixels >= 1, "need at least one output pixel");
    let mut b = DfgBuilder::new();
    for p in 0..pixels {
        let gx = gradient(&mut b, p, "x");
        let gy = gradient(&mut b, p, "y");
        let mag = b.add_node(format!("mag_p{p}"), ADD);
        b.add_edge(gx, mag).unwrap();
        b.add_edge(gy, mag).unwrap();
    }
    b.build().expect("sobel is a valid DAG")
}

/// One 6-tap gradient: 6 muls reduced by a balanced 5-add tree.
fn gradient(b: &mut DfgBuilder, pixel: usize, axis: &str) -> NodeId {
    let taps: Vec<NodeId> = (0..6)
        .map(|t| b.add_node(format!("m{axis}_p{pixel}_t{t}"), MUL))
        .collect();
    let mut level = taps;
    let mut li = 0;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for (pi, pair) in level.chunks(2).enumerate() {
            if pair.len() == 2 {
                let n = b.add_node(format!("a{axis}_p{pixel}_l{li}_{pi}"), ADD);
                b.add_edge(pair[0], n).unwrap();
                b.add_edge(pair[1], n).unwrap();
                next.push(n);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
        li += 1;
    }
    level[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dfg::Levels;

    #[test]
    fn per_pixel_counts() {
        for px in [1usize, 4, 9] {
            let g = sobel(px);
            assert_eq!(g.len(), 23 * px);
            let h = g.color_histogram();
            assert_eq!(h[MUL.index()], 12 * px);
            assert_eq!(h[ADD.index()], 11 * px);
        }
    }

    #[test]
    fn fixed_depth_any_width() {
        // 6 taps: tree levels 6→3→2→1 (3 adds deep), plus mul, plus mag.
        for px in [1usize, 8] {
            assert_eq!(Levels::compute(&sobel(px)).critical_path_len(), 5);
        }
    }

    #[test]
    fn pixels_are_independent() {
        let adfg = mps_dfg::AnalyzedDfg::new(sobel(2));
        let m0 = adfg.dfg().find("mag_p0").unwrap();
        let m1 = adfg.dfg().find("mag_p1").unwrap();
        assert!(!adfg.reach().reaches(m0, m1));
        assert!(!adfg.reach().reaches(m1, m0));
    }

    #[test]
    fn gradients_join_only_at_magnitude() {
        let adfg = mps_dfg::AnalyzedDfg::new(sobel(1));
        let mag = adfg.dfg().find("mag_p0").unwrap();
        assert_eq!(adfg.dfg().preds(mag).len(), 2);
        assert!(adfg.dfg().succs(mag).is_empty());
    }
}
