//! Horner-rule polynomial evaluation DFGs.

use crate::{ADD, MUL};
use mps_dfg::{Dfg, DfgBuilder, NodeId};

/// Evaluate a degree-`degree` polynomial by Horner's rule at `points`
/// independent points: `(((c_n·x + c_{n−1})·x + …)·x + c_0)`.
///
/// Each point is a strictly serial multiply-add chain — the pathological
/// zero-parallelism case *within* a point, with all parallelism *across*
/// points. Sweeping `points` from 1 to C trades the two against each
/// other, which makes this the cleanest workload for studying how pattern
/// selection handles mixed serial/parallel structure.
pub fn horner(degree: usize, points: usize) -> Dfg {
    assert!(degree >= 1, "need a polynomial of degree >= 1");
    assert!(points >= 1, "need at least one evaluation point");
    let mut b = DfgBuilder::new();
    for p in 0..points {
        let mut acc: Option<NodeId> = None;
        for d in 0..degree {
            let mul = b.add_node(format!("c_p{p}d{d}"), MUL);
            if let Some(prev) = acc {
                b.add_edge(prev, mul).unwrap();
            }
            let add = b.add_node(format!("a_p{p}d{d}"), ADD);
            b.add_edge(mul, add).unwrap();
            acc = Some(add);
        }
    }
    b.build().expect("horner graphs are valid DAGs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dfg::Levels;

    #[test]
    fn node_counts_and_depth() {
        let g = horner(4, 1);
        assert_eq!(g.len(), 8);
        assert_eq!(Levels::compute(&g).critical_path_len(), 8, "fully serial");
    }

    #[test]
    fn points_add_parallelism_not_depth() {
        let one = horner(4, 1);
        let four = horner(4, 4);
        assert_eq!(four.len(), 4 * one.len());
        assert_eq!(
            Levels::compute(&one).critical_path_len(),
            Levels::compute(&four).critical_path_len()
        );
        assert_eq!(four.sinks().len(), 4);
    }

    #[test]
    fn alternating_colors() {
        let g = horner(3, 1);
        let h = g.color_histogram();
        assert_eq!(h[MUL.index()], 3);
        assert_eq!(h[ADD.index()], 3);
    }
}
