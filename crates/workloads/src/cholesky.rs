//! Cholesky factorization DFG.
//!
//! `A = L·Lᵀ` for a dense symmetric positive-definite `n×n` matrix,
//! right-looking scalar form. Unlike the DSP kernels, the dependency
//! structure is *triangular*: column `j` cannot start until the diagonal
//! of every earlier column is resolved, and the operation mix includes
//! divisions and square roots — colors the Fourier workloads never use.
//! This stresses the color number condition (Eq. 9): `sqrt` appears only
//! `n` times, so a selector that chases frequent patterns can easily
//! strand it.

use crate::{DIV, MUL, SQRT, SUB};
use mps_dfg::{Dfg, DfgBuilder, NodeId};

/// Build the Cholesky factorization DFG for an `n×n` SPD matrix.
///
/// Per column `j`: `j` square-multiplies and subtractions update the
/// diagonal, one `sqrt` produces `L[j][j]`; each subdiagonal entry
/// `L[i][j]` (`i > j`) needs `j` multiply/subtract pairs and one division
/// by `L[j][j]`.
///
/// Node colors: `c` = multiply, `b` = subtract, `d` = divide, `e` = sqrt.
pub fn cholesky(n: usize) -> Dfg {
    assert!(n >= 1, "need at least a 1×1 matrix");
    let mut b = DfgBuilder::new();
    // l[i][j] = the node producing L[i][j] (i ≥ j).
    let mut l: Vec<Vec<Option<NodeId>>> = vec![vec![None; n]; n];

    for j in 0..n {
        // Diagonal: a_jj − Σ_{k<j} L[j][k]² , then sqrt.
        let mut acc: Option<NodeId> = None; // running subtraction chain
        for (k, slot) in l[j][..j].to_vec().iter().enumerate() {
            let ljk = slot.expect("column k < j is complete");
            let sq = b.add_node(format!("sq_{j}_{k}"), MUL);
            b.add_edge(ljk, sq).unwrap();
            let sub = b.add_node(format!("dsub_{j}_{k}"), SUB);
            if let Some(prev) = acc {
                b.add_edge(prev, sub).unwrap();
            }
            b.add_edge(sq, sub).unwrap();
            acc = Some(sub);
        }
        let sqrt = b.add_node(format!("sqrt_{j}"), SQRT);
        if let Some(prev) = acc {
            b.add_edge(prev, sqrt).unwrap();
        }
        l[j][j] = Some(sqrt);

        // Row j of L, needed by every row below; copied out so the loop
        // over later rows can borrow `l` mutably.
        let row_j: Vec<NodeId> = l[j][..j]
            .iter()
            .map(|v| v.expect("column complete"))
            .collect();
        let ljj = l[j][j].unwrap();

        // Subdiagonal: (a_ij − Σ_{k<j} L[i][k]·L[j][k]) / L[j][j].
        for (i, row) in l.iter_mut().enumerate().skip(j + 1) {
            let mut acc: Option<NodeId> = None;
            for k in 0..j {
                let lik = row[k].expect("column k < j is complete");
                let mul = b.add_node(format!("m_{i}_{j}_{k}"), MUL);
                b.add_edge(lik, mul).unwrap();
                b.add_edge(row_j[k], mul).unwrap();
                let sub = b.add_node(format!("ssub_{i}_{j}_{k}"), SUB);
                if let Some(prev) = acc {
                    b.add_edge(prev, sub).unwrap();
                }
                b.add_edge(mul, sub).unwrap();
                acc = Some(sub);
            }
            let div = b.add_node(format!("div_{i}_{j}"), DIV);
            if let Some(prev) = acc {
                b.add_edge(prev, div).unwrap();
            }
            b.add_edge(ljj, div).unwrap();
            row[j] = Some(div);
        }
    }

    b.build().expect("Cholesky is a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dfg::Levels;

    #[test]
    fn one_by_one_is_a_single_sqrt() {
        let g = cholesky(1);
        assert_eq!(g.len(), 1);
        assert_eq!(g.color(g.node_ids().next().unwrap()), SQRT);
    }

    #[test]
    fn node_counts_follow_closed_forms() {
        for n in [2usize, 3, 4, 5] {
            let g = cholesky(n);
            let h = g.color_histogram();
            // sqrt: one per diagonal; div: one per subdiagonal entry.
            assert_eq!(h[SQRT.index()], n, "n={n}");
            assert_eq!(h[DIV.index()], n * (n - 1) / 2, "n={n}");
            // muls: j per diagonal j plus j per subdiagonal (i, j).
            let muls: usize = (0..n).map(|j| j * (1 + n - j - 1)).sum();
            assert_eq!(h[MUL.index()], muls, "n={n}");
            assert_eq!(h[SUB.index()], muls, "one sub per mul, n={n}");
        }
    }

    #[test]
    fn column_order_forces_depth() {
        // Column j+1 depends on column j's diagonal: depth grows with n.
        let d3 = Levels::compute(&cholesky(3)).critical_path_len();
        let d5 = Levels::compute(&cholesky(5)).critical_path_len();
        assert!(d5 > d3);
        // n = 2: sqrt0 → div_1_0 → sq_1_0(MUL) → dsub → sqrt1 = 5 ops.
        assert_eq!(Levels::compute(&cholesky(2)).critical_path_len(), 5);
    }

    #[test]
    fn four_colors_present() {
        let colors = cholesky(3).color_set();
        for c in [SUB, MUL, DIV, SQRT] {
            assert!(colors.contains(c));
        }
    }

    #[test]
    fn acyclic_and_connected_columns() {
        // build() already proves acyclicity; additionally every non-first
        // column must depend (transitively) on the previous diagonal.
        let g = cholesky(4);
        let adfg = mps_dfg::AnalyzedDfg::new(g);
        let s0 = adfg.dfg().find("sqrt_0").unwrap();
        for j in 1..4 {
            let sj = adfg.dfg().find(&format!("sqrt_{j}")).unwrap();
            assert!(adfg.reach().reaches(s0, sj), "sqrt_0 must precede sqrt_{j}");
        }
    }
}
