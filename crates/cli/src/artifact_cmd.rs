//! The `mps artifact` subcommand: dump and diff persistent compile
//! artifacts (see [`mps::artifact`]).
//!
//! ```text
//! mps artifact dump <workload> [--pdef N] [--span S|none] [--engine E] [--out FILE]
//! mps artifact diff <a.json> <b.json>
//! ```
//!
//! `dump` compiles a workload (or graph file) with the same defaults the
//! compile server uses and prints the versioned artifact envelope —
//! exactly the bytes `mps serve --cache-dir` would persist, so a dumped
//! file dropped into a cache directory warm-starts the server. `diff`
//! decodes two artifact files and compares them **structurally**:
//! envelope keys, selected pattern sets, cycle counts, II/MII, switch
//! counts, schedules and executed cycles — per-stage wall times are
//! deliberately ignored, since two runs of one compile never agree on
//! those. Exit codes: 0 identical, 1 different, 2 usage/decode error.

use mps::artifact::{decode_result, encode_result};
use mps::{CompileResult, Session};
use mps_serve::protocol::Request;

pub fn cmd_artifact(args: &[String]) -> i32 {
    match args.get(1).map(String::as_str) {
        Some("dump") => cmd_dump(&args[2..]),
        Some("diff") => cmd_diff(&args[2..]),
        _ => {
            eprintln!(
                "usage: mps artifact dump <workload> [--pdef N] [--span S|none] [--engine E] [--out FILE]"
            );
            eprintln!("       mps artifact diff <a.json> <b.json>");
            2
        }
    }
}

/// Compile one workload and emit its artifact envelope to stdout or
/// `--out FILE`.
fn cmd_dump(args: &[String]) -> i32 {
    let Some(target) = args.first() else {
        eprintln!("artifact dump needs a workload name or graph file");
        return 2;
    };
    // Build the compile config through the wire-request path so the
    // artifact key matches what `mps serve` computes for the same
    // request — a dumped file dropped into a cache directory must hit.
    let mut req = Request::op("compile");
    let mut out: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let Some(value) = args.get(i) else {
            eprintln!("{flag} needs a value");
            return 2;
        };
        match flag {
            "--pdef" => match value.parse() {
                Ok(n) => req.pdef = Some(n),
                Err(_) => {
                    eprintln!("--pdef needs an unsigned integer");
                    return 2;
                }
            },
            "--span" if value == "none" => req.span = Some(None),
            "--span" => match value.parse() {
                Ok(n) => req.span = Some(Some(n)),
                Err(_) => {
                    eprintln!("--span needs an unsigned integer or 'none'");
                    return 2;
                }
            },
            "--engine" => req.engine = Some(value.clone()),
            "--out" => out = Some(value.clone()),
            other => {
                eprintln!("unknown flag {other} (dump takes --pdef/--span/--engine/--out)");
                return 2;
            }
        }
        i += 1;
    }
    let cfg = match req.compile_config() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let Some(dfg) = crate::load(target) else {
        return 2;
    };
    let key = (dfg.content_hash(), cfg.content_hash());
    let mut session = Session::with_config(dfg, cfg);
    let result = match session.compile() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let text = encode_result(key, &result);
    match out {
        Some(path) => {
            // Writing into a directory uses the cache-store file name, so
            // `--out <cache-dir>` seeds a server's warm-start directly.
            let p = std::path::Path::new(&path);
            let dest = if p.is_dir() {
                p.join(format!("cr-{:016x}-{:016x}.json", key.0, key.1))
            } else {
                p.to_path_buf()
            };
            if let Err(e) = std::fs::write(&dest, text + "\n") {
                eprintln!("could not write {}: {e}", dest.display());
                return 1;
            }
            println!("{}", dest.display());
            0
        }
        None => {
            println!("{text}");
            0
        }
    }
}

/// Decode two artifact files and report structural differences.
fn cmd_diff(args: &[String]) -> i32 {
    let (Some(a_path), Some(b_path)) = (args.first(), args.get(1)) else {
        eprintln!("artifact diff needs two artifact files");
        return 2;
    };
    let decode = |path: &String| -> Result<((u64, u64), CompileResult), i32> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            eprintln!("could not read {path}: {e}");
            2
        })?;
        decode_result(&text, None).map_err(|e| {
            eprintln!("{path}: {e}");
            2
        })
    };
    let (ka, a) = match decode(a_path) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let (kb, b) = match decode(b_path) {
        Ok(v) => v,
        Err(code) => return code,
    };

    let mut differs = false;
    let mut row = |name: &str, left: String, right: String| {
        if left != right {
            differs = true;
            println!("{name}: {left} != {right}");
        }
    };
    let opt = |v: Option<usize>| v.map_or("-".to_string(), |n| n.to_string());
    row(
        "graph_hash",
        format!("{:016x}", ka.0),
        format!("{:016x}", kb.0),
    );
    row(
        "config_hash",
        format!("{:016x}", ka.1),
        format!("{:016x}", kb.1),
    );
    row(
        "patterns",
        a.selection.patterns.to_string(),
        b.selection.patterns.to_string(),
    );
    row("cycles", a.cycles.to_string(), b.cycles.to_string());
    row("ii", opt(a.ii), opt(b.ii));
    row("mii", opt(a.mii), opt(b.mii));
    row("switches", opt(a.switches), opt(b.switches));
    row(
        "exec_cycles",
        opt(a.exec.as_ref().map(|e| e.cycles)),
        opt(b.exec.as_ref().map(|e| e.cycles)),
    );
    if a.schedule != b.schedule {
        differs = true;
        println!("schedules differ:");
        print!("--- {a_path}\n{}", a.schedule);
        print!("+++ {b_path}\n{}", b.schedule);
    }
    if differs {
        1
    } else {
        println!("artifacts are structurally identical");
        0
    }
}
