//! The `mps serve` and `mps client` subcommands: the compile-server
//! daemon and its line-oriented driver.
//!
//! ```text
//! mps serve [--port P | --stdio] [--workers N] [--queue N] [--json]
//!           [--max-artifacts N] [--max-artifact-bytes N] [--max-tables N]
//!           [--max-table-bytes N] [--max-line-bytes N] [--max-conns N]
//!           [--read-timeout-ms N] [--cache-dir DIR]
//!           [--peer ADDR]... [--advertise ADDR]
//!           [--probe-interval-ms N] [--forward-timeout-ms N]
//! mps client [--port P] [--retries N] [--timeout-ms N] [--backoff-ms N]
//!            compile <workload|file> [--pdef N] [--span S|none]
//!            [--capacity N] [--engine E] [--alus N] [--fabric SPEC]
//!            [--id N] [--deadline-ms N]
//! mps client [--port P] (stats | ping | shutdown)
//! mps client [--port P] peers [<workload|file> [compile flags]]
//! mps client [--port P] raw '<json line>'
//! ```
//!
//! `serve` listens on `127.0.0.1:<port>` (thread per connection) or, with
//! `--stdio`, answers requests from stdin on stdout — handy behind
//! `socat` or an init system. `--json` streams boot/compile/shutdown
//! events as JSON lines on stdout (stderr in `--stdio` mode, where
//! stdout carries replies). The cache budgets, line bound, connection
//! cap and read deadline map straight onto [`ServeOptions`];
//! `--cache-dir DIR` persists compile artifacts across restarts (see
//! [`mps::artifact`]) and warm-starts the cache on boot; fault
//! injection is armed from `MPS_FAULT_*` environment variables (see
//! [`mps_serve::FaultPlan::from_env`]).
//!
//! Repeating `--peer ADDR` forms a fleet: compiles are routed to their
//! rendezvous-hash owner, with health-checked failover and artifact
//! handoff (see the crate docs' *Fleet* section). `--advertise ADDR` is
//! mandatory with peers — it is this daemon's name in the ring and must
//! match how the peers list it. `--probe-interval-ms` paces the health
//! prober; `--forward-timeout-ms` bounds one forward hop.
//!
//! `client` prints the server's raw
//! JSON reply line on stdout — pipe it to `jq` — and exits 0 on
//! `ok:true`, 1 on an error reply. `--timeout-ms` bounds each reply
//! read; `--backoff-ms` retries `overloaded` sheds (honoring the
//! server's `retry_after_ms` hint) instead of failing on the first one.
//! `peers` dumps fleet membership and health; given a workload argument
//! (plus any `compile` flags) the reply also names the member that owns
//! that key — how a script finds the daemon to drain or kill.

use mps_serve::protocol::{Reply, Request};
use mps_serve::{Client, FaultPlan, ServeOptions, Server};
use std::io;
use std::net::TcpListener;
use std::time::Duration;

const DEFAULT_PORT: u16 = 7171;

pub fn cmd_serve(args: &[String]) -> i32 {
    let mut opts = ServeOptions::default();
    let mut port = DEFAULT_PORT;
    let mut stdio = false;
    let mut json = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--stdio" => stdio = true,
            "--json" => json = true,
            "--cache-dir" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--cache-dir needs a directory path");
                    return 2;
                };
                opts.cache_dir = Some(dir.into());
            }
            "--peer" => {
                i += 1;
                let Some(addr) = args.get(i) else {
                    eprintln!("--peer needs a host:port address");
                    return 2;
                };
                opts.peers.push(addr.clone());
            }
            "--advertise" => {
                i += 1;
                let Some(addr) = args.get(i) else {
                    eprintln!("--advertise needs a host:port address");
                    return 2;
                };
                opts.advertise = addr.clone();
            }
            "--probe-interval-ms" | "--forward-timeout-ms" => {
                let flag = args[i].clone();
                i += 1;
                let Some(value) = args.get(i).and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("{flag} needs an unsigned integer value");
                    return 2;
                };
                if flag == "--probe-interval-ms" {
                    opts.probe_interval_ms = value.max(1);
                } else {
                    opts.forward_timeout_ms = value.max(1);
                }
            }
            "--port"
            | "--workers"
            | "--queue"
            | "--max-artifacts"
            | "--max-artifact-bytes"
            | "--max-tables"
            | "--max-table-bytes"
            | "--max-line-bytes"
            | "--max-conns"
            | "--read-timeout-ms" => {
                let flag = args[i].clone();
                i += 1;
                let Some(value) = args.get(i).and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("{flag} needs an unsigned integer value");
                    return 2;
                };
                match flag.as_str() {
                    "--port" => match u16::try_from(value) {
                        Ok(p) => port = p,
                        Err(_) => {
                            eprintln!("--port must fit in 16 bits");
                            return 2;
                        }
                    },
                    "--workers" => opts.workers = value.max(1),
                    "--queue" => opts.queue = value.max(1),
                    "--max-artifacts" => opts.max_artifacts = Some(value),
                    "--max-artifact-bytes" => opts.max_artifact_bytes = Some(value),
                    "--max-tables" => opts.max_tables = Some(value),
                    "--max-table-bytes" => opts.max_table_bytes = Some(value),
                    "--max-line-bytes" => opts.max_line_bytes = value.max(64),
                    "--max-conns" => opts.max_conns = value.max(1),
                    _ => opts.read_timeout_ms = value as u64,
                }
            }
            other => {
                eprintln!(
                    "unknown flag {other} (serve takes --port/--stdio/--workers/--queue/--json/\
                     --max-artifacts/--max-artifact-bytes/--max-tables/--max-table-bytes/\
                     --max-line-bytes/--max-conns/--read-timeout-ms/--cache-dir/--peer/\
                     --advertise/--probe-interval-ms/--forward-timeout-ms)"
                );
                return 2;
            }
        }
        i += 1;
    }

    if !opts.peers.is_empty() && opts.advertise.is_empty() {
        eprintln!(
            "--peer needs --advertise HOST:PORT: the ring hashes member \
             addresses, so this daemon must know its own name in its \
             peers' --peer lists"
        );
        return 2;
    }
    if opts.peers.is_empty() && !opts.advertise.is_empty() {
        eprintln!("--advertise only makes sense with at least one --peer");
        return 2;
    }

    opts.faults = FaultPlan::from_env();
    if opts.faults.is_active() {
        eprintln!("mps serve: fault injection armed from MPS_FAULT_* environment");
    }

    let workers = opts.workers;
    let server = Server::new(opts);
    if stdio {
        if json {
            // stdout carries replies in stdio mode; log to stderr.
            server.set_log(Box::new(std::io::stderr()));
        }
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        if let Err(e) = server.run_stdio(&mut stdin.lock(), &mut stdout.lock()) {
            eprintln!("serve: {e}");
            return 1;
        }
    } else {
        if json {
            server.set_log(Box::new(std::io::stdout()));
        }
        let addr = format!("127.0.0.1:{port}");
        let listener = match TcpListener::bind(&addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("serve: could not bind {addr}: {e}");
                return 1;
            }
        };
        eprintln!("mps serve: listening on {addr} ({workers} workers)");
        if let Err(e) = server.run_tcp(listener) {
            eprintln!("serve: {e}");
            return 1;
        }
    }
    server.finish();
    0
}

pub fn cmd_client(args: &[String]) -> i32 {
    let mut port = DEFAULT_PORT;
    let mut retries = 50u32;
    let mut timeout_ms: Option<u64> = None;
    let mut backoff_ms: Option<u64> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--port" | "--retries" | "--timeout-ms" | "--backoff-ms" => {
                let flag = args[i].clone();
                i += 1;
                let Some(value) = args.get(i).and_then(|v| v.parse::<u32>().ok()) else {
                    eprintln!("{flag} needs an unsigned integer value");
                    return 2;
                };
                match flag.as_str() {
                    "--port" => match u16::try_from(value) {
                        Ok(p) => port = p,
                        Err(_) => {
                            eprintln!("--port must fit in 16 bits");
                            return 2;
                        }
                    },
                    "--retries" => retries = value,
                    "--timeout-ms" => timeout_ms = Some(u64::from(value.max(1))),
                    _ => backoff_ms = Some(u64::from(value.max(1))),
                }
                i += 1;
            }
            _ => break,
        }
    }
    let Some(verb) = args.get(i) else {
        eprintln!("client needs a verb: compile | stats | ping | peers | shutdown | raw");
        return 2;
    };
    let line = match verb.as_str() {
        "stats" | "ping" | "shutdown" => Request::op(verb).to_line(),
        // Bare `peers` dumps membership and health; with a workload (and
        // any compile flags) the server also names the key's owner.
        "peers" if args.len() <= i + 1 => Request::op("peers").to_line(),
        "peers" => match compile_request(&args[i + 1..]) {
            Ok(mut req) => {
                req.op = "peers".to_string();
                req.to_line()
            }
            Err(code) => return code,
        },
        "raw" => match args.get(i + 1) {
            Some(raw) => raw.clone(),
            None => {
                eprintln!("raw needs one JSON line argument");
                return 2;
            }
        },
        "compile" => match compile_request(&args[i + 1..]) {
            Ok(req) => req.to_line(),
            Err(code) => return code,
        },
        other => {
            eprintln!(
                "unknown client verb '{other}' (compile | stats | ping | peers | shutdown | raw)"
            );
            return 2;
        }
    };

    let addr = ("127.0.0.1", port);
    let mut client = match Client::connect(addr, retries, Duration::from_millis(100)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("client: could not connect to 127.0.0.1:{port}: {e}");
            return 1;
        }
    };
    if let Some(ms) = timeout_ms {
        if let Err(e) = client.set_timeout(Some(Duration::from_millis(ms))) {
            eprintln!("client: could not set timeout: {e}");
            return 1;
        }
    }
    let sent = match backoff_ms {
        Some(ms) => send_with_backoff(&mut client, &line, 10, Duration::from_millis(ms)),
        None => client.send_line(&line),
    };
    let reply = match sent {
        Ok(reply) => reply,
        Err(e) => {
            eprintln!("client: {e}");
            return 1;
        }
    };
    println!("{reply}");
    match Reply::from_line(&reply) {
        Ok(Reply::Error(_)) => 1,
        Ok(_) => 0,
        Err(e) => {
            eprintln!("client: undecodable reply: {e}");
            1
        }
    }
}

/// Retry `overloaded` sheds and cut connections with doubling backoff,
/// honoring the server's `retry_after_ms` hint. Any other reply —
/// success or error — is returned on the first delivery.
fn send_with_backoff(
    client: &mut Client,
    line: &str,
    attempts: u32,
    backoff: Duration,
) -> io::Result<String> {
    let mut wait = backoff;
    let mut last_err: Option<io::Error> = None;
    for attempt in 0..attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(wait);
            wait = wait.saturating_mul(2);
        }
        match client.send_line(line) {
            Ok(reply) => {
                if let Ok(Reply::Error(e)) = Reply::from_line(&reply) {
                    if e.code.as_deref() == Some("overloaded") {
                        if let Some(hint) = e.retry_after_ms {
                            wait = Duration::from_millis(hint.max(1));
                        }
                        eprintln!("client: overloaded, retrying in {wait:?}");
                        last_err = Some(io::Error::other("server overloaded"));
                        continue;
                    }
                }
                return Ok(reply);
            }
            Err(e) => {
                last_err = Some(e);
                let _ = client.reconnect();
            }
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("no request attempt made")))
}

/// Build a compile request from `compile <workload|file> [flags]`.
///
/// A graph argument naming an existing file is read and sent inline as
/// `graph` text; anything else is sent as a registry `workload` name for
/// the server to resolve.
fn compile_request(args: &[String]) -> Result<Request, i32> {
    let Some(target) = args.first() else {
        eprintln!("compile needs a workload name or graph file");
        return Err(2);
    };
    let mut req = Request::op("compile");
    if std::path::Path::new(target).exists() {
        match std::fs::read_to_string(target) {
            Ok(text) => req.graph = Some(text),
            Err(e) => {
                eprintln!("could not read {target}: {e}");
                return Err(2);
            }
        }
    } else {
        req.workload = Some(target.clone());
    }
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let Some(value) = args.get(i) else {
            eprintln!("{flag} needs a value");
            return Err(2);
        };
        match flag {
            "--span" if value == "none" => req.span = Some(None),
            "--span" => match value.parse::<u32>() {
                Ok(n) => req.span = Some(Some(n)),
                Err(_) => {
                    eprintln!("--span needs an unsigned integer or 'none'");
                    return Err(2);
                }
            },
            "--engine" => req.engine = Some(value.clone()),
            "--fabric" => req.fabric = Some(value.clone()),
            "--pdef" | "--capacity" | "--alus" | "--id" | "--deadline-ms" => {
                match value.parse::<u64>() {
                    Ok(n) => match flag {
                        "--pdef" => req.pdef = Some(n as usize),
                        "--capacity" => req.capacity = Some(n as usize),
                        "--alus" => req.alus = Some(n as usize),
                        "--deadline-ms" => req.deadline_ms = Some(n),
                        _ => req.id = Some(n),
                    },
                    Err(_) => {
                        eprintln!("{flag} needs an unsigned integer value");
                        return Err(2);
                    }
                }
            }
            other => {
                eprintln!("unknown compile flag {other}");
                return Err(2);
            }
        }
        i += 1;
    }
    Ok(req)
}
