//! `mps` — command-line driver for the multi-pattern scheduling pipeline.
//!
//! ```text
//! mps list                                  # available workloads
//! mps info <workload>                       # graph statistics and levels
//! mps dot <workload>                        # Graphviz DOT on stdout
//! mps schedule <workload> <patterns...>     # schedule with given patterns
//! mps select <workload> [--pdef N] [--span S] [--trace]
//!                                           # run the paper's full pipeline
//! ```

use mps::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("info") => with_workload(&args, 2, cmd_info),
        Some("stats") => with_workload(&args, 2, cmd_stats),
        Some("dot") => with_workload(&args, 2, cmd_dot),
        Some("schedule") => cmd_schedule(&args),
        Some("select") => cmd_select(&args),
        Some("pipeline") => cmd_pipeline(&args),
        Some("patterns") => cmd_patterns(&args),
        _ => {
            eprintln!("usage: mps <list|info|dot|schedule|select|pipeline|patterns> [args]");
            eprintln!("  (every <workload> argument also accepts a path to a");
            eprintln!("   graph file in the `node <name> <color>` text format)");
            eprintln!("  mps list");
            eprintln!("  mps info <workload>");
            eprintln!("  mps stats <workload>");
            eprintln!("  mps dot <workload>");
            eprintln!("  mps schedule <workload> <pattern> [pattern...]");
            eprintln!("  mps select <workload> [--pdef N] [--span S] [--trace] [--engine cover|reference]");
            eprintln!("  mps pipeline <workload> [--pdef N] [--tp]");
            eprintln!("  mps patterns <workload> [--span S] [--dot]");
            2
        }
    };
    std::process::exit(code);
}

/// Resolve a graph argument: first as a built-in workload name, then — if a
/// file of that name exists — as a graph in the `mps_dfg::parse_text` text
/// format (`node <name> <color>` / `edge <from> <to>` lines).
fn load(name: &str) -> Option<AnalyzedDfg> {
    if let Some(d) = mps::workloads::by_name(name) {
        return Some(AnalyzedDfg::new(d));
    }
    if std::path::Path::new(name).exists() {
        let src = match std::fs::read_to_string(name) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("could not read {name}: {e}");
                return None;
            }
        };
        return match mps::dfg::parse_text(&src) {
            Ok(g) => Some(AnalyzedDfg::new(g)),
            Err(e) => {
                eprintln!("{name}: {e}");
                None
            }
        };
    }
    eprintln!(
        "unknown workload '{name}' (and no such file); known workloads: {}",
        mps::workloads::workload_names().join(", ")
    );
    None
}

fn with_workload(args: &[String], min_len: usize, f: fn(&AnalyzedDfg) -> i32) -> i32 {
    if args.len() < min_len {
        eprintln!("missing workload name");
        return 2;
    }
    match load(&args[1]) {
        Some(adfg) => f(&adfg),
        None => 2,
    }
}

fn cmd_list() -> i32 {
    println!("workloads (parameterized names take a number, e.g. dft5, fir16, matmul4):");
    for name in mps::workloads::workload_names() {
        println!("  {name}");
    }
    0
}

fn cmd_info(adfg: &AnalyzedDfg) -> i32 {
    let g = adfg.dfg();
    let l = adfg.levels();
    println!("nodes: {}", g.len());
    println!("edges: {}", g.edge_count());
    println!("colors: {:?}", g.color_set());
    let hist = g.color_histogram();
    for (i, &count) in hist.iter().enumerate() {
        if count > 0 {
            println!("  color {}: {count} nodes", Color(i as u8));
        }
    }
    println!("critical path: {} cycles", l.critical_path_len());
    println!("sources: {}, sinks: {}", g.sources().len(), g.sinks().len());
    0
}

fn cmd_stats(adfg: &AnalyzedDfg) -> i32 {
    print!("{}", mps::dfg::DfgStats::compute(adfg.dfg()));
    println!(
        "DAG width (maximum antichain): {}",
        mps::patterns::width(adfg)
    );
    let mac = mps::patterns::maximum_antichain(adfg);
    let names: Vec<&str> = mac.iter().map(|&n| adfg.dfg().name(n)).collect();
    println!("one maximum antichain: {{{}}}", names.join(","));
    0
}

fn cmd_dot(adfg: &AnalyzedDfg) -> i32 {
    print!("{}", mps::dfg::dot_string(adfg.dfg(), "mps workload"));
    0
}

fn cmd_schedule(args: &[String]) -> i32 {
    if args.len() < 3 {
        eprintln!("usage: mps schedule <workload> <pattern> [pattern...]");
        return 2;
    }
    let Some(adfg) = load(&args[1]) else { return 2 };
    let Some(patterns) = PatternSet::parse(&args[2..].join(" ")) else {
        eprintln!("could not parse patterns (use lowercase letters, e.g. aabcc)");
        return 2;
    };
    match schedule_multi_pattern(&adfg, &patterns, MultiPatternConfig::default()) {
        Ok(r) => {
            print!("{}", r.schedule);
            println!();
            print!("{}", mps::scheduler::render_gantt(&adfg, &r.schedule, 5));
            0
        }
        Err(e) => {
            eprintln!("scheduling failed: {e}");
            1
        }
    }
}

/// Software-pipeline a kernel: select patterns (Eq. 8 or the
/// throughput-apportioned variant with `--tp`), then find the smallest
/// initiation interval and print the steady-state reservation table.
fn cmd_pipeline(args: &[String]) -> i32 {
    if args.len() < 2 {
        eprintln!("usage: mps pipeline <workload> [--pdef N] [--tp]");
        return 2;
    }
    let Some(adfg) = load(&args[1]) else { return 2 };
    let mut pdef = 4usize;
    let mut tp = false;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--pdef" => {
                i += 1;
                pdef = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(pdef);
            }
            "--tp" => tp = true,
            other => {
                eprintln!("unknown flag {other}");
                return 2;
            }
        }
        i += 1;
    }

    let patterns = if tp {
        mps::select::select_for_throughput(&adfg, 5)
    } else {
        select_patterns(
            &adfg,
            &SelectConfig {
                pdef,
                span_limit: Some(2),
                ..Default::default()
            },
        )
        .patterns
    };
    println!("patterns: {patterns}");

    let flat = match schedule_multi_pattern(&adfg, &patterns, MultiPatternConfig::default()) {
        Ok(r) => r.schedule,
        Err(e) => {
            eprintln!("flat scheduling failed: {e}");
            return 1;
        }
    };
    let piped = match mps::scheduler::schedule_modulo(&adfg, &patterns, Default::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("modulo scheduling failed: {e}");
            return 1;
        }
    };
    println!(
        "latency {} cycles; II = {} (resource bound {}); steady-state speedup {:.2}x",
        flat.len(),
        piped.ii,
        piped.mii,
        flat.len() as f64 / piped.ii as f64
    );
    for r in 0..piped.ii {
        println!(
            "  slot {r}: [{}] union bag {{{}}}",
            piped.slot_patterns[r],
            piped.slot_bag(&adfg, r)
        );
    }
    0
}

/// Print a workload's candidate patterns (§5.1) with antichain counts,
/// plus the subpattern lattice summary; `--dot` emits the Hasse diagram.
fn cmd_patterns(args: &[String]) -> i32 {
    if args.len() < 2 {
        eprintln!("usage: mps patterns <workload> [--span S] [--dot]");
        return 2;
    }
    let Some(adfg) = load(&args[1]) else { return 2 };
    let mut span: Option<u32> = Some(1);
    let mut dot = false;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--span" => {
                i += 1;
                span = match args.get(i).map(String::as_str) {
                    Some("none") => None,
                    Some(s) => s.parse().ok(),
                    None => span,
                };
            }
            "--dot" => dot = true,
            other => {
                eprintln!("unknown flag {other}");
                return 2;
            }
        }
        i += 1;
    }

    let table = mps::patterns::PatternTable::build(
        &adfg,
        mps::patterns::EnumerateConfig {
            span_limit: span,
            ..Default::default()
        },
    );
    let lattice = mps::patterns::SubpatternLattice::build(table.iter().map(|s| s.pattern));
    if dot {
        print!("{}", lattice.to_dot("candidate subpattern lattice"));
        return 0;
    }

    println!(
        "{} candidate patterns ({} antichains total, span limit {:?}):",
        table.len(),
        table.total_antichains(),
        span
    );
    let maximal = lattice.maximal();
    let mut stats: Vec<_> = table.iter().collect();
    stats.sort_by_key(|s| std::cmp::Reverse(s.antichain_count));
    for s in stats.iter().take(20) {
        let idx = lattice.index_of(&s.pattern).expect("pattern is in lattice");
        println!(
            "  {:<8} {:>6} antichains, {} strict subpatterns{}",
            s.pattern.to_string(),
            s.antichain_count,
            lattice.strict_subpatterns(idx).len(),
            if maximal.contains(&idx) {
                "  [maximal]"
            } else {
                ""
            }
        );
    }
    if stats.len() > 20 {
        println!("  … {} more", stats.len() - 20);
    }
    println!(
        "lattice: {} maximal, {} minimal, height {} (longest deletion cascade)",
        maximal.len(),
        lattice.minimal().len(),
        lattice.height()
    );
    0
}

fn cmd_select(args: &[String]) -> i32 {
    if args.len() < 2 {
        eprintln!("usage: mps select <workload> [--pdef N] [--span S] [--trace] [--engine E]");
        return 2;
    }
    let Some(adfg) = load(&args[1]) else { return 2 };
    let mut pdef = 4usize;
    let mut span: Option<u32> = Some(1);
    let mut trace = false;
    let mut reference = false;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--pdef" => {
                i += 1;
                pdef = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(pdef);
            }
            "--span" => {
                i += 1;
                span = match args.get(i).map(String::as_str) {
                    Some("none") => None,
                    Some(s) => s.parse().ok(),
                    None => span,
                };
            }
            "--trace" => trace = true,
            // `cover` (default) runs §5.2 on the CoverMatrix engine;
            // `reference` runs the retained full-rescore oracle — the two
            // are decision-identical, so this is an A/B switch for timing
            // and for confidence-checking a surprising selection.
            "--engine" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("cover") => reference = false,
                    Some("reference") => reference = true,
                    other => {
                        eprintln!("--engine takes 'cover' or 'reference', got {other:?}");
                        return 2;
                    }
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                return 2;
            }
        }
        i += 1;
    }

    let cfg = PipelineConfig {
        select: SelectConfig {
            pdef,
            span_limit: span,
            ..Default::default()
        },
        sched: MultiPatternConfig {
            record_trace: trace,
            ..Default::default()
        },
    };
    let selection = if reference {
        let table = mps::patterns::PatternTable::build(&adfg, cfg.select.enumerate_config());
        mps::select::select_from_table_reference(&adfg, &table, &cfg.select)
    } else {
        select_patterns(&adfg, &cfg.select)
    };
    println!("selected patterns: {}", selection.patterns);
    for (i, r) in selection.rounds.iter().enumerate() {
        println!(
            "  round {}: {{{}}} f={:.2}{}",
            i + 1,
            r.chosen,
            r.priority,
            if r.fabricated { " (fabricated)" } else { "" }
        );
    }
    match schedule_multi_pattern(&adfg, &selection.patterns, cfg.sched) {
        Ok(r) => {
            if let Some(t) = &r.trace {
                print!("{}", t.render(&adfg, &selection.patterns));
            }
            print!("{}", r.schedule);
            let bound = mps::scheduler::bounds::lower_bound(&adfg, &selection.patterns);
            println!(
                "{} cycles (lower bound {bound}), utilization {:.0}%",
                r.schedule.len(),
                r.schedule.utilization(cfg.select.capacity) * 100.0
            );
            0
        }
        Err(e) => {
            eprintln!("scheduling failed: {e}");
            1
        }
    }
}
