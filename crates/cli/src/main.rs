//! `mps` — command-line driver for the multi-pattern scheduling pipeline.
//!
//! ```text
//! mps list                                  # available workloads
//! mps info <workload>                       # graph statistics and levels
//! mps dot <workload>                        # Graphviz DOT on stdout
//! mps schedule <workload> <patterns...>     # schedule with given patterns
//! mps select <workload> [--pdef N] [--span S] [--trace] [--engine E]
//!                                           # run the paper's full pipeline
//! mps pipeline <workload> [--pdef N] [--span S] [--engine E] [--tp] [--json]
//!                                           # software-pipeline a kernel
//! mps patterns <workload> [--span S] [--dot]
//! mps partition <workload> [--fabric SPEC] [--pdef N] [--span S] [--engine E]
//!                                           # map onto a multi-tile fabric
//! mps artifact dump <workload> [--pdef N] [--span S] [--engine E] [--out F]
//! mps artifact diff <a.json> <b.json>
//! mps serve [--port P|--stdio] [--workers N] [--queue N] [--json]
//!           [--cache-dir DIR] [--peer ADDR]... [--advertise ADDR]
//! mps client [--port P] <compile <workload>|stats|ping|peers|shutdown|raw '<json>'>
//! ```
//!
//! The table-driven subcommands (`select`, `pipeline`, `patterns`) run on
//! [`mps::Session`] — one staged compile each, sharing the flag parser
//! below — and `--engine` accepts every [`SelectEngine`] name. `serve`
//! and `client` are the `mps_serve` compile daemon and its driver (see
//! `serve_cmd`).

use mps::prelude::*;
use mps::scheduler::ModuloConfig;
use mps::{CompileConfig, MpsError};

mod artifact_cmd;
mod serve_cmd;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("info") => with_workload(&args, 2, cmd_info),
        Some("stats") => with_workload(&args, 2, cmd_stats),
        Some("dot") => with_workload(&args, 2, cmd_dot),
        Some("schedule") => cmd_schedule(&args),
        Some("select") => cmd_select(&args),
        Some("pipeline") => cmd_pipeline(&args),
        Some("patterns") => cmd_patterns(&args),
        Some("partition") => cmd_partition(&args),
        Some("artifact") => artifact_cmd::cmd_artifact(&args),
        Some("serve") => serve_cmd::cmd_serve(&args),
        Some("client") => serve_cmd::cmd_client(&args),
        _ => {
            eprintln!(
                "usage: mps <list|info|dot|schedule|select|pipeline|patterns|partition|artifact|serve|client> [args]"
            );
            eprintln!("  (every <workload> argument also accepts a path to a");
            eprintln!("   graph file in the `node <name> <color>` text format)");
            eprintln!("  mps list");
            eprintln!("  mps info <workload>");
            eprintln!("  mps stats <workload>");
            eprintln!("  mps dot <workload>");
            eprintln!("  mps schedule <workload> <pattern> [pattern...]");
            eprintln!("  mps select <workload> [--pdef N] [--span S] [--trace] [--engine E]");
            eprintln!(
                "  mps pipeline <workload> [--pdef N] [--span S] [--engine E] [--tp] [--json]"
            );
            eprintln!("  mps patterns <workload> [--span S] [--dot]");
            eprintln!(
                "  mps partition <workload> [--fabric SPEC] [--pdef N] [--span S] [--engine E]"
            );
            eprintln!("            (SPEC: N, N:alus,configs or alus,configs+... with @latency)");
            eprintln!(
                "  mps artifact dump <workload> [--pdef N] [--span S] [--engine E] [--out F]"
            );
            eprintln!("  mps artifact diff <a.json> <b.json>");
            eprintln!("  mps serve [--port P|--stdio] [--workers N] [--queue N] [--json]");
            eprintln!("            [--cache-dir DIR]   # persistent artifacts, warm-start on boot");
            eprintln!("            [--peer ADDR]... [--advertise ADDR]   # fleet of daemons");
            eprintln!("            [--probe-interval-ms N] [--forward-timeout-ms N]");
            eprintln!("  mps client [--port P] [--retries N] compile <workload> [--pdef N]");
            eprintln!("             [--span S|none] [--capacity N] [--engine E] [--alus N] [--fabric SPEC]");
            eprintln!("  mps client [--port P] <stats|ping|shutdown|raw '<json>'>");
            eprintln!(
                "  mps client [--port P] peers [<workload> [compile flags]]  # fleet health/owner"
            );
            eprintln!("  engines (E): eq8 (alias cover), eq8-reference (alias reference),");
            eprintln!("               node-cover, node-cover-reference, coverage,");
            eprintln!("               coverage-reference, exhaustive, genetic, anneal, random");
            2
        }
    };
    std::process::exit(code);
}

/// Resolve a graph argument: first as a built-in workload name, then — if a
/// file of that name exists — as a graph in the `mps_dfg::parse_text` text
/// format (`node <name> <color>` / `edge <from> <to>` lines).
fn load(name: &str) -> Option<Dfg> {
    if let Some(d) = mps::workloads::by_name(name) {
        return Some(d);
    }
    if std::path::Path::new(name).exists() {
        let src = match std::fs::read_to_string(name) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("could not read {name}: {e}");
                return None;
            }
        };
        return match mps::dfg::parse_text(&src) {
            Ok(g) => Some(g),
            Err(e) => {
                eprintln!("{name}: {}", MpsError::from(e));
                None
            }
        };
    }
    eprintln!(
        "unknown workload '{name}' (and no such file); known workloads: {}",
        mps::workloads::workload_names().join(", ")
    );
    None
}

fn with_workload(args: &[String], min_len: usize, f: fn(&AnalyzedDfg) -> i32) -> i32 {
    if args.len() < min_len {
        eprintln!("missing workload name");
        return 2;
    }
    match load(&args[1]) {
        Some(dfg) => f(&AnalyzedDfg::new(dfg)),
        None => 2,
    }
}

/// Flags shared by the table-driven subcommands. One parser replaces the
/// three per-command `while i < args.len()` blocks this binary used to
/// carry; each command states which flags it accepts and its defaults.
struct Flags {
    pdef: usize,
    span: Option<u32>,
    trace: bool,
    tp: bool,
    json: bool,
    dot: bool,
    engine: SelectEngine,
    fabric: Option<String>,
}

impl Flags {
    fn defaults(span: Option<u32>) -> Flags {
        Flags {
            pdef: 4,
            span,
            trace: false,
            tp: false,
            json: false,
            dot: false,
            engine: SelectEngine::Eq8,
            fabric: None,
        }
    }
}

/// Parse `args[start..]` against the accepted flag list. Prints a
/// diagnostic and returns `Err(2)` (the usage exit code) on an unknown or
/// malformed flag.
fn parse_flags(
    args: &[String],
    start: usize,
    accepted: &[&str],
    mut flags: Flags,
) -> Result<Flags, i32> {
    let mut i = start;
    while i < args.len() {
        let flag = args[i].as_str();
        if !accepted.contains(&flag) {
            eprintln!("unknown flag {flag} (accepted: {})", accepted.join(", "));
            return Err(2);
        }
        match flag {
            "--pdef" => {
                i += 1;
                flags.pdef = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--pdef takes a number, got {:?}", args.get(i));
                        return Err(2);
                    }
                };
            }
            "--span" => {
                i += 1;
                flags.span = match args.get(i).map(String::as_str) {
                    Some("none") => None,
                    Some(s) => match s.parse().ok() {
                        Some(n) => Some(n),
                        None => {
                            eprintln!("--span takes a number or 'none', got {s:?}");
                            return Err(2);
                        }
                    },
                    None => {
                        eprintln!("--span takes a number or 'none'");
                        return Err(2);
                    }
                };
            }
            "--engine" => {
                i += 1;
                match args.get(i).and_then(|s| SelectEngine::parse(s)) {
                    Some(e) => flags.engine = e,
                    None => {
                        eprintln!(
                            "--engine takes eq8|cover, eq8-reference|reference, node-cover, \
                             node-cover-reference, coverage, coverage-reference, exhaustive, \
                             genetic, anneal or random; got {:?}",
                            args.get(i)
                        );
                        return Err(2);
                    }
                }
            }
            "--fabric" => {
                i += 1;
                match args.get(i) {
                    Some(s) => flags.fabric = Some(s.clone()),
                    None => {
                        eprintln!("--fabric takes a spec like 2, 4:3,16 or 2,8+3,16@2");
                        return Err(2);
                    }
                }
            }
            "--trace" => flags.trace = true,
            "--tp" => flags.tp = true,
            "--json" => flags.json = true,
            "--dot" => flags.dot = true,
            _ => unreachable!("accepted list covers every match arm"),
        }
        i += 1;
    }
    Ok(flags)
}

fn cmd_list() -> i32 {
    println!("workloads (parameterized names take a number, e.g. dft5, fir16, matmul4):");
    for name in mps::workloads::workload_names() {
        println!("  {name}");
    }
    0
}

fn cmd_info(adfg: &AnalyzedDfg) -> i32 {
    let g = adfg.dfg();
    let l = adfg.levels();
    println!("nodes: {}", g.len());
    println!("edges: {}", g.edge_count());
    println!("colors: {:?}", g.color_set());
    let hist = g.color_histogram();
    for (i, &count) in hist.iter().enumerate() {
        if count > 0 {
            println!("  color {}: {count} nodes", Color(i as u8));
        }
    }
    println!("critical path: {} cycles", l.critical_path_len());
    println!("sources: {}, sinks: {}", g.sources().len(), g.sinks().len());
    0
}

fn cmd_stats(adfg: &AnalyzedDfg) -> i32 {
    print!("{}", mps::dfg::DfgStats::compute(adfg.dfg()));
    println!(
        "DAG width (maximum antichain): {}",
        mps::patterns::width(adfg)
    );
    let mac = mps::patterns::maximum_antichain(adfg);
    let names: Vec<&str> = mac.iter().map(|&n| adfg.dfg().name(n)).collect();
    println!("one maximum antichain: {{{}}}", names.join(","));
    0
}

fn cmd_dot(adfg: &AnalyzedDfg) -> i32 {
    print!("{}", mps::dfg::dot_string(adfg.dfg(), "mps workload"));
    0
}

fn cmd_schedule(args: &[String]) -> i32 {
    if args.len() < 3 {
        eprintln!("usage: mps schedule <workload> <pattern> [pattern...]");
        return 2;
    }
    let Some(dfg) = load(&args[1]) else { return 2 };
    let adfg = AnalyzedDfg::new(dfg);
    let Some(patterns) = PatternSet::parse(&args[2..].join(" ")) else {
        eprintln!("could not parse patterns (use lowercase letters, e.g. aabcc)");
        return 2;
    };
    match schedule_multi_pattern(&adfg, &patterns, MultiPatternConfig::default()) {
        Ok(r) => {
            print!("{}", r.schedule);
            println!();
            print!("{}", mps::scheduler::render_gantt(&adfg, &r.schedule, 5));
            0
        }
        Err(e) => {
            eprintln!("scheduling failed: {}", MpsError::from(e));
            1
        }
    }
}

fn cmd_select(args: &[String]) -> i32 {
    if args.len() < 2 {
        eprintln!("usage: mps select <workload> [--pdef N] [--span S] [--trace] [--engine E]");
        return 2;
    }
    let Some(dfg) = load(&args[1]) else { return 2 };
    let flags = match parse_flags(
        args,
        2,
        &["--pdef", "--span", "--trace", "--engine"],
        Flags::defaults(Some(1)),
    ) {
        Ok(f) => f,
        Err(code) => return code,
    };

    let sched = ScheduleEngine::List(MultiPatternConfig {
        record_trace: flags.trace,
        ..Default::default()
    });
    let mut session = Session::with_config(
        dfg,
        CompileConfig {
            select: SelectConfig {
                pdef: flags.pdef,
                span_limit: flags.span,
                ..Default::default()
            },
            engine: flags.engine,
            schedule: sched,
            tile: None,
            fabric: None,
        },
    );
    let result = match session.compile() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let adfg = session.analyzed_dfg().expect("compile analyzed the graph");

    println!("selected patterns: {}", result.selection.patterns);
    for (i, r) in result.selection.rounds.iter().enumerate() {
        println!(
            "  round {}: {{{}}} f={:.2}{}",
            i + 1,
            r.chosen,
            r.priority,
            if r.fabricated { " (fabricated)" } else { "" }
        );
    }
    if let Some(t) = &result.trace {
        print!("{}", t.render(adfg, &result.selection.patterns));
    }
    print!("{}", result.schedule);
    let bound = mps::scheduler::bounds::lower_bound(adfg, &result.selection.patterns);
    println!(
        "{} cycles (lower bound {bound}), utilization {:.0}%",
        result.cycles,
        result
            .schedule
            .utilization(session.config().select.capacity)
            * 100.0
    );
    0
}

/// Map a workload onto a multi-tile fabric: run the partition pipeline
/// (`analyze → enumerate → select → partition → schedule → map_tile`)
/// and print the per-tile plans, the inter-tile transfers and the
/// fabric-level accounting.
fn cmd_partition(args: &[String]) -> i32 {
    if args.len() < 2 {
        eprintln!(
            "usage: mps partition <workload> [--fabric SPEC] [--pdef N] [--span S] [--engine E]"
        );
        return 2;
    }
    let Some(dfg) = load(&args[1]) else { return 2 };
    let flags = match parse_flags(
        args,
        2,
        &["--fabric", "--pdef", "--span", "--engine"],
        Flags::defaults(Some(1)),
    ) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let spec = flags.fabric.as_deref().unwrap_or("2");
    let Some(params) = FabricParams::parse(spec) else {
        eprintln!("invalid fabric spec {spec:?} (try 2, 4:3,16 or 2,8+3,16@2)");
        return 2;
    };
    // Selected patterns run on every tile, so they must fit the
    // narrowest one.
    let capacity = params.min_alus();
    let mut session = Session::with_config(
        dfg,
        CompileConfig {
            select: SelectConfig {
                pdef: flags.pdef,
                span_limit: flags.span,
                capacity,
                ..Default::default()
            },
            engine: flags.engine,
            schedule: ScheduleEngine::default(),
            tile: None,
            fabric: Some(params),
        },
    );
    let result = match session.compile() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let mapping = result.fabric.expect("fabric compile carries a mapping");
    let adfg = session.analyzed_dfg().expect("compile analyzed the graph");
    let g = adfg.dfg();

    println!("fabric: {}", mapping.params);
    println!("selected patterns: {}", result.selection.patterns);
    for (t, plan) in mapping.tiles.iter().enumerate() {
        let members = mapping.tile_of.iter().filter(|&&x| x == t).count();
        println!(
            "tile {t} ({} ALUs, {} configs): {members} nodes, {} issue cycles, {} config loads",
            plan.params.alus,
            plan.params.max_configs,
            plan.schedule.len(),
            plan.exec.config_loads
        );
        for (c, gcycle) in plan.schedule.cycles().iter().zip(&plan.global_cycles) {
            let names: Vec<&str> = c.nodes.iter().map(|&n| g.name(n)).collect();
            println!("  cycle {gcycle}: [{}] {{{}}}", c.pattern, names.join(","));
        }
    }
    for tr in &mapping.transfers {
        println!(
            "transfer {} -> {} (tile {} -> {}): departs {}, arrives {}",
            g.name(tr.from),
            g.name(tr.to),
            tr.from_tile,
            tr.to_tile,
            tr.depart,
            tr.arrive
        );
    }
    println!(
        "total {} cycles (critical path {}), {} inter-tile transfers",
        mapping.total_cycles,
        mapping.critical_path,
        mapping.transfers.len()
    );
    0
}

/// Software-pipeline a kernel: select patterns (any `--engine`, or the
/// throughput-apportioned variant with `--tp`), schedule flat for latency
/// and modulo for throughput, and print the steady-state reservation
/// table — or, with `--json`, a machine-readable report including the
/// session's per-stage [`StageMetrics`].
fn cmd_pipeline(args: &[String]) -> i32 {
    if args.len() < 2 {
        eprintln!(
            "usage: mps pipeline <workload> [--pdef N] [--span S] [--engine E] [--tp] [--json]"
        );
        return 2;
    }
    let Some(dfg) = load(&args[1]) else { return 2 };
    let flags = match parse_flags(
        args,
        2,
        &["--pdef", "--span", "--engine", "--tp", "--json"],
        Flags::defaults(Some(2)),
    ) {
        Ok(f) => f,
        Err(code) => return code,
    };

    // `--tp` bypasses the session's selection stage: the throughput
    // selector is a single-pattern design-space heuristic, not a
    // candidate-table engine — which also means there are no session
    // stage metrics to report, so `--json` (whose contract includes
    // them) is rejected rather than silently degraded to text.
    if flags.tp {
        if flags.json {
            eprintln!("--tp and --json cannot be combined: the throughput selector bypasses the session, so there are no stage metrics to report");
            return 2;
        }
        return pipeline_tp(dfg);
    }

    let mut session = Session::with_config(
        dfg,
        CompileConfig {
            select: SelectConfig {
                pdef: flags.pdef,
                span_limit: flags.span,
                ..Default::default()
            },
            engine: flags.engine,
            ..Default::default()
        },
    );
    // Two staged chains over one session: the flat (latency) schedule,
    // then the modulo (throughput) schedule. The second chain re-selects
    // over the *cached* pattern table — visible in the metrics as a
    // table_cache_hits bump instead of a second build.
    let flat = match session.compile() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flat scheduling failed: {e}");
            return 1;
        }
    };
    let cfg = session.config().clone();
    let piped = match session
        .analyze()
        .enumerate(cfg.select.span_limit)
        .select(&cfg.engine)
        .schedule(&ScheduleEngine::Modulo(ModuloConfig::default()))
    {
        Ok(s) => s.finish(),
        Err(e) => {
            eprintln!("modulo scheduling failed: {e}");
            return 1;
        }
    };
    let (ii, mii) = (
        piped.ii.expect("modulo engine reports ii"),
        piped.mii.expect("modulo engine reports mii"),
    );

    if flags.json {
        print_pipeline_json(
            &args[1],
            cfg.engine.name(),
            &flat.selection.patterns,
            flat.cycles,
            ii,
            mii,
            session.metrics(),
        );
        return 0;
    }

    println!("patterns: {}", flat.selection.patterns);
    println!(
        "latency {} cycles; II = {ii} (resource bound {mii}); steady-state speedup {:.2}x",
        flat.cycles,
        flat.cycles as f64 / ii as f64
    );
    let adfg = session.analyzed_dfg().expect("compile analyzed the graph");
    let slots = piped.slot_patterns.as_deref().unwrap_or_default();
    for (r, slot) in slots.iter().enumerate() {
        println!(
            "  slot {r}: [{slot}] union bag {{{}}}",
            mps::scheduler::modulo_slot_bag(adfg, &piped.schedule, ii, r)
        );
    }
    0
}

/// The `--tp` variant of `mps pipeline`: one throughput-apportioned
/// pattern, flat + modulo schedules directly through the engines.
fn pipeline_tp(dfg: Dfg) -> i32 {
    let adfg = AnalyzedDfg::new(dfg);
    let patterns = mps::select::select_for_throughput(&adfg, 5);
    println!("patterns: {patterns}");
    let flat = match ScheduleEngine::default().run(&adfg, &patterns) {
        Ok(r) => r.schedule,
        Err(e) => {
            eprintln!("flat scheduling failed: {}", MpsError::from(e));
            return 1;
        }
    };
    let piped = match ScheduleEngine::Modulo(ModuloConfig::default()).run(&adfg, &patterns) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("modulo scheduling failed: {}", MpsError::from(e));
            return 1;
        }
    };
    let (ii, mii) = (piped.ii.unwrap(), piped.mii.unwrap());
    println!(
        "latency {} cycles; II = {ii} (resource bound {mii}); steady-state speedup {:.2}x",
        flat.len(),
        flat.len() as f64 / ii as f64
    );
    let slots = piped.slot_patterns.as_deref().unwrap_or_default();
    for (r, slot) in slots.iter().enumerate() {
        println!(
            "  slot {r}: [{slot}] union bag {{{}}}",
            mps::scheduler::modulo_slot_bag(&adfg, &piped.schedule, ii, r)
        );
    }
    0
}

/// Machine-readable `mps pipeline --json` report: the compile decisions
/// plus the session's cumulative per-stage metrics.
fn print_pipeline_json(
    workload: &str,
    engine: &str,
    patterns: &PatternSet,
    latency: usize,
    ii: usize,
    mii: usize,
    m: &StageMetrics,
) {
    let pats: Vec<String> = patterns.iter().map(|p| format!("\"{p}\"")).collect();
    // The workload argument may be an arbitrary file path: escape it.
    // Pattern and engine names come from fixed safe alphabets.
    let workload: String = workload
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    println!("{{");
    println!("  \"workload\": \"{workload}\",");
    println!("  \"engine\": \"{engine}\",");
    println!("  \"patterns\": [{}],", pats.join(", "));
    println!("  \"latency_cycles\": {latency},");
    println!("  \"ii\": {ii},");
    println!("  \"mii\": {mii},");
    println!(
        "  \"steady_state_speedup\": {:.4},",
        latency as f64 / ii as f64
    );
    println!("  \"stage_metrics\": {{");
    println!("    \"analyze_sec\": {:.6},", m.analyze_sec);
    println!("    \"enumerate_sec\": {:.6},", m.enumerate_sec);
    println!("    \"select_sec\": {:.6},", m.select_sec);
    println!("    \"partition_sec\": {:.6},", m.partition_sec);
    println!("    \"schedule_sec\": {:.6},", m.schedule_sec);
    println!("    \"map_tile_sec\": {:.6},", m.map_tile_sec);
    println!("    \"total_sec\": {:.6},", m.total_sec());
    println!("    \"antichains\": {},", m.antichains);
    println!("    \"table_patterns\": {},", m.table_patterns);
    println!("    \"select_rounds\": {},", m.select_rounds);
    println!("    \"cycles\": {},", m.cycles);
    println!("    \"table_builds\": {},", m.table_builds);
    println!("    \"table_cache_hits\": {}", m.table_cache_hits);
    println!("  }}");
    println!("}}");
}

/// Print a workload's candidate patterns (§5.1) with antichain counts,
/// plus the subpattern lattice summary; `--dot` emits the Hasse diagram.
/// Runs on the session's enumerate stage.
fn cmd_patterns(args: &[String]) -> i32 {
    if args.len() < 2 {
        eprintln!("usage: mps patterns <workload> [--span S] [--dot]");
        return 2;
    }
    let Some(dfg) = load(&args[1]) else { return 2 };
    let flags = match parse_flags(args, 2, &["--span", "--dot"], Flags::defaults(Some(1))) {
        Ok(f) => f,
        Err(code) => return code,
    };

    let mut session = Session::new(dfg);
    let enumerated = session.analyze().enumerate(flags.span);
    let table = enumerated.table();
    let lattice = mps::patterns::SubpatternLattice::build(table.iter().map(|s| s.pattern));
    if flags.dot {
        print!("{}", lattice.to_dot("candidate subpattern lattice"));
        return 0;
    }

    println!(
        "{} candidate patterns ({} antichains total, span limit {:?}):",
        table.len(),
        table.total_antichains(),
        flags.span
    );
    let maximal = lattice.maximal();
    let mut stats: Vec<_> = table.iter().collect();
    stats.sort_by_key(|s| std::cmp::Reverse(s.antichain_count));
    for s in stats.iter().take(20) {
        let idx = lattice.index_of(&s.pattern).expect("pattern is in lattice");
        println!(
            "  {:<8} {:>6} antichains, {} strict subpatterns{}",
            s.pattern.to_string(),
            s.antichain_count,
            lattice.strict_subpatterns(idx).len(),
            if maximal.contains(&idx) {
                "  [maximal]"
            } else {
                ""
            }
        );
    }
    if stats.len() > 20 {
        println!("  … {} more", stats.len() - 20);
    }
    println!(
        "lattice: {} maximal, {} minimal, height {} (longest deletion cascade)",
        maximal.len(),
        lattice.minimal().len(),
        lattice.height()
    );
    0
}
