//! Shared helpers for the table-regeneration binaries and Criterion
//! benches. Each `src/bin/tableN.rs` reprints one table of the paper's
//! evaluation from a fresh run of the reproduction; `benches/` measures
//! the performance of the underlying machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mps::prelude::*;

/// Render a simple aligned text table: a header row plus data rows.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(header, &widths));
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// The scheduling setup shared by every table: the paper's graph, default
/// multi-pattern configuration, trace recording on.
pub fn fig2_analyzed() -> AnalyzedDfg {
    AnalyzedDfg::new(mps::workloads::fig2())
}

/// The paper's Table 2/3 helper: schedule `fig2` with an explicit pattern
/// set and return the cycle count.
pub fn cycles_with(adfg: &AnalyzedDfg, patterns: &PatternSet) -> usize {
    schedule_multi_pattern(adfg, patterns, MultiPatternConfig::default())
        .expect("pattern sets used by the paper cover all colors")
        .schedule
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["x".into(), "longer".into()],
            &[vec!["aaaa".into(), "b".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("x     "));
        assert!(lines[2].starts_with("aaaa"));
    }

    #[test]
    fn fig2_cycles_with_table2_patterns() {
        let adfg = fig2_analyzed();
        let ps = PatternSet::parse("aabcc aaacc").unwrap();
        assert_eq!(cycles_with(&adfg, &ps), 7);
    }
}
