//! Software-pipelining experiment: initiation interval across workloads
//! and selectors.
//!
//! For every kernel: the flat latency (the paper's metric), the modulo
//! II under the paper's Eq. 8 patterns, the II under one
//! throughput-apportioned pattern, the resource bound MII, and the
//! steady-state reconfiguration count of each. Shows the latency/
//! throughput split the paper's selection objective leaves open.
//!
//! ```text
//! cargo run --release -p mps-bench --bin pipelining
//! ```

use mps::prelude::*;
use mps::scheduler::{modulo_mii, schedule_modulo, validate_modulo, ModuloConfig};
use mps::select::{pattern_ii_bound, select_for_throughput};

fn main() {
    let workloads = [
        "fig2",
        "dft5",
        "fir16",
        "fir8-chain",
        "dct8",
        "iir3",
        "lattice6",
        "cordic8",
        "cholesky4",
        "sobel4",
        "matmul3",
    ];

    let header: Vec<String> = [
        "workload", "latency", "II eq8", "MII eq8", "II tp", "tp bound", "floor",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();

    for w in workloads {
        let adfg = AnalyzedDfg::new(mps::workloads::by_name(w).unwrap());
        let eq8 = mps::select::select_patterns(
            &adfg,
            &SelectConfig {
                pdef: 4,
                span_limit: Some(2),
                ..Default::default()
            },
        )
        .patterns;
        let flat = schedule_multi_pattern(&adfg, &eq8, MultiPatternConfig::default())
            .expect("eq8 covers all colors")
            .schedule;

        let m_eq8 = schedule_modulo(&adfg, &eq8, ModuloConfig::default()).unwrap();
        validate_modulo(&adfg, &m_eq8).unwrap();

        let tp = select_for_throughput(&adfg, 5);
        let m_tp = schedule_modulo(&adfg, &tp, ModuloConfig::default()).unwrap();
        validate_modulo(&adfg, &m_tp).unwrap();
        let tp_bound = tp
            .iter()
            .map(|p| pattern_ii_bound(&adfg, p))
            .min()
            .unwrap_or(usize::MAX);

        // The pattern-free floor: ⌈n / C⌉ slot-cycles per iteration.
        let floor = adfg.len().div_ceil(5);

        rows.push(vec![
            w.to_string(),
            flat.len().to_string(),
            m_eq8.ii.to_string(),
            modulo_mii(&adfg, &eq8).to_string(),
            m_tp.ii.to_string(),
            if tp.len() == 1 {
                tp_bound.to_string()
            } else {
                "-".to_string()
            },
            floor.to_string(),
        ]);
    }

    println!("Software pipelining: initiation intervals (C = 5)");
    println!("{}", mps_bench::render_table(&header, &rows));
    println!("latency = the paper's flat schedule; II eq8 = modulo II with Eq. 8 patterns;");
    println!("MII eq8 = resource bound for those patterns; II tp = modulo II with one");
    println!("throughput-apportioned pattern; tp bound = that pattern's own II bound;");
    println!("floor = ⌈n/C⌉, unbeatable by any pattern set.");
}
