//! Cross-selector comparison: every pattern-selection strategy in the
//! workspace against every workload family, by final schedule length.
//!
//! This is the experiment the paper's Table 7 gestures at (Eq. 8 vs
//! random) widened to the full design space the codebase implements:
//!
//! * `eq8` — the paper's §5.2 selection (ε = 0.5, α = 20, Eq. 9);
//! * `eq8+anneal` — Eq. 8 refined by simulated annealing against true
//!   schedule cycles (the paper's "improve the priority function" future
//!   work, taken to its endpoint);
//! * `eq8+genetic` — Eq. 8 evolved with crossover + mutation (elitist);
//! * `eq8+beam` — Eq. 8 patterns, schedule searched with a width-8 beam;
//! * `scarcity` — the scarcity-weighted Eq. 8 variant;
//! * `node-cover` — greedy node-coverage (set-cover instinct);
//! * `max-count` — greedy raw antichain count;
//! * `random` — mean of 10 covering random draws (the paper's baseline).
//!
//! ```text
//! cargo run --release -p mps-bench --bin selectors
//! ```

use mps::prelude::*;
use mps::scheduler::{schedule_beam, BeamConfig};
use mps::select::{node_cover_greedy, select_and_anneal, AnnealConfig};

fn main() {
    let workloads = [
        "fig2",
        "dft5",
        "fir16",
        "dct8",
        "matmul3",
        "lattice6",
        "cordic8",
        "cholesky4",
        "sobel4",
    ];
    let pdef = 4usize;
    let base = SelectConfig {
        pdef,
        span_limit: Some(1),
        ..Default::default()
    };

    let header: Vec<String> = std::iter::once("selector".to_string())
        .chain(workloads.iter().map(|s| s.to_string()))
        .collect();
    let mut rows: Vec<Vec<String>> = vec![
        vec!["eq8 (paper)".to_string()],
        vec!["eq8+anneal".to_string()],
        vec!["eq8+genetic".to_string()],
        vec!["eq8+beam".to_string()],
        vec!["scarcity".to_string()],
        vec!["node-cover".to_string()],
        vec!["max-count".to_string()],
        vec!["random (mean 10)".to_string()],
        vec!["lower bound".to_string()],
    ];

    for w in workloads {
        let adfg = AnalyzedDfg::new(mps::workloads::by_name(w).unwrap());

        let eq8 = mps::select::select_patterns(&adfg, &base).patterns;
        let eq8_cycles = cycles(&adfg, &eq8);
        rows[0].push(fmt(eq8_cycles));

        let annealed = select_and_anneal(
            &adfg,
            &base,
            AnnealConfig {
                iterations: 300,
                seed: 7,
                ..Default::default()
            },
        );
        rows[1].push(annealed.cycles.to_string());

        let evolved = mps::select::evolve_patterns(
            &adfg,
            std::slice::from_ref(&eq8),
            &[],
            mps::select::GeneticConfig {
                seed: 7,
                ..Default::default()
            },
            MultiPatternConfig::default(),
        );
        rows[2].push(evolved.cycles.to_string());

        let beam = schedule_beam(
            &adfg,
            &eq8,
            BeamConfig {
                width: 8,
                ..Default::default()
            },
        )
        .map(|r| r.schedule.len());
        rows[3].push(fmt(beam.ok()));

        let scarce =
            mps::select::select_with_priority(&adfg, &base, mps::select::scarcity_priority);
        rows[4].push(fmt(cycles(&adfg, &scarce)));

        let ncover = node_cover_greedy(&adfg, &base).patterns;
        rows[5].push(fmt(cycles(&adfg, &ncover)));

        let maxcount = mps::select::coverage_greedy(&adfg, &base);
        rows[6].push(fmt(cycles(&adfg, &maxcount)));

        let rb = random_baseline(&adfg, pdef, 5, 10, 99, MultiPatternConfig::default());
        rows[7].push(format!("{:.1}", rb.mean()));

        // Pattern-independent floor: critical path vs ⌈n / C⌉.
        let floor = (adfg.levels().critical_path_len() as usize).max(adfg.len().div_ceil(5));
        rows[8].push(floor.to_string());
    }

    println!("Cross-selector comparison: schedule cycles (Pdef=4, C=5, span ≤ 1, F2)");
    println!("{}", mps_bench::render_table(&header, &rows));
    println!("FAIL = selected patterns strand a color. 'lower bound' is pattern-free");
    println!("(max of critical path and ⌈n/C⌉) — no selector can beat it.");
}

fn cycles(adfg: &AnalyzedDfg, patterns: &PatternSet) -> Option<usize> {
    schedule_multi_pattern(adfg, patterns, MultiPatternConfig::default())
        .ok()
        .map(|r| r.schedule.len())
}

fn fmt(c: Option<usize>) -> String {
    c.map_or("FAIL".to_string(), |v| v.to_string())
}
