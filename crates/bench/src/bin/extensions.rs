//! Evaluation of the beyond-the-paper extensions (the paper's §7 future
//! work, implemented): optimality gap vs. the exact solver, the
//! pattern-merge post-pass, the scarcity-weighted priority, DAG width,
//! and register pressure.
//!
//! ```text
//! cargo run --release -p mps-bench --bin extensions
//! ```

use mps::prelude::*;
use mps::scheduler::exact::{schedule_exact, ExactConfig};
use mps::select::{merge_pass, scarcity_priority, select_with_priority};

fn main() {
    optimality_gap();
    println!();
    merge_and_scarcity();
    println!();
    width_and_pressure();
    println!();
    capacity_sweep();
}

/// Heuristic vs exact on every ≤20-node workload.
fn optimality_gap() {
    println!("Optimality gap (exact DP vs the paper's heuristic):");
    let header: Vec<String> = ["graph", "nodes", "patterns", "heuristic", "exact", "states"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for name in ["fig4", "dft2", "dft3", "dft4", "horner4", "fir8"] {
        let adfg = AnalyzedDfg::new(mps::workloads::by_name(name).unwrap());
        if adfg.len() > 20 {
            continue;
        }
        let sel = select_patterns(
            &adfg,
            &SelectConfig {
                pdef: 2,
                span_limit: Some(1),
                parallel: false,
                ..Default::default()
            },
        );
        let heur = schedule_multi_pattern(&adfg, &sel.patterns, MultiPatternConfig::default())
            .unwrap()
            .schedule
            .len();
        match schedule_exact(&adfg, &sel.patterns, ExactConfig::default()).unwrap() {
            Some(exact) => rows.push(vec![
                name.to_string(),
                adfg.len().to_string(),
                sel.patterns.to_string(),
                heur.to_string(),
                exact.schedule.len().to_string(),
                exact.states.to_string(),
            ]),
            None => rows.push(vec![
                name.to_string(),
                adfg.len().to_string(),
                sel.patterns.to_string(),
                heur.to_string(),
                "-".into(),
                "budget".into(),
            ]),
        }
    }
    println!("{}", mps_bench::render_table(&header, &rows));
}

/// Merge pass and scarcity priority vs plain Eq. 8, Pdef = 2.
fn merge_and_scarcity() {
    println!("Selection variants (cycles, Pdef = 2, span <= 1):");
    let header: Vec<String> = ["graph", "Eq.8", "Eq.8+merge", "scarcity", "random(10)"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for name in ["fig2", "dft5", "dct8", "fft8", "conv3", "horner5"] {
        let adfg = AnalyzedDfg::new(mps::workloads::by_name(name).unwrap());
        let cfg = SelectConfig {
            pdef: 2,
            span_limit: Some(1),
            parallel: false,
            ..Default::default()
        };
        let cycles = |ps: &PatternSet| {
            schedule_multi_pattern(&adfg, ps, MultiPatternConfig::default())
                .map(|r| r.schedule.len())
                .map(|c| c.to_string())
                .unwrap_or_else(|_| "FAIL".into())
        };
        let plain = select_patterns(&adfg, &cfg).patterns;
        let merged = merge_pass(&adfg, &plain, &cfg, MultiPatternConfig::default());
        let scarce = select_with_priority(&adfg, &cfg, scarcity_priority);
        let rb = random_baseline(&adfg, 2, 5, 10, 11, MultiPatternConfig::default());
        rows.push(vec![
            name.to_string(),
            cycles(&plain),
            merged.cycles.to_string(),
            cycles(&scarce),
            format!("{:.1}", rb.mean()),
        ]);
    }
    println!("{}", mps_bench::render_table(&header, &rows));
}

/// Structural metrics: DAG width (is C = 5 even useful?) and register
/// pressure of the produced schedules.
fn width_and_pressure() {
    println!("Width and register pressure (Pdef = 4, span <= 1):");
    let header: Vec<String> = [
        "graph",
        "nodes",
        "width",
        "cycles",
        "peak live",
        "value-cycles",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for name in ["fig2", "dft5", "dct8", "fft8", "iir4", "horner5"] {
        let adfg = AnalyzedDfg::new(mps::workloads::by_name(name).unwrap());
        let w = mps::patterns::width(&adfg);
        let r = select_and_schedule(
            &adfg,
            &PipelineConfig {
                select: SelectConfig {
                    pdef: 4,
                    span_limit: Some(1),
                    parallel: false,
                    ..Default::default()
                },
                sched: MultiPatternConfig::default(),
            },
        )
        .unwrap();
        let lt = mps::montium::lifetimes(&adfg, &r.schedule);
        rows.push(vec![
            name.to_string(),
            adfg.len().to_string(),
            w.to_string(),
            r.cycles.to_string(),
            lt.peak.to_string(),
            lt.total_value_cycles.to_string(),
        ]);
    }
    println!("{}", mps_bench::render_table(&header, &rows));
}

// --- appended section: tile-capacity architecture sweep -----------------

/// How many ALUs does the Montium actually need? Sweep `C` and re-run the
/// whole pipeline (enumeration capacity, selection and the tile all track
/// `C`).
fn capacity_sweep() {
    println!("Tile-capacity sweep (cycles, Pdef = 4, span <= 1):");
    let caps = [2usize, 3, 4, 5, 6, 8];
    let header: Vec<String> = std::iter::once("graph".to_string())
        .chain(caps.iter().map(|c| format!("C={c}")))
        .collect();
    let mut rows = Vec::new();
    for name in ["fig2", "dft5", "dct8", "fft8"] {
        let adfg = AnalyzedDfg::new(mps::workloads::by_name(name).unwrap());
        let mut row = vec![name.to_string()];
        for &c in &caps {
            let r = select_and_schedule(
                &adfg,
                &PipelineConfig {
                    select: SelectConfig {
                        pdef: 4,
                        capacity: c,
                        span_limit: Some(1),
                        parallel: false,
                        ..Default::default()
                    },
                    sched: MultiPatternConfig::default(),
                },
            )
            .unwrap();
            row.push(r.cycles.to_string());
        }
        rows.push(row);
    }
    println!("{}", mps_bench::render_table(&header, &rows));
    println!("diminishing returns past the DAG-width knee justify C = 5.");
}
