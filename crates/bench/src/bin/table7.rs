//! Regenerate the paper's **Table 7** — the headline experiment: clock
//! cycles of the 3DFT and 5DFT under random patterns (mean of 10 trials)
//! vs. patterns chosen by the selection algorithm, for `Pdef = 1..5`.
//!
//! The paper never states which span limitation it used for pattern
//! generation (its Table 5 explores 0..4), so we report the selected
//! column for both an unlimited span and the Theorem-1-motivated limit
//! of 1. With span ≤ 1 the 3DFT column reproduces the paper's selected
//! column exactly (8, 7, 7, 7, 6).
//!
//! ```text
//! cargo run --release -p mps-bench --bin table7 [trials] [seed]
//! ```

use mps::prelude::*;

/// Selected-cycles for one workload and Pdef under a span limit.
fn selected_cycles(adfg: &AnalyzedDfg, pdef: usize, span_limit: Option<u32>) -> usize {
    select_and_schedule(
        adfg,
        &PipelineConfig {
            select: SelectConfig {
                pdef,
                span_limit,
                ..Default::default()
            },
            sched: MultiPatternConfig::default(),
        },
    )
    .expect("selection guarantees coverage")
    .cycles
}

fn main() {
    let mut args = std::env::args().skip(1);
    let trials: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2006);

    let workloads = [
        ("3DFT", mps::workloads::fig2()),
        ("5DFT", mps::workloads::dft5()),
    ];
    let paper: [Vec<(f64, usize)>; 2] = [
        vec![(12.4, 8), (10.5, 7), (8.7, 7), (7.9, 7), (6.5, 6)],
        vec![(23.4, 19), (22.0, 16), (20.4, 16), (15.8, 15), (15.8, 15)],
    ];

    println!("Table 7: random vs selected patterns ({trials} random trials, seed {seed})\n");
    for (wi, (name, dfg)) in workloads.into_iter().enumerate() {
        let adfg = AnalyzedDfg::new(dfg);
        let header: Vec<String> = [
            "Pdef",
            "random (paper)",
            "selected (paper)",
            "random (measured)",
            "selected (span<=1)",
            "selected (no limit)",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut rows = Vec::new();
        for pdef in 1..=5usize {
            let sel_span1 = selected_cycles(&adfg, pdef, Some(1));
            let sel_none = selected_cycles(&adfg, pdef, None);
            let random =
                random_baseline(&adfg, pdef, 5, trials, seed, MultiPatternConfig::default());
            let (paper_rand, paper_sel) = paper[wi][pdef - 1];
            rows.push(vec![
                pdef.to_string(),
                format!("{paper_rand}"),
                paper_sel.to_string(),
                format!("{:.1}", random.mean()),
                sel_span1.to_string(),
                sel_none.to_string(),
            ]);
        }
        println!("{name} ({} nodes):", adfg.len());
        println!("{}", mps_bench::render_table(&header, &rows));
    }
}
