//! Multi-kernel configuration-store budgeting.
//!
//! "Although the five ALUs can execute thousands of different possible
//! patterns, … it is only allowed to use up to 32 of them" (§1) — per
//! *application*, which in practice bundles several kernels (a radio does
//! FFT + FIR + CORDIC back to back). This experiment selects patterns per
//! kernel, then measures how the shared 32-slot store fills up as kernels
//! are added, how much the subpattern relation lets kernels share slots,
//! and what the paper's fabrication trick costs when Pdef must shrink to
//! make everything fit.
//!
//! ```text
//! cargo run --release -p mps-bench --bin multikernel
//! ```

use mps::prelude::*;
use mps::scheduler::ScheduleError;

fn main() {
    let kernels = [
        "fig2",
        "dft5",
        "fir16",
        "dct8",
        "iir3",
        "lattice6",
        "cordic8",
        "cholesky4",
        "sobel4",
        "fft8",
        "matmul3",
        "horner5",
    ];

    println!("Configuration-store budget as kernels accumulate (Pdef = 4 each, C = 5):\n");
    let header: Vec<String> = [
        "+ kernel",
        "cycles",
        "own pats",
        "union",
        "after subpat dedupe",
        "fits 32?",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();

    let mut union: Vec<mps::patterns::Pattern> = Vec::new();
    for w in kernels {
        let adfg = AnalyzedDfg::new(mps::workloads::by_name(w).unwrap());
        let sel = mps::select::select_patterns(
            &adfg,
            &SelectConfig {
                pdef: 4,
                span_limit: Some(1),
                ..Default::default()
            },
        )
        .patterns;
        let cycles = cycles_of(&adfg, &sel);
        for p in sel.iter() {
            if !union.contains(p) {
                union.push(*p);
            }
        }
        // Subpattern dedupe: a stored superpattern serves any cycle that
        // needs one of its subpatterns, so strictly-dominated patterns
        // can be dropped from the store.
        let lattice = mps::patterns::SubpatternLattice::build(union.iter().copied());
        let maximal = lattice.maximal();

        rows.push(vec![
            w.to_string(),
            fmt(cycles),
            sel.len().to_string(),
            union.len().to_string(),
            maximal.len().to_string(),
            if maximal.len() <= 32 { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", mps_bench::render_table(&header, &rows));

    // Verify the dedupe claim end-to-end: every kernel still schedules
    // with only the maximal patterns of the final union.
    let lattice = mps::patterns::SubpatternLattice::build(union.iter().copied());
    let shared =
        PatternSet::from_patterns(lattice.maximal().into_iter().map(|i| lattice.patterns()[i]));
    println!(
        "\nshared store: {} maximal patterns serve all {} kernels:",
        shared.len(),
        kernels.len()
    );
    for w in kernels {
        let adfg = AnalyzedDfg::new(mps::workloads::by_name(w).unwrap());
        let own = mps::select::select_patterns(
            &adfg,
            &SelectConfig {
                pdef: 4,
                span_limit: Some(1),
                ..Default::default()
            },
        )
        .patterns;
        let own_cycles = cycles_of(&adfg, &own);
        let shared_cycles = cycles_of(&adfg, &shared);
        let note = match (&own_cycles, &shared_cycles) {
            (Ok(a), Ok(b)) if b < a => "  (richer store helps!)",
            (Ok(a), Ok(b)) if b > a => "  (!)",
            _ => "",
        };
        println!(
            "  {w:<10} own {} cycles -> shared {} cycles{note}",
            fmt(own_cycles),
            fmt(shared_cycles),
        );
    }
    println!("\nA shared store never hurts a kernel: it contains a superpattern of every");
    println!("pattern the kernel selected for itself, plus patterns from the others.");
}

fn cycles_of(adfg: &AnalyzedDfg, ps: &PatternSet) -> Result<usize, ScheduleError> {
    schedule_multi_pattern(adfg, ps, MultiPatternConfig::default()).map(|r| r.schedule.len())
}

fn fmt(r: Result<usize, ScheduleError>) -> String {
    match r {
        Ok(c) => c.to_string(),
        Err(_) => "FAIL".into(),
    }
}
