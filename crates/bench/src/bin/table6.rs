//! Regenerate the paper's **Table 6**: node frequencies `h(p̄, n)` for the
//! Fig. 4 example, plus the §5.2 worked selection (priorities 26/24/88/84,
//! picks {aa} then {bb}).
//!
//! ```text
//! cargo run -p mps-bench --bin table6
//! ```

use mps::prelude::*;

fn main() {
    let adfg = AnalyzedDfg::new(mps::workloads::fig4());
    let table = PatternTable::build(
        &adfg,
        EnumerateConfig {
            capacity: 5,
            span_limit: None,
            parallel: false,
        },
    );

    let nodes = ["a1", "a2", "a3", "b4", "b5"];
    let header: Vec<String> = std::iter::once("pattern".to_string())
        .chain(nodes.iter().map(|s| s.to_string()))
        .collect();
    let mut rows = Vec::new();
    for stats in table.iter() {
        let mut row = vec![format!("{{{}}}", stats.pattern)];
        for name in nodes {
            let n = adfg.dfg().find(name).unwrap();
            row.push(stats.freq(n).to_string());
        }
        rows.push(row);
    }
    println!("Table 6: node frequencies h(p̄, n) for Fig. 4");
    println!("{}", mps_bench::render_table(&header, &rows));

    // The worked example: first-round priorities and the two selections.
    let out = select_patterns(
        &adfg,
        &SelectConfig {
            pdef: 2,
            parallel: false,
            ..Default::default()
        },
    );
    println!("selection rounds (ε = 0.5, α = 20):");
    for (i, r) in out.rounds.iter().enumerate() {
        println!(
            "  round {}: chose {{{}}} with f = {}{}",
            i + 1,
            r.chosen,
            r.priority,
            if r.fabricated { " (fabricated)" } else { "" }
        );
    }

    let pdef1 = select_patterns(
        &adfg,
        &SelectConfig {
            pdef: 1,
            parallel: false,
            ..Default::default()
        },
    );
    println!(
        "Pdef = 1: fabricated pattern {{{}}} (no candidate satisfies the color number condition)",
        pdef1.patterns.patterns()[0]
    );
}
