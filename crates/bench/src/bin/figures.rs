//! Emit the paper's **Figure 2** (3DFT DFG) and **Figure 4** (small
//! example) as Graphviz DOT files, plus a span illustration for
//! **Figure 5** (Theorem 1).
//!
//! ```text
//! cargo run -p mps-bench --bin figures [out_dir]
//! ```

use mps::dfg::dot_string;
use mps::prelude::*;

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let out = std::path::Path::new(&out_dir);

    let fig2 = mps::workloads::fig2();
    let fig4 = mps::workloads::fig4();
    std::fs::write(out.join("fig2.dot"), dot_string(&fig2, "3DFT (Fig. 2)"))
        .expect("write fig2.dot");
    std::fs::write(
        out.join("fig4.dot"),
        dot_string(&fig4, "small example (Fig. 4)"),
    )
    .expect("write fig4.dot");
    println!("wrote {}/fig2.dot and {}/fig4.dot", out_dir, out_dir);

    // Fig. 5 is the span illustration: print the Theorem 1 quantities for
    // the paper's own example antichain {a24, b3}.
    let adfg = AnalyzedDfg::new(fig2);
    let a24 = adfg.dfg().find("a24").unwrap();
    let b3 = adfg.dfg().find("b3").unwrap();
    let l = adfg.levels();
    println!("\nFig. 5 / Theorem 1 illustration for A = {{a24, b3}}:");
    println!("  ASAP(a24) = {}, ALAP(a24) = {}", l.asap(a24), l.alap(a24));
    println!("  ASAP(b3)  = {}, ALAP(b3)  = {}", l.asap(b3), l.alap(b3));
    println!("  Span(A)   = {}", adfg.span(&[a24, b3]));
    println!(
        "  Theorem 1 lower bound if co-scheduled: ASAPmax + Span + 1 = {}",
        mps::dfg::theorem1_lower_bound(l, &[a24, b3])
    );
}
