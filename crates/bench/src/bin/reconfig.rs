//! Reconfiguration-overhead frontier: cycles vs pattern switches.
//!
//! The Montium pays a configuration load whenever consecutive cycles use
//! different patterns (the tile energy model charges each load). The
//! paper's Fig. 3 scheduler ignores this cost. This experiment sweeps the
//! switch-aware scheduler's `keep_factor` and reports, per workload, the
//! (cycles, switches, energy) frontier — quantifying how much reconfig
//! energy a compiler can buy back and at what cycle cost.
//!
//! ```text
//! cargo run --release -p mps-bench --bin reconfig
//! ```

use mps::prelude::*;
use mps::scheduler::{count_switches, schedule_switch_aware, SwitchAwareConfig};

fn main() {
    let workloads = ["fig2", "dft5", "fir16", "dct8", "conv3"];
    let keep_factors = [1.0f64, 0.8, 0.6, 0.4, 0.2];
    let energy = mps::montium::EnergyModel::default();

    let header: Vec<String> = [
        "workload",
        "scheduler",
        "cycles",
        "switches",
        "energy (rel)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows: Vec<Vec<String>> = Vec::new();

    for w in workloads {
        let adfg = AnalyzedDfg::new(mps::workloads::by_name(w).unwrap());
        let patterns = mps::select::select_patterns(
            &adfg,
            &SelectConfig {
                pdef: 4,
                span_limit: Some(1),
                ..Default::default()
            },
        )
        .patterns;

        // Baseline: the paper's scheduler, oblivious to switches.
        let base = schedule_multi_pattern(&adfg, &patterns, MultiPatternConfig::default())
            .expect("selected patterns cover all colors");
        let base_energy = estimate(&adfg, &base.schedule, &energy);
        rows.push(vec![
            w.to_string(),
            "Fig. 3 (oblivious)".to_string(),
            base.schedule.len().to_string(),
            count_switches(&base.schedule).to_string(),
            "1.00".to_string(),
        ]);

        for kf in keep_factors {
            let aware = schedule_switch_aware(
                &adfg,
                &patterns,
                SwitchAwareConfig {
                    keep_factor: kf,
                    ..Default::default()
                },
            )
            .expect("same coverage as the baseline");
            aware
                .schedule
                .validate(&adfg, Some(&patterns))
                .expect("switch-aware schedules are valid");
            let e = estimate(&adfg, &aware.schedule, &energy);
            rows.push(vec![
                String::new(),
                format!("keep ≥ {kf:.1}·best"),
                aware.schedule.len().to_string(),
                aware.switches.to_string(),
                format!("{:.2}", e / base_energy),
            ]);
        }
    }

    println!("Reconfiguration frontier (Pdef=4, span ≤ 1, F2):");
    println!("{}", mps_bench::render_table(&header, &rows));
    println!("energy (rel) = total estimated energy / Fig. 3 baseline (same model:");
    println!("per-op + per-config-load + static idle; see mps-montium::EnergyModel).");
}

fn estimate(
    adfg: &AnalyzedDfg,
    schedule: &mps::scheduler::Schedule,
    model: &mps::montium::EnergyModel,
) -> f64 {
    let report = mps::montium::execute(
        adfg,
        schedule,
        &mps::patterns::PatternSet::from_patterns(schedule.cycles().iter().map(|c| c.pattern)),
        mps::montium::TileParams::default(),
    )
    .expect("valid schedules replay");
    model.estimate(&report).total()
}
