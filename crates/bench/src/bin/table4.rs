//! Regenerate the paper's **Table 4**: patterns and their antichains for
//! the small example graph (Fig. 4).
//!
//! ```text
//! cargo run -p mps-bench --bin table4
//! ```

use mps::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let adfg = AnalyzedDfg::new(mps::workloads::fig4());
    let cfg = EnumerateConfig {
        capacity: 5,
        span_limit: None,
        parallel: false,
    };

    // Classify the raw antichains by pattern (Table 4 prints them all).
    let mut by_pattern: BTreeMap<Pattern, Vec<String>> = BTreeMap::new();
    for a in enumerate_antichains(&adfg, cfg) {
        let pat = Pattern::from_colors(a.iter().map(|&n| adfg.dfg().color(n)));
        let mut names: Vec<&str> = a.iter().map(|&n| adfg.dfg().name(n)).collect();
        names.sort_unstable();
        by_pattern
            .entry(pat)
            .or_default()
            .push(format!("{{{}}}", names.join(",")));
    }

    println!("Table 4: patterns and antichains in the DFG of Fig. 4");
    let header: Vec<String> = ["pattern", "antichains"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows: Vec<Vec<String>> = by_pattern
        .iter()
        .map(|(p, chains)| vec![format!("{{{p}}}"), chains.join(", ")])
        .collect();
    println!("{}", mps_bench::render_table(&header, &rows));
}
