//! Regenerate the paper's **Table 2**: the multi-pattern scheduling trace
//! of the 3DFT with patterns `aabcc` and `aaacc`.
//!
//! ```text
//! cargo run -p mps-bench --bin table2
//! ```

use mps::prelude::*;

fn main() {
    let adfg = mps_bench::fig2_analyzed();
    let patterns = PatternSet::parse("aabcc aaacc").unwrap();
    let result = schedule_multi_pattern(
        &adfg,
        &patterns,
        MultiPatternConfig {
            record_trace: true,
            ..Default::default()
        },
    )
    .expect("the paper's patterns cover all colors");

    println!("Table 2: scheduling procedure (3DFT, pattern1=aabcc, pattern2=aaacc)\n");
    let trace = result.trace.expect("trace requested");
    print!("{}", trace.render(&adfg, &patterns));
    println!("\nfinal schedule: {} clock cycles", result.schedule.len());
}
