//! Benchmark-characteristics table: the shape metrics of every workload
//! family in the evaluation, plus the DAG width (maximum antichain) that
//! bounds how many ALUs can ever help.
//!
//! ```text
//! cargo run --release -p mps-bench --bin workloads
//! ```

use mps::prelude::*;

fn main() {
    let names = [
        "fig2",
        "fig4",
        "dft3",
        "dft5",
        "fir16",
        "fir8-chain",
        "iir3",
        "dct8",
        "fft8",
        "conv3",
        "horner5",
        "matmul3",
        "lattice6",
        "cordic8",
        "cholesky4",
        "sobel4",
    ];

    let header: Vec<String> = [
        "workload", "nodes", "edges", "colors", "depth", "width", "max lvl", "avg par", "mobility",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();

    for name in names {
        let adfg = AnalyzedDfg::new(mps::workloads::by_name(name).unwrap());
        let s = mps::dfg::DfgStats::compute(adfg.dfg());
        let width = mps::patterns::width(&adfg);
        rows.push(vec![
            name.to_string(),
            s.nodes.to_string(),
            s.edges.to_string(),
            s.colors.to_string(),
            s.critical_path.to_string(),
            width.to_string(),
            s.max_level_width.to_string(),
            format!("{:.2}", s.avg_parallelism),
            format!("{:.2}", s.mean_mobility),
        ]);
    }

    println!("Workload characteristics:");
    println!("{}", mps_bench::render_table(&header, &rows));
    println!("depth = critical path (cycles); width = maximum antichain (Dilworth);");
    println!("max lvl = largest ASAP level population; avg par = nodes/depth;");
    println!("mobility = mean ALAP − ASAP slack per node.");
}
