//! Regenerate the paper's **Table 1**: ASAP level, ALAP level and Height of
//! every node of the 3DFT graph (Fig. 2).
//!
//! ```text
//! cargo run -p mps-bench --bin table1
//! ```

use mps::prelude::*;

fn main() {
    let adfg = mps_bench::fig2_analyzed();
    let g = adfg.dfg();
    let l = adfg.levels();

    // The paper lists the table in two side-by-side column groups; we print
    // one row per node in the paper's row order.
    let order = [
        ("b3", "b6"),
        ("b1", "b5"),
        ("a4", "a2"),
        ("a8", "a7"),
        ("c9", "c13"),
        ("c11", "c10"),
        ("a24", "a16"),
        ("a15", "a18"),
        ("a20", "a17"),
        ("a19", "a22"),
        ("a23", "a21"),
        ("c12", "c14"), // omitted from the paper's table; levels forced by Table 2
    ];

    let header: Vec<String> = [
        "node", "asap", "alap", "height", "node", "asap", "alap", "height",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for (left, right) in order {
        let mut row = Vec::new();
        for name in [left, right] {
            let n = g.find(name).expect("fig2 node");
            row.push(name.to_string());
            row.push(l.asap(n).to_string());
            row.push(l.alap(n).to_string());
            row.push(l.height(n).to_string());
        }
        rows.push(row);
    }
    println!("Table 1: ASAP level, ALAP level and Height (3DFT / Fig. 2)");
    println!("{}", mps_bench::render_table(&header, &rows));
    println!("ASAPmax = {}", l.asap_max());
    let _ = AnalyzedDfg::new(mps::workloads::fig4()); // keep prelude used
}
