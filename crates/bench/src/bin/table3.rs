//! Regenerate the paper's **Table 3**: clock cycles of the 3DFT under the
//! three hand-picked 4-pattern sets (the experiment that motivates pattern
//! selection — "the selection of patterns has a very strong influence on
//! the scheduling results!").
//!
//! ```text
//! cargo run -p mps-bench --bin table3
//! ```

use mps::prelude::*;

fn main() {
    let adfg = mps_bench::fig2_analyzed();
    let sets = [
        (
            "{a,b,c,b,c}, {b,b,b,a,b}, {b,b,b,c,b}, {b,a,b,a,a}",
            "abcbc bbbab bbbcb babaa",
            8,
        ),
        (
            "{a,b,c,b,c}, {b,c,b,c,a}, {c,b,a,b,a}, {b,b,c,c,b}",
            "abcbc bcbca cbaba bbccb",
            9,
        ),
        (
            "{a,b,c,c,c}, {a,a,b,a,c}, {c,c,c,a,a}, {a,b,a,b,b}",
            "abccc aabac cccaa ababb",
            7,
        ),
    ];

    let header: Vec<String> = ["patterns", "paper cycles", "measured cycles"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for (label, parse, paper) in sets {
        let ps = PatternSet::parse(parse).unwrap();
        let cycles = mps_bench::cycles_with(&adfg, &ps);
        rows.push(vec![
            label.to_string(),
            paper.to_string(),
            cycles.to_string(),
        ]);
    }
    println!("Table 3: number of clock cycles for the final scheduling (3DFT)");
    println!("{}", mps_bench::render_table(&header, &rows));
}
