//! Regenerate the paper's **Table 5**: the number of antichains of the
//! 3DFT satisfying each span limitation, by antichain size.
//!
//! The absolute counts depend on the exact Fig. 2 edge set (reconstructed,
//! see DESIGN.md); the *shape* — growth with size, reduction with a
//! tighter span limit, 24 singletons in every row — is the claim under
//! test.
//!
//! ```text
//! cargo run -p mps-bench --bin table5
//! ```

use mps::prelude::*;

fn main() {
    let adfg = mps_bench::fig2_analyzed();
    let hist = span_histogram(&adfg, 5, 4);
    println!("Table 5: antichains of the 3DFT satisfying the span limitation");
    print!("{hist}");

    println!("\npaper's counts for reference:");
    println!("  size:          1    2     3     4     5");
    println!("  Span(A)<=4    24  224  1034  2500  3104");
    println!("  Span(A)<=3    24  222  1010  2404  2954");
    println!("  Span(A)<=2    24  208   870  1926  2282");
    println!("  Span(A)<=1    24  178   632  1232  1364");
    println!("  Span(A)<=0    24  124   304   425   356");
}
