//! Quality ablation of the selection priority function — the experiment
//! the paper's conclusion calls for ("the proposed approach makes the
//! further improvement very simple: by just modifying the priority
//! function"). For each variant, schedule length in cycles on the
//! evaluation workloads (Pdef = 4, C = 5).
//!
//! ```text
//! cargo run --release -p mps-bench --bin ablation
//! ```

use mps::prelude::*;
use mps::scheduler::ScheduleError;

fn cycles(
    adfg: &AnalyzedDfg,
    patterns: &PatternSet,
    pp: PatternPriority,
) -> Result<usize, ScheduleError> {
    Ok(schedule_multi_pattern(
        adfg,
        patterns,
        MultiPatternConfig {
            pattern_priority: pp,
            ..Default::default()
        },
    )?
    .schedule
    .len())
}

fn fmt(r: Result<usize, ScheduleError>) -> String {
    match r {
        Ok(c) => c.to_string(),
        Err(_) => "FAIL".to_string(),
    }
}

fn main() {
    let workloads = ["fig2", "dft5", "fir16", "dct8", "iir4"];
    let header: Vec<String> = std::iter::once("variant".to_string())
        .chain(workloads.iter().map(|s| s.to_string()))
        .collect();
    let mut rows: Vec<Vec<String>> = Vec::new();

    let base = SelectConfig {
        pdef: 4,
        span_limit: Some(1),
        parallel: false,
        ..Default::default()
    };
    let variants: Vec<(&str, SelectConfig, PatternPriority)> = vec![
        ("full (Eq.8 + F2)", base, PatternPriority::F2),
        ("F1 pattern priority", base, PatternPriority::F1),
        (
            "no size bonus (α=0)",
            SelectConfig {
                size_bonus: false,
                ..base
            },
            PatternPriority::F2,
        ),
        (
            "no balancing",
            SelectConfig {
                balancing: false,
                ..base
            },
            PatternPriority::F2,
        ),
        (
            "no color condition",
            SelectConfig {
                color_condition: false,
                ..base
            },
            PatternPriority::F2,
        ),
        (
            "no span limit",
            SelectConfig {
                span_limit: None,
                ..base
            },
            PatternPriority::F2,
        ),
        (
            "span limit 0",
            SelectConfig {
                span_limit: Some(0),
                ..base
            },
            PatternPriority::F2,
        ),
    ];

    for (name, cfg, pp) in &variants {
        let mut row = vec![name.to_string()];
        for w in workloads {
            let adfg = AnalyzedDfg::new(mps::workloads::by_name(w).unwrap());
            let patterns = mps::select::select_patterns(&adfg, cfg).patterns;
            row.push(fmt(cycles(&adfg, &patterns, *pp)));
        }
        rows.push(row);
    }

    // Extension variants (paper's future work, implemented).
    let mut scarcity_row = vec!["scarcity-weighted (ext)".to_string()];
    let mut merge_row = vec!["Eq.8 + merge pass (ext)".to_string()];
    for w in workloads {
        let adfg = AnalyzedDfg::new(mps::workloads::by_name(w).unwrap());
        let scarce =
            mps::select::select_with_priority(&adfg, &base, mps::select::scarcity_priority);
        scarcity_row.push(fmt(cycles(&adfg, &scarce, PatternPriority::F2)));
        let plain = mps::select::select_patterns(&adfg, &base).patterns;
        let merged = mps::select::merge_pass(&adfg, &plain, &base, Default::default());
        merge_row.push(merged.cycles.to_string());
    }
    rows.push(scarcity_row);
    rows.push(merge_row);

    // Baseline selectors for reference.
    let mut greedy_row = vec!["greedy max-count".to_string()];
    let mut random_row = vec!["random (mean of 10)".to_string()];
    let mut uniform_row = vec!["uniform 5-ALU list sched".to_string()];
    for w in workloads {
        let adfg = AnalyzedDfg::new(mps::workloads::by_name(w).unwrap());
        let greedy = mps::select::coverage_greedy(&adfg, &base);
        greedy_row.push(fmt(cycles(&adfg, &greedy, PatternPriority::F2)));
        let rb = random_baseline(&adfg, 4, 5, 10, 99, MultiPatternConfig::default());
        random_row.push(format!("{:.1}", rb.mean()));
        uniform_row.push(
            mps::scheduler::classic::list_schedule_uniform(&adfg, 5)
                .len()
                .to_string(),
        );
    }
    rows.push(greedy_row);
    rows.push(random_row);
    rows.push(uniform_row);

    println!("Ablation: schedule length (cycles), Pdef=4, C=5");
    println!("{}", mps_bench::render_table(&header, &rows));
    println!("FAIL = selected patterns do not cover every color (scheduling impossible).");
    println!("'uniform 5-ALU list sched' ignores the pattern restriction entirely — the");
    println!("unreachable lower baseline for a pattern-constrained architecture.");
}
