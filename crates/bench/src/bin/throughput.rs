//! Enumeration/classification throughput snapshots — the numbers behind
//! the repo's `BENCH_*.json` perf trajectory — plus a pinned-count smoke
//! check for CI.
//!
//! ```text
//! throughput            human-readable table on stdout
//! throughput --json     machine-readable snapshot (scripts/bench_snapshot.sh)
//! throughput --smoke    fast semantic check: antichain counts on small
//!                       graphs must equal pinned values (exit 1 otherwise)
//! ```
//!
//! All timed sections run sequentially (`parallel: false`) so the
//! fast-vs-reference ratio is a per-core comparison; one parallel build is
//! timed separately to show the substrate's scaling on top.

use mps::prelude::*;
use std::time::{Duration, Instant};

/// Workloads measured by the snapshot: the paper's 3- and 5-point DFTs
/// plus a complexsig-built FFT butterfly one size up. (Larger FFTs scale
/// fine but make the seed-path baseline runs take minutes; `fft_radix2(16)`
/// already enumerates 675M antichains.)
fn workloads() -> Vec<(&'static str, AnalyzedDfg)> {
    vec![
        ("dft3", AnalyzedDfg::new(mps::workloads::dft3())),
        ("dft5", AnalyzedDfg::new(mps::workloads::dft5())),
        ("fft8", AnalyzedDfg::new(mps::workloads::fft_radix2(8))),
    ]
}

const SPAN_LIMITS: [Option<u32>; 4] = [Some(0), Some(1), Some(2), None];

/// Pinned antichain counts guarding the enumerator's semantics: if a perf
/// refactor changes any of these, the smoke check (run by CI and
/// scripts/smoke.sh) fails loudly. The skewed graphs cover both sides of
/// the parallel-work floor: `star16` (C(16,1..5) leaf sets + hub(+leaf)
/// sets + sink pair = 9403) and `broom64` (2·64 + 1) estimate *below* it,
/// so their forced-worker builds pin the sequential fallback, while
/// `star32` (= 284 275) estimates above it and keeps the depth-1 branch
/// splitter and warmed split scheduling exercised end to end on every
/// push.
const SMOKE_PINS: [(&str, Option<u32>, u64); 6] = [
    ("fig2", None, 9374),
    ("fig4", None, 8),
    ("dft5", Some(1), 32054),
    ("star16", None, 9403),
    ("star32", None, 284275),
    ("broom64", None, 129),
];

fn cfg(limit: Option<u32>) -> EnumerateConfig {
    EnumerateConfig {
        capacity: 5,
        span_limit: limit,
        parallel: false,
    }
}

/// [`time_per_iter`] repeated `n` times, keeping the fastest run — the
/// standard noise-robust estimator. Every committed ratio divides two of
/// these timings (fast vs reference, split vs root-granular — at 1 worker
/// *literally* identical code), so single-shot jitter would otherwise
/// dominate the ratios the snapshot exists to track.
fn time_best_of<R>(n: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let (mut best, mut result) = time_per_iter(&mut f);
    for _ in 1..n {
        let (sec, r) = time_per_iter(&mut f);
        if sec < best {
            best = sec;
        }
        result = r;
    }
    (best, result)
}

/// Time `f`, calibrating the iteration count to fill ~200 ms, and return
/// (seconds per iteration, the last result).
fn time_per_iter<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let target = Duration::from_millis(200);
    let start = Instant::now();
    let mut result = f();
    let once = start.elapsed();
    let iters = if once >= target {
        1
    } else {
        ((target.as_secs_f64() / once.as_secs_f64().max(1e-9)).ceil() as u64).clamp(1, 100_000)
    };
    let start = Instant::now();
    for _ in 0..iters {
        result = f();
    }
    (start.elapsed().as_secs_f64() / iters as f64, result)
}

struct Row {
    workload: &'static str,
    nodes: usize,
    span_limit: Option<u32>,
    antichains: u64,
    distinct_patterns: usize,
    enumerate_sec: f64,
    classify_sec: f64,
    classify_reference_sec: f64,
    classify_parallel_sec: f64,
}

impl Row {
    fn antichains_per_sec(&self) -> f64 {
        self.antichains as f64 / self.enumerate_sec
    }

    fn classify_antichains_per_sec(&self) -> f64 {
        self.antichains as f64 / self.classify_sec
    }

    fn speedup_vs_reference(&self) -> f64 {
        self.classify_reference_sec / self.classify_sec
    }
}

fn measure(workload: &'static str, adfg: &AnalyzedDfg, span_limit: Option<u32>) -> Row {
    let (enumerate_sec, antichains) = time_best_of(3, || {
        let mut count = 0u64;
        mps::patterns::for_each_antichain(adfg, cfg(span_limit), |_, _| count += 1);
        count
    });
    let (classify_sec, table) = time_best_of(3, || PatternTable::build(adfg, cfg(span_limit)));
    let (classify_reference_sec, reference) =
        time_best_of(3, || PatternTable::build_reference(adfg, cfg(span_limit)));
    let (classify_parallel_sec, _) = time_best_of(3, || {
        PatternTable::build(
            adfg,
            EnumerateConfig {
                parallel: true,
                ..cfg(span_limit)
            },
        )
    });
    assert_eq!(
        table.total_antichains(),
        antichains,
        "classification must account for every enumerated antichain"
    );
    assert_eq!(
        reference.total_antichains(),
        antichains,
        "reference path must agree with the enumeration"
    );
    Row {
        workload,
        nodes: adfg.len(),
        span_limit,
        antichains,
        distinct_patterns: table.len(),
        enumerate_sec,
        classify_sec,
        classify_reference_sec,
        classify_parallel_sec,
    }
}

/// One row of the selection-stage comparison: a cover-engine strategy vs
/// its in-tree `*_reference` oracle on the same prebuilt table, plus the
/// end-to-end enumerate→classify→select time through the fast engine.
struct SelectRow {
    workload: &'static str,
    strategy: &'static str,
    config: &'static str,
    capacity: usize,
    pdef: usize,
    patterns: usize,
    select_sec: f64,
    select_reference_sec: f64,
    end_to_end_sec: f64,
}

impl SelectRow {
    fn speedup_vs_reference(&self) -> f64 {
        self.select_reference_sec / self.select_sec
    }
}

/// The two selection-stage configurations measured per workload (both are
/// Table 7-style `Pdef` sweeps over one prebuilt table, the documented
/// reuse pattern):
///
/// * `montium` — the paper's 5-ALU tile. Its candidate tables are small
///   (dozens of patterns) and dense, which bounds what lazy rescoring can
///   skip: the engine's win here comes mostly from settling most
///   candidates with one cached-bound compare instead of a dense rescan.
/// * `wide8` — an 8-slot tile (the `MAX_PATTERN_SLOTS` headroom exists
///   exactly for wider simulated tiles), tripling the candidate pool.
///   This is where selection cost actually hurts — and where the cover
///   engine's asymptotics show.
const SELECT_CONFIGS: [(&str, usize, usize); 2] = [("montium", 5, 8), ("wide8", 8, 16)];

type SelectFn = fn(&AnalyzedDfg, &PatternTable, &SelectConfig) -> mps::select::SelectionOutcome;

fn measure_select() -> Vec<SelectRow> {
    use mps::select::{
        node_cover_from_table, node_cover_from_table_reference, select_from_table,
        select_from_table_reference,
    };
    let strategies: [(&'static str, SelectFn, SelectFn); 2] = [
        ("eq8", select_from_table, select_from_table_reference),
        (
            "node_cover",
            node_cover_from_table,
            node_cover_from_table_reference,
        ),
    ];
    let mut rows = Vec::new();
    for (workload, adfg) in workloads() {
        if workload == "dft3" {
            continue; // 37-pattern tables time pure call overhead
        }
        for (config, capacity, pdef) in SELECT_CONFIGS {
            let ecfg = EnumerateConfig {
                capacity,
                span_limit: None,
                parallel: false,
            };
            let table = PatternTable::build(&adfg, ecfg);
            let scfg = SelectConfig {
                pdef,
                capacity,
                span_limit: None,
                parallel: false,
                ..Default::default()
            };
            for (strategy, fast, reference) in strategies {
                let (select_sec, out) = time_best_of(3, || fast(&adfg, &table, &scfg));
                let (select_reference_sec, out_ref) =
                    time_best_of(3, || reference(&adfg, &table, &scfg));
                assert_eq!(
                    out, out_ref,
                    "{workload}/{config}/{strategy}: engine must match its reference"
                );
                let (end_to_end_sec, _) = time_best_of(2, || {
                    let t = PatternTable::build(&adfg, ecfg);
                    fast(&adfg, &t, &scfg)
                });
                rows.push(SelectRow {
                    workload,
                    strategy,
                    config,
                    capacity,
                    pdef,
                    patterns: table.len(),
                    select_sec,
                    select_reference_sec,
                    end_to_end_sec,
                });
            }
        }
    }
    rows
}

/// One cell of the skewed-tree scheduling comparison: the split parallel
/// build vs the one-root-per-unit baseline, same worker count.
struct SkewRow {
    workload: &'static str,
    nodes: usize,
    antichains: u64,
    workers: usize,
    split_sec: f64,
    root_granular_sec: f64,
}

impl SkewRow {
    fn speedup_vs_root_granular(&self) -> f64 {
        self.root_granular_sec / self.split_sec
    }
}

/// Skewed graphs for the scheduling comparison: a hub root owning a
/// combinatorially dominant share of the search volume (`star32`) and a
/// "1 moderately heavy + hundreds of trivial" root list (`broom512`).
fn skew_workloads() -> Vec<(&'static str, AnalyzedDfg)> {
    vec![
        ("star32", AnalyzedDfg::new(mps::workloads::star(32))),
        ("broom512", AnalyzedDfg::new(mps::workloads::broom(512))),
    ]
}

fn measure_skew() -> Vec<SkewRow> {
    let mut rows = Vec::new();
    for (workload, adfg) in skew_workloads() {
        // No 1-worker row: with a single worker the split and
        // root-granular paths execute literally identical code (nothing
        // splits, nothing spawns), so their ratio would only publish
        // measurement jitter. The comparison is defined from 2 workers up.
        for workers in [2usize, 4] {
            // The two sides are measured interleaved (split, granular,
            // split, …) and best-of-5: the row's point is their *ratio*,
            // so drift across the measurement window would otherwise read
            // as a phantom split win or loss.
            let (mut split_sec, mut root_granular_sec) = (f64::MAX, f64::MAX);
            let (mut table, mut granular) = (None, None);
            for _ in 0..5 {
                let (s, t) =
                    time_per_iter(|| PatternTable::build_with_workers(&adfg, cfg(None), workers));
                split_sec = split_sec.min(s);
                table = Some(t);
                let (g, t) =
                    time_per_iter(|| PatternTable::build_root_granular(&adfg, cfg(None), workers));
                root_granular_sec = root_granular_sec.min(g);
                granular = Some(t);
            }
            let (table, granular) = (table.expect("measured"), granular.expect("measured"));
            assert_eq!(
                table.total_antichains(),
                granular.total_antichains(),
                "split and root-granular builds must classify identically"
            );
            rows.push(SkewRow {
                workload,
                nodes: adfg.len(),
                antichains: table.total_antichains(),
                workers,
                split_sec,
                root_granular_sec,
            });
        }
    }
    rows
}

/// One row of the batch-compile scaling measure: the same fixed queue of
/// kernels served through [`mps::Session::compile_batch_in`] at a pinned
/// worker count, against the 1-worker sequential loop (identical code at
/// `workers == 1`, so that row documents parity, not a speedup).
struct BatchRow {
    workers: usize,
    graphs: usize,
    batch_sec: f64,
    sequential_sec: f64,
}

impl BatchRow {
    fn graphs_per_sec(&self) -> f64 {
        self.graphs as f64 / self.batch_sec
    }

    fn speedup_vs_sequential(&self) -> f64 {
        self.sequential_sec / self.batch_sec
    }
}

/// One row of the serving cold/warm comparison: a compile request driven
/// through a real `mps-serve` loopback server, first against an empty
/// artifact cache (`cold_sec`: full pipeline) and then repeated
/// (`warm_sec`: a cache hit answered from the sharded artifact map). The
/// ratio is the cache effect `BENCH_*.json` exists to record.
struct ServeRow {
    workload: &'static str,
    config: &'static str,
    capacity: usize,
    pdef: usize,
    cold_sec: f64,
    warm_sec: f64,
}

impl ServeRow {
    fn warm_speedup(&self) -> f64 {
        self.cold_sec / self.warm_sec
    }
}

/// Cold vs warm compile latency through the server, measured client-side
/// over a real loopback socket (wire + parse + cache/pipeline + reply —
/// the full serving path). One fresh server per row keeps cold honest;
/// the cold shot is single-sample by nature (the second identical
/// request is already warm), the warm side is best-of over repeats.
fn measure_serve() -> Vec<ServeRow> {
    use mps_serve::protocol::{Reply, Request};
    use mps_serve::{spawn_loopback, Client, ServeOptions};

    let mut rows = Vec::new();
    for workload in ["fig2", "dft5"] {
        for (config, capacity, pdef) in SELECT_CONFIGS {
            let (addr, server) =
                spawn_loopback(ServeOptions::default()).expect("bind loopback server");
            let mut client = Client::connect(addr, 100, Duration::from_millis(20))
                .expect("connect to loopback server");
            let req = Request {
                op: "compile".to_string(),
                workload: Some(workload.to_string()),
                pdef: Some(pdef),
                capacity: Some(capacity),
                ..Request::default()
            };
            let mut roundtrip = |expect_cached: bool| {
                let t0 = Instant::now();
                let reply = client.request(&req).expect("serve round trip");
                let sec = t0.elapsed().as_secs_f64();
                match reply {
                    Reply::Compile(r) => assert_eq!(
                        r.cached, expect_cached,
                        "{workload}/{config}: unexpected cache state"
                    ),
                    other => panic!("{workload}/{config}: unexpected reply {other:?}"),
                }
                sec
            };
            let cold_sec = roundtrip(false);
            let mut warm_sec = f64::INFINITY;
            for _ in 0..50 {
                warm_sec = warm_sec.min(roundtrip(true));
            }
            client.shutdown().expect("shutdown loopback server");
            server.join().expect("server thread exits");
            rows.push(ServeRow {
                workload,
                config,
                capacity,
                pdef,
                cold_sec,
                warm_sec,
            });
        }
    }
    rows
}

/// One row of the load-shedding comparison: eight clients storm a
/// deliberately tiny server (1 worker, queue of 2, an injected stage
/// delay standing in for heavy compiles). A shed is answered in
/// microseconds while an accepted compile pays the full queue+pipeline
/// latency — `shed_reply_sec` vs `accepted_sec` is the fast-fail margin
/// the admission queue buys, and `warm_unloaded_sec` anchors what the
/// same request costs once the storm has drained into the cache.
struct ShedRow {
    workload: &'static str,
    clients: usize,
    requests: u64,
    sheds: u64,
    shed_reply_sec: f64,
    accepted_sec: f64,
    warm_unloaded_sec: f64,
}

impl ShedRow {
    fn accepted_to_shed_ratio(&self) -> f64 {
        if self.shed_reply_sec > 0.0 {
            self.accepted_sec / self.shed_reply_sec
        } else {
            0.0
        }
    }
}

/// Storm a small loopback server until every client lands one accepted
/// compile, recording the best-observed shed and accepted latencies
/// client-side (wire included), then the warm unloaded repeat.
fn measure_shed() -> Vec<ShedRow> {
    use mps::Stage;
    use mps_serve::protocol::{Reply, Request};
    use mps_serve::{spawn_loopback, Client, FaultPlan, ServeOptions};

    const CLIENTS: usize = 8;
    const DELAY_MS: u64 = 20;
    let (addr, server) = spawn_loopback(ServeOptions {
        workers: 1,
        queue: 2,
        shards: 2,
        faults: FaultPlan {
            delay_stage: Some((Stage::Select, DELAY_MS)),
            ..FaultPlan::default()
        },
        ..Default::default()
    })
    .expect("bind loopback server");

    // Distinct workloads so the artifact cache cannot single-flight the
    // storm away: all eight must really compile through the one worker.
    let workloads = [
        "fig2", "fig4", "dft3", "fir8", "iir2", "dct8", "horner4", "matmul2",
    ];
    let barrier = std::sync::Barrier::new(CLIENTS);
    let samples: Vec<(f64, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut client = Client::connect(addr, 100, Duration::from_millis(20))
                        .expect("connect to loopback server");
                    let req = Request {
                        op: "compile".to_string(),
                        workload: Some(w.to_string()),
                        span: Some(Some(1)),
                        ..Request::default()
                    };
                    barrier.wait();
                    let mut shed_best = f64::INFINITY;
                    loop {
                        let t0 = Instant::now();
                        let reply = client.request(&req).expect("serve round trip");
                        let sec = t0.elapsed().as_secs_f64();
                        match reply {
                            Reply::Compile(_) => return (shed_best, sec),
                            Reply::Error(e) if e.code.as_deref() == Some("overloaded") => {
                                shed_best = shed_best.min(sec);
                                let hint = e.retry_after_ms.unwrap_or(5).clamp(1, 50);
                                std::thread::sleep(Duration::from_millis(hint));
                            }
                            other => panic!("{w}: unexpected reply under load: {other:?}"),
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shed client thread"))
            .collect()
    });

    let mut client =
        Client::connect(addr, 100, Duration::from_millis(20)).expect("connect to loopback server");
    let warm_req = Request {
        op: "compile".to_string(),
        workload: Some("fig2".to_string()),
        span: Some(Some(1)),
        ..Request::default()
    };
    let mut warm_unloaded_sec = f64::INFINITY;
    for _ in 0..20 {
        let t0 = Instant::now();
        match client.request(&warm_req).expect("warm round trip") {
            Reply::Compile(r) => assert!(r.cached, "storm left fig2 cached"),
            other => panic!("unexpected warm reply {other:?}"),
        }
        warm_unloaded_sec = warm_unloaded_sec.min(t0.elapsed().as_secs_f64());
    }
    let stats = client.stats().expect("stats");
    client.shutdown().expect("shutdown loopback server");
    server.join().expect("server thread exits");

    let shed_reply_sec = samples
        .iter()
        .map(|(s, _)| *s)
        .filter(|s| s.is_finite())
        .fold(f64::INFINITY, f64::min);
    let accepted_sec = samples
        .iter()
        .map(|(_, a)| *a)
        .fold(f64::INFINITY, f64::min);
    vec![ShedRow {
        workload: "mixed8",
        clients: CLIENTS,
        requests: stats.requests,
        sheds: stats.sheds,
        // A storm that somehow never shed (huge machine) reports 0.0
        // rather than poisoning the JSON with inf.
        shed_reply_sec: if shed_reply_sec.is_finite() {
            shed_reply_sec
        } else {
            0.0
        },
        accepted_sec,
        warm_unloaded_sec,
    }]
}

/// One row of the warm-start comparison: the same compile request
/// driven through a `--cache-dir` server twice — once against an empty
/// cache directory (`cold_sec`: full pipeline + persist), then again as
/// the *first* request of a freshly restarted server on the same
/// directory (`restart_warm_sec`: answered from the artifact loaded at
/// boot, zero table builds). The ratio is what persistence buys across
/// process restarts — the cross-restart analogue of `serve_rows`'
/// in-process cache effect.
struct WarmStartRow {
    workload: &'static str,
    cold_sec: f64,
    restart_warm_sec: f64,
    artifacts_loaded: u64,
}

impl WarmStartRow {
    fn restart_speedup(&self) -> f64 {
        self.cold_sec / self.restart_warm_sec
    }
}

/// Cold vs restarted-warm compile latency through a persistent-cache
/// server, measured client-side over loopback. Each row boots a server
/// on a fresh cache directory, compiles once (cold, persists), shuts it
/// down, boots a second server on the same directory and measures the
/// identical request (best-of over repeats — every one must be a cache
/// hit with zero table builds, or the warm start did not happen).
fn measure_warm_start() -> Vec<WarmStartRow> {
    use mps_serve::protocol::{Reply, Request};
    use mps_serve::{spawn_loopback, Client, ServeOptions};

    let mut rows = Vec::new();
    for workload in ["fig2", "star16"] {
        let dir = std::env::temp_dir().join(format!(
            "mps-bench-warm-start-{}-{workload}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = ServeOptions {
            cache_dir: Some(dir.clone()),
            ..ServeOptions::default()
        };
        let req = Request {
            op: "compile".to_string(),
            workload: Some(workload.to_string()),
            ..Request::default()
        };

        // Cold boot: empty directory, full pipeline, artifact persisted.
        let (addr, server) = spawn_loopback(opts.clone()).expect("bind loopback server");
        let mut client = Client::connect(addr, 100, Duration::from_millis(20))
            .expect("connect to loopback server");
        let t0 = Instant::now();
        match client.request(&req).expect("cold round trip") {
            Reply::Compile(r) => assert!(!r.cached, "{workload}: cold boot must compile"),
            other => panic!("{workload}: unexpected cold reply {other:?}"),
        }
        let cold_sec = t0.elapsed().as_secs_f64();
        client.shutdown().expect("shutdown cold server");
        server.join().expect("cold server thread exits");

        // Restart on the same directory: every request is a disk-warmed hit.
        let (addr, server) = spawn_loopback(opts).expect("bind restarted server");
        let mut client = Client::connect(addr, 100, Duration::from_millis(20))
            .expect("connect to restarted server");
        let mut restart_warm_sec = f64::INFINITY;
        for _ in 0..20 {
            let t0 = Instant::now();
            match client.request(&req).expect("warm round trip") {
                Reply::Compile(r) => {
                    assert!(r.cached, "{workload}: restart must answer from disk")
                }
                other => panic!("{workload}: unexpected warm reply {other:?}"),
            }
            restart_warm_sec = restart_warm_sec.min(t0.elapsed().as_secs_f64());
        }
        let stats = client.stats().expect("stats");
        assert_eq!(
            stats.table_builds, 0,
            "{workload}: a warm-started server must not rebuild tables"
        );
        assert!(
            stats.artifacts_loaded >= 1,
            "{workload}: restart loaded no artifacts"
        );
        client.shutdown().expect("shutdown restarted server");
        server.join().expect("restarted server thread exits");
        let _ = std::fs::remove_dir_all(&dir);

        rows.push(WarmStartRow {
            workload,
            cold_sec,
            restart_warm_sec,
            artifacts_loaded: stats.artifacts_loaded,
        });
    }
    rows
}

/// One row of the fleet routing comparison: the same request measured
/// through a real 2-daemon rendezvous ring, from the member that does
/// *not* own the key. `forwarded_hit_sec` pays one extra loopback hop
/// (non-owner → owner cache hit); `local_hit_sec` is the owner answering
/// directly (the hop's baseline); `failover_recompute_sec` is the
/// non-owner surviving a dead owner — dial failure plus a full local
/// compile, the price of the fault-tolerance path.
struct FleetRow {
    workload: &'static str,
    forwarded_hit_sec: f64,
    local_hit_sec: f64,
    failover_recompute_sec: f64,
}

impl FleetRow {
    fn forward_overhead(&self) -> f64 {
        self.forwarded_hit_sec / self.local_hit_sec
    }
}

/// Forwarded-hit vs local-hit vs failover-recompute latency through a
/// 2-member fleet on loopback, measured client-side. One fresh fleet per
/// row; the failover shot is single-sample by nature (the recompute
/// leaves a replica, so every repeat would be a warm local hit).
fn measure_fleet() -> Vec<FleetRow> {
    use mps_serve::protocol::{Reply, Request};
    use mps_serve::{spawn_on, Client, ServeOptions};
    use std::net::TcpListener;

    let mut rows = Vec::new();
    for workload in ["fig2", "dft5"] {
        let bound: Vec<(std::net::SocketAddr, TcpListener)> = (0..2)
            .map(|_| {
                let l = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
                (l.local_addr().expect("local addr"), l)
            })
            .collect();
        let members: Vec<std::net::SocketAddr> = bound.iter().map(|(a, _)| *a).collect();
        let handles: Vec<_> = bound
            .into_iter()
            .map(|(addr, listener)| {
                let opts = ServeOptions {
                    advertise: addr.to_string(),
                    peers: members
                        .iter()
                        .filter(|m| **m != addr)
                        .map(|m| m.to_string())
                        .collect(),
                    probe_interval_ms: 200,
                    forward_timeout_ms: 1_000,
                    ..ServeOptions::default()
                };
                spawn_on(listener, opts)
            })
            .collect();

        let req = Request {
            op: "compile".to_string(),
            workload: Some(workload.to_string()),
            span: Some(Some(1)),
            ..Request::default()
        };
        let connect = |addr: std::net::SocketAddr| {
            Client::connect(addr, 100, Duration::from_millis(20)).expect("connect to member")
        };

        // Which member owns this key? Measure from the other one.
        let owner: std::net::SocketAddr = {
            let mut ask = req.clone();
            ask.op = "peers".to_string();
            match connect(members[0]).request(&ask).expect("peers reply") {
                Reply::Peers(p) => p
                    .owner
                    .expect("compile-shaped peers request names an owner")
                    .parse()
                    .expect("owner is a socket address"),
                other => panic!("{workload}: unexpected peers reply {other:?}"),
            }
        };
        let non_owner = *members.iter().find(|m| **m != owner).expect("2 members");

        let roundtrip = |addr: std::net::SocketAddr, expect_cached: bool| {
            let mut client = connect(addr);
            let t0 = Instant::now();
            let reply = client.request(&req).expect("fleet round trip");
            let sec = t0.elapsed().as_secs_f64();
            match reply {
                Reply::Compile(r) => assert_eq!(
                    r.cached, expect_cached,
                    "{workload}: unexpected cache state"
                ),
                other => panic!("{workload}: unexpected reply {other:?}"),
            }
            sec
        };

        // Warm the owner through the ring, then measure the two hit paths.
        roundtrip(non_owner, false);
        let mut forwarded_hit_sec = f64::INFINITY;
        let mut local_hit_sec = f64::INFINITY;
        for _ in 0..50 {
            forwarded_hit_sec = forwarded_hit_sec.min(roundtrip(non_owner, true));
            local_hit_sec = local_hit_sec.min(roundtrip(owner, true));
        }

        // Kill the owner: the next request through the non-owner pays a
        // refused dial plus a full local compile.
        connect(owner).shutdown().expect("owner shutdown ack");
        let failover_recompute_sec = roundtrip(non_owner, false);
        let stats = connect(non_owner).stats().expect("stats");
        assert!(
            stats.peer_failovers >= 1,
            "{workload}: the dead owner must be survived by failover"
        );

        connect(non_owner)
            .shutdown()
            .expect("survivor shutdown ack");
        for handle in handles {
            handle.join().expect("member thread exits");
        }
        rows.push(FleetRow {
            workload,
            forwarded_hit_sec,
            local_hit_sec,
            failover_recompute_sec,
        });
    }
    rows
}

/// The batch queue: two copies each of eight mid-sized kernels — the
/// serving shape (many independent graphs) with enough per-item weight
/// (dct8 and dft5 classify hundreds of thousands of antichains at span 1)
/// that the fan-out has real work to amortize its thread spawn against,
/// and enough per-item variance that dynamic claiming matters.
fn batch_queue() -> Vec<mps::prelude::Dfg> {
    [
        "dft5", "dct8", "fir16", "matmul3", "fft8", "horner8", "cordic8", "fig2",
    ]
    .iter()
    .flat_map(|n| {
        let d = mps::workloads::by_name(n).expect("known workload");
        [d.clone(), d]
    })
    .collect()
}

fn measure_batch() -> Vec<BatchRow> {
    use mps::{CompileConfig, Session};
    let dfgs = batch_queue();
    let cfg = CompileConfig {
        select: SelectConfig {
            span_limit: Some(1),
            ..Default::default()
        },
        ..Default::default()
    };
    let (sequential_sec, baseline) = time_best_of(3, || Session::compile_batch_in(1, &dfgs, &cfg));
    let mut rows = Vec::new();
    for workers in [1usize, 2, 4] {
        let (batch_sec, results) =
            time_best_of(3, || Session::compile_batch_in(workers, &dfgs, &cfg));
        for (a, b) in results.iter().zip(&baseline) {
            let (a, b) = (a.as_ref().expect("compiles"), b.as_ref().expect("compiles"));
            assert_eq!(
                (&a.selection, a.cycles),
                (&b.selection, b.cycles),
                "batch decisions must not depend on the worker count"
            );
        }
        rows.push(BatchRow {
            workers,
            graphs: dfgs.len(),
            batch_sec,
            sequential_sec,
        });
    }
    rows
}

fn span_str(limit: Option<u32>) -> String {
    match limit {
        Some(l) => l.to_string(),
        None => "unlimited".to_string(),
    }
}

/// Every measured section, bundled so the printers take one argument
/// instead of a parameter per table.
/// One row of the fabric-partition section: a full fabric compile
/// (analyze → enumerate → select → partition → schedule → map_tile) of
/// one workload on one fabric spec, timed end to end. The 1-tile row is
/// the subsystem's equivalence oracle — its decisions are pinned against
/// the plain single-tile pipeline by the `integration_fabric` suite, so
/// here it serves as the baseline the multi-tile rows are compared to.
struct PartitionRow {
    workload: &'static str,
    fabric: &'static str,
    tiles: usize,
    transfers: usize,
    total_cycles: u64,
    critical_path: u32,
    compile_sec: f64,
    partition_sec: f64,
}

/// Fabric compiles across 1-, 2- and 4-tile fabrics, sequential, one
/// fresh session per timing iteration (the pattern table is rebuilt each
/// time, so rows are comparable across fabric specs).
fn measure_partition() -> Vec<PartitionRow> {
    let mut rows = Vec::new();
    for (workload, dfg) in [
        ("fig2", mps::workloads::fig2()),
        ("fft8", mps::workloads::fft_radix2(8)),
    ] {
        for fabric in ["1", "2@1", "4:3,16@2"] {
            let params = FabricParams::parse(fabric).expect("bench fabric spec parses");
            let capacity = params.min_alus();
            let make_cfg = || {
                let mut cfg = CompileConfig::default();
                cfg.select.parallel = false;
                cfg.select.span_limit = Some(1);
                cfg.select.capacity = capacity;
                cfg.fabric = Some(params.clone());
                cfg
            };
            let (compile_sec, (result, metrics)) = time_per_iter(|| {
                let mut session = Session::with_config(dfg.clone(), make_cfg());
                let result = session.compile().expect("fabric compile");
                (result, session.metrics().clone())
            });
            let mapping = result.fabric.expect("fabric compile carries a mapping");
            rows.push(PartitionRow {
                workload,
                fabric,
                tiles: mapping.tile_count(),
                transfers: mapping.transfer_count(),
                total_cycles: mapping.total_cycles,
                critical_path: mapping.critical_path,
                compile_sec,
                partition_sec: metrics.partition_sec,
            });
        }
    }
    rows
}

struct Sections {
    rows: Vec<Row>,
    select: Vec<SelectRow>,
    skew: Vec<SkewRow>,
    batch: Vec<BatchRow>,
    serve: Vec<ServeRow>,
    shed: Vec<ShedRow>,
    warm_start: Vec<WarmStartRow>,
    fleet: Vec<FleetRow>,
    partition: Vec<PartitionRow>,
}

fn print_json(s: &Sections, pr: u32) {
    let Sections {
        rows,
        select,
        skew,
        batch,
        serve,
        shed,
        warm_start,
        fleet,
        partition,
    } = s;
    println!("{{");
    println!("  \"pr\": {pr},");
    println!("  \"bench\": \"enumeration+classification throughput\",");
    println!("  \"binary\": \"throughput\",");
    println!("  \"units\": {{");
    println!("    \"antichains_per_sec\": \"for_each_antichain visits per second (sequential)\",");
    println!(
        "    \"classify_antichains_per_sec\": \"PatternTable::build antichains per second (sequential)\","
    );
    println!("    \"speedup_vs_reference\": \"classify_reference_sec / classify_sec, same core\"");
    println!("  }},");
    println!("  \"threads_available\": {},", mps::par::parallelism());
    println!(
        "  \"seed_baseline\": \"speedup_vs_reference compares against the in-tree \
         build_reference path, which already uses the PR 2 allocation-free enumerator; \
         the full seed path (git 43bed70) is slower still — see README § Performance \
         for the git-referenced measurement\","
    );
    println!("  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        println!(
            "    {{\"workload\": \"{}\", \"nodes\": {}, \"span_limit\": \"{}\", \
             \"antichains\": {}, \"distinct_patterns\": {}, \
             \"antichains_per_sec\": {:.0}, \"classify_sec\": {:.6}, \
             \"classify_antichains_per_sec\": {:.0}, \"classify_reference_sec\": {:.6}, \
             \"speedup_vs_reference\": {:.2}, \"classify_parallel_sec\": {:.6}}}{}",
            r.workload,
            r.nodes,
            span_str(r.span_limit),
            r.antichains,
            r.distinct_patterns,
            r.antichains_per_sec(),
            r.classify_sec,
            r.classify_antichains_per_sec(),
            r.classify_reference_sec,
            r.speedup_vs_reference(),
            r.classify_parallel_sec,
            comma
        );
    }
    println!("  ],");
    println!(
        "  \"select_note\": \"selection stage (Pdef-round greedy sweep over one prebuilt \
         table, sequential) through the CoverMatrix engines vs the in-tree *_reference \
         oracles (full-rescore dense scans); montium = 5-slot tile / Pdef 8, wide8 = \
         8-slot tile / Pdef 16 (3x the candidates — where selection cost bites); \
         end_to_end_sec = sequential enumerate→classify→select through the fast path\","
    );
    println!("  \"select_rows\": [");
    for (i, r) in select.iter().enumerate() {
        let comma = if i + 1 == select.len() { "" } else { "," };
        println!(
            "    {{\"workload\": \"{}\", \"strategy\": \"{}\", \"config\": \"{}\", \
             \"capacity\": {}, \"pdef\": {}, \"patterns\": {}, \"select_sec\": {:.9}, \
             \"select_reference_sec\": {:.9}, \"select_speedup_vs_reference\": {:.2}, \
             \"end_to_end_sec\": {:.6}}}{}",
            r.workload,
            r.strategy,
            r.config,
            r.capacity,
            r.pdef,
            r.patterns,
            r.select_sec,
            r.select_reference_sec,
            r.speedup_vs_reference(),
            r.end_to_end_sec,
            comma
        );
    }
    println!("  ],");
    println!(
        "  \"skew_note\": \"split (branch-split scheduling, PatternTable::build_with_workers) \
         vs root_granular (one root per work unit, the pre-split decomposition); worker counts \
         are forced per row, so speedups require the machine to really have that many cores — \
         compare workers to threads_available above\","
    );
    println!("  \"skew_rows\": [");
    for (i, r) in skew.iter().enumerate() {
        let comma = if i + 1 == skew.len() { "" } else { "," };
        println!(
            "    {{\"workload\": \"{}\", \"nodes\": {}, \"antichains\": {}, \"workers\": {}, \
             \"split_sec\": {:.6}, \"root_granular_sec\": {:.6}, \
             \"split_speedup_vs_root_granular\": {:.2}}}{}",
            r.workload,
            r.nodes,
            r.antichains,
            r.workers,
            r.split_sec,
            r.root_granular_sec,
            r.speedup_vs_root_granular(),
            comma
        );
    }
    println!("  ],");
    println!(
        "  \"batch_note\": \"Session::compile_batch_in over a fixed 16-kernel queue (full \
         compiles: analyze→enumerate span 1→Eq. 8 select→list schedule) at pinned worker \
         counts vs the 1-worker sequential loop; workers == 1 runs identical code, so that \
         row documents parity; speedups require real cores — compare workers to \
         threads_available above\","
    );
    println!("  \"batch_rows\": [");
    for (i, r) in batch.iter().enumerate() {
        let comma = if i + 1 == batch.len() { "" } else { "," };
        println!(
            "    {{\"workload\": \"queue16\", \"workers\": {}, \"graphs\": {}, \
             \"batch_sec\": {:.6}, \"sequential_sec\": {:.6}, \"graphs_per_sec\": {:.1}, \
             \"batch_speedup_vs_sequential\": {:.2}}}{}",
            r.workers,
            r.graphs,
            r.batch_sec,
            r.sequential_sec,
            r.graphs_per_sec(),
            r.speedup_vs_sequential(),
            comma
        );
    }
    println!("  ],");
    println!(
        "  \"serve_note\": \"one compile request driven through an mps-serve loopback TCP \
         server, measured client-side: cold_sec = first request (empty caches, full \
         pipeline, single shot by nature), warm_sec = best-of-50 repeat of the identical \
         request (artifact-cache hit); warm_speedup_vs_cold is the cache effect\","
    );
    println!("  \"serve_rows\": [");
    for (i, r) in serve.iter().enumerate() {
        let comma = if i + 1 == serve.len() { "" } else { "," };
        println!(
            "    {{\"workload\": \"{}\", \"config\": \"{}\", \"capacity\": {}, \"pdef\": {}, \
             \"cold_sec\": {:.6}, \"warm_sec\": {:.9}, \"warm_speedup_vs_cold\": {:.1}}}{}",
            r.workload,
            r.config,
            r.capacity,
            r.pdef,
            r.cold_sec,
            r.warm_sec,
            r.warm_speedup(),
            comma
        );
    }
    println!("  ],");
    println!(
        "  \"shed_note\": \"8 clients storm a 1-worker/queue-2 loopback server with a 20ms \
         injected stage delay until each lands one accepted compile: shed_reply_sec = \
         best-observed latency of a structured overloaded reply (the fast-fail the \
         admission queue buys), accepted_sec = best accepted compile under the storm, \
         warm_unloaded_sec = best-of-20 cache-hit repeat after the storm drains; sheds \
         and requests come from the server's own counters\","
    );
    println!("  \"shed_rows\": [");
    for (i, r) in shed.iter().enumerate() {
        let comma = if i + 1 == shed.len() { "" } else { "," };
        println!(
            "    {{\"workload\": \"{}\", \"clients\": {}, \"requests\": {}, \"sheds\": {}, \
             \"shed_reply_sec\": {:.9}, \"accepted_sec\": {:.6}, \
             \"warm_unloaded_sec\": {:.9}, \"accepted_to_shed_ratio\": {:.1}}}{}",
            r.workload,
            r.clients,
            r.requests,
            r.sheds,
            r.shed_reply_sec,
            r.accepted_sec,
            r.warm_unloaded_sec,
            r.accepted_to_shed_ratio(),
            comma
        );
    }
    println!("  ],");
    println!(
        "  \"warm_start_note\": \"one compile through a --cache-dir loopback server, then \
         the identical request as the first answer of a *restarted* server on the same \
         directory (best-of-20, every repeat must be a cache hit with table_builds == 0): \
         cold_sec = fresh-directory compile + persist, restart_warm_sec = disk-warmed \
         reply after a full process restart; restart_speedup_vs_cold is what the \
         persistent artifact tier buys across restarts\","
    );
    println!("  \"warm_start_rows\": [");
    for (i, r) in warm_start.iter().enumerate() {
        let comma = if i + 1 == warm_start.len() { "" } else { "," };
        println!(
            "    {{\"workload\": \"{}\", \"cold_sec\": {:.6}, \"restart_warm_sec\": {:.9}, \
             \"artifacts_loaded\": {}, \"restart_speedup_vs_cold\": {:.1}}}{}",
            r.workload,
            r.cold_sec,
            r.restart_warm_sec,
            r.artifacts_loaded,
            r.restart_speedup(),
            comma
        );
    }
    println!("  ],");
    println!(
        "  \"fleet_note\": \"one request through a 2-daemon rendezvous ring on loopback, \
         measured client-side from the key's *non-owner*: forwarded_hit_sec = best-of-50 \
         hop to the owner's artifact cache, local_hit_sec = best-of-50 asking the owner \
         directly (the hop's baseline; their ratio is the forward overhead), \
         failover_recompute_sec = single-shot survival of a killed owner (refused dial + \
         full local compile — the price of the fault-tolerance path)\","
    );
    println!("  \"fleet_rows\": [");
    for (i, r) in fleet.iter().enumerate() {
        let comma = if i + 1 == fleet.len() { "" } else { "," };
        println!(
            "    {{\"workload\": \"{}\", \"forwarded_hit_sec\": {:.9}, \
             \"local_hit_sec\": {:.9}, \"forward_overhead_vs_local\": {:.2}, \
             \"failover_recompute_sec\": {:.6}}}{}",
            r.workload,
            r.forwarded_hit_sec,
            r.local_hit_sec,
            r.forward_overhead(),
            r.failover_recompute_sec,
            comma
        );
    }
    println!("  ],");
    println!(
        "  \"partition_note\": \"one fabric compile (full pipeline incl. the partition \
         stage and per-tile replay) per row, sequential, span 1, fresh session every \
         iteration; fabric=1 is the single-tile equivalence baseline, the multi-tile rows \
         add graph cutting, release-aware per-tile scheduling and transfer accounting\","
    );
    println!("  \"partition_rows\": [");
    for (i, r) in partition.iter().enumerate() {
        let comma = if i + 1 == partition.len() { "" } else { "," };
        println!(
            "    {{\"workload\": \"{}\", \"fabric\": \"{}\", \"tiles\": {}, \
             \"transfers\": {}, \"total_cycles\": {}, \"critical_path\": {}, \
             \"compile_sec\": {:.6}, \"partition_sec\": {:.9}}}{}",
            r.workload,
            r.fabric,
            r.tiles,
            r.transfers,
            r.total_cycles,
            r.critical_path,
            r.compile_sec,
            r.partition_sec,
            comma
        );
    }
    println!("  ]");
    println!("}}");
}

fn print_table(s: &Sections) {
    let Sections {
        rows,
        select,
        skew,
        batch,
        serve,
        shed,
        warm_start,
        fleet,
        partition,
    } = s;
    println!(
        "{:<9} {:>5} {:>9} {:>11} {:>9} {:>14} {:>14} {:>9}",
        "workload", "nodes", "span", "antichains", "patterns", "enum/s", "classify/s", "speedup"
    );
    for r in rows {
        println!(
            "{:<9} {:>5} {:>9} {:>11} {:>9} {:>14.0} {:>14.0} {:>8.1}x",
            r.workload,
            r.nodes,
            span_str(r.span_limit),
            r.antichains,
            r.distinct_patterns,
            r.antichains_per_sec(),
            r.classify_antichains_per_sec(),
            r.speedup_vs_reference(),
        );
    }
    println!();
    println!(
        "{:<9} {:<11} {:<9} {:>5} {:>9} {:>12} {:>12} {:>9} {:>12}",
        "select",
        "strategy",
        "config",
        "pdef",
        "patterns",
        "select_sec",
        "ref_sec",
        "speedup",
        "e2e_sec"
    );
    for r in select {
        println!(
            "{:<9} {:<11} {:<9} {:>5} {:>9} {:>12.9} {:>12.9} {:>8.1}x {:>12.6}",
            r.workload,
            r.strategy,
            r.config,
            r.pdef,
            r.patterns,
            r.select_sec,
            r.select_reference_sec,
            r.speedup_vs_reference(),
            r.end_to_end_sec,
        );
    }
    println!();
    println!(
        "{:<10} {:>5} {:>11} {:>8} {:>12} {:>14} {:>9}",
        "skewed", "nodes", "antichains", "workers", "split_sec", "granular_sec", "speedup"
    );
    for r in skew {
        println!(
            "{:<10} {:>5} {:>11} {:>8} {:>12.6} {:>14.6} {:>8.2}x",
            r.workload,
            r.nodes,
            r.antichains,
            r.workers,
            r.split_sec,
            r.root_granular_sec,
            r.speedup_vs_root_granular(),
        );
    }
    println!();
    println!(
        "{:<10} {:>8} {:>7} {:>12} {:>16} {:>10} {:>9}",
        "batch", "workers", "graphs", "batch_sec", "sequential_sec", "graphs/s", "speedup"
    );
    for r in batch {
        println!(
            "{:<10} {:>8} {:>7} {:>12.6} {:>16.6} {:>10.1} {:>8.2}x",
            "queue16",
            r.workers,
            r.graphs,
            r.batch_sec,
            r.sequential_sec,
            r.graphs_per_sec(),
            r.speedup_vs_sequential(),
        );
    }
    println!();
    println!(
        "{:<10} {:<9} {:>9} {:>6} {:>12} {:>12} {:>9}",
        "serve", "config", "capacity", "pdef", "cold_sec", "warm_sec", "speedup"
    );
    for r in serve {
        println!(
            "{:<10} {:<9} {:>9} {:>6} {:>12.6} {:>12.9} {:>8.1}x",
            r.workload,
            r.config,
            r.capacity,
            r.pdef,
            r.cold_sec,
            r.warm_sec,
            r.warm_speedup(),
        );
    }
    println!();
    println!(
        "{:<10} {:>7} {:>8} {:>6} {:>14} {:>12} {:>14} {:>7}",
        "shed",
        "clients",
        "requests",
        "sheds",
        "shed_reply_sec",
        "accepted_sec",
        "warm_sec",
        "ratio"
    );
    for r in shed {
        println!(
            "{:<10} {:>7} {:>8} {:>6} {:>14.9} {:>12.6} {:>14.9} {:>6.1}x",
            r.workload,
            r.clients,
            r.requests,
            r.sheds,
            r.shed_reply_sec,
            r.accepted_sec,
            r.warm_unloaded_sec,
            r.accepted_to_shed_ratio(),
        );
    }
    println!();
    println!(
        "{:<10} {:>12} {:>18} {:>10} {:>9}",
        "warmstart", "cold_sec", "restart_warm_sec", "artifacts", "speedup"
    );
    for r in warm_start {
        println!(
            "{:<10} {:>12.6} {:>18.9} {:>10} {:>8.1}x",
            r.workload,
            r.cold_sec,
            r.restart_warm_sec,
            r.artifacts_loaded,
            r.restart_speedup(),
        );
    }
    println!();
    println!(
        "{:<10} {:>16} {:>14} {:>10} {:>16}",
        "fleet", "forwarded_hit", "local_hit", "overhead", "failover_sec"
    );
    for r in fleet {
        println!(
            "{:<10} {:>16.9} {:>14.9} {:>9.2}x {:>16.6}",
            r.workload,
            r.forwarded_hit_sec,
            r.local_hit_sec,
            r.forward_overhead(),
            r.failover_recompute_sec,
        );
    }
    println!();
    println!(
        "{:<10} {:<10} {:>6} {:>10} {:>8} {:>9} {:>12} {:>14}",
        "workload",
        "fabric",
        "tiles",
        "transfers",
        "cycles",
        "critpath",
        "compile_sec",
        "partition_sec"
    );
    for r in partition {
        println!(
            "{:<10} {:<10} {:>6} {:>10} {:>8} {:>9} {:>12.6} {:>14.9}",
            r.workload,
            r.fabric,
            r.tiles,
            r.transfers,
            r.total_cycles,
            r.critical_path,
            r.compile_sec,
            r.partition_sec,
        );
    }
}

fn smoke() -> i32 {
    let mut failures = 0;
    for (name, span_limit, expected) in SMOKE_PINS {
        let dfg = mps::workloads::by_name(name).expect("smoke workload exists");
        let adfg = AnalyzedDfg::new(dfg);
        let mut count = 0u64;
        mps::patterns::for_each_antichain(&adfg, cfg(span_limit), |_, _| count += 1);
        let table = PatternTable::build(&adfg, cfg(span_limit));
        // Force multi-worker scheduling so the depth-1 branch splitter and
        // the root-granular baseline both run (and agree) on every push,
        // even when CI lands on a single-core runner.
        let split = PatternTable::build_with_workers(&adfg, cfg(span_limit), 4);
        let granular = PatternTable::build_root_granular(&adfg, cfg(span_limit), 4);
        let status = if count == expected
            && table.total_antichains() == expected
            && split.total_antichains() == expected
            && granular.total_antichains() == expected
        {
            "ok"
        } else {
            failures += 1;
            "MISMATCH"
        };
        println!(
            "smoke {name} span={}: antichains={count} classified={} split={} granular={} \
             expected={expected} … {status}",
            span_str(span_limit),
            table.total_antichains(),
            split.total_antichains(),
            granular.total_antichains(),
        );
    }
    if failures > 0 {
        eprintln!("throughput --smoke: {failures} pinned count(s) changed — enumeration semantics drifted");
        1
    } else {
        println!("throughput --smoke: all pinned counts match");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    let json = args.iter().any(|a| a == "--json");
    // `--pr N`: which BENCH_<N>.json snapshot this run is labeled as
    // (bench_snapshot.sh passes its PR argument through).
    let pr = args
        .iter()
        .position(|a| a == "--pr")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let mut rows = Vec::new();
    for (name, adfg) in workloads() {
        for limit in SPAN_LIMITS {
            rows.push(measure(name, &adfg, limit));
        }
    }
    let sections = Sections {
        rows,
        select: measure_select(),
        skew: measure_skew(),
        batch: measure_batch(),
        serve: measure_serve(),
        shed: measure_shed(),
        warm_start: measure_warm_start(),
        fleet: measure_fleet(),
        partition: measure_partition(),
    };
    if json {
        print_json(&sections, pr);
    } else {
        print_table(&sections);
    }
}
