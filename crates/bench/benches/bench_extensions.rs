//! Performance of the extension machinery: beam search vs greedy
//! scheduling, switch-aware scheduling, annealing refinement, register
//! allocation, and tile replay — the costs a compiler pays for each
//! post-paper improvement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mps::prelude::*;
use mps::scheduler::{schedule_beam, schedule_switch_aware, BeamConfig, SwitchAwareConfig};
use mps::select::{anneal_patterns, AnnealConfig};

fn setup(name: &str) -> (AnalyzedDfg, PatternSet) {
    let adfg = AnalyzedDfg::new(mps::workloads::by_name(name).unwrap());
    let patterns = mps::select::select_patterns(
        &adfg,
        &mps::select::SelectConfig {
            pdef: 4,
            span_limit: Some(1),
            parallel: false,
            ..Default::default()
        },
    )
    .patterns;
    (adfg, patterns)
}

fn bench_beam_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions/beam_width");
    let (adfg, patterns) = setup("dct8");
    for width in [1usize, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &width| {
            b.iter(|| {
                schedule_beam(
                    &adfg,
                    &patterns,
                    BeamConfig {
                        width,
                        ..Default::default()
                    },
                )
                .unwrap()
                .schedule
                .len()
            })
        });
    }
    group.finish();
}

fn bench_switch_aware(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions/switch_aware");
    let (adfg, patterns) = setup("dft5");
    group.bench_function("greedy", |b| {
        b.iter(|| {
            schedule_multi_pattern(&adfg, &patterns, MultiPatternConfig::default())
                .unwrap()
                .schedule
                .len()
        })
    });
    group.bench_function("keep0.6", |b| {
        b.iter(|| {
            schedule_switch_aware(
                &adfg,
                &patterns,
                SwitchAwareConfig {
                    keep_factor: 0.6,
                    ..Default::default()
                },
            )
            .unwrap()
            .schedule
            .len()
        })
    });
    group.finish();
}

fn bench_anneal(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions/anneal_iters");
    group.sample_size(10);
    let (adfg, patterns) = setup("fig2");
    for iters in [50usize, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(iters), &iters, |b, &iters| {
            b.iter(|| {
                anneal_patterns(
                    &adfg,
                    &patterns,
                    &[],
                    AnnealConfig {
                        iterations: iters,
                        seed: 1,
                        ..Default::default()
                    },
                )
                .cycles
            })
        });
    }
    group.finish();
}

fn bench_regalloc_and_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions/backend");
    let (adfg, patterns) = setup("dct8");
    let schedule = schedule_multi_pattern(&adfg, &patterns, MultiPatternConfig::default())
        .unwrap()
        .schedule;
    group.bench_function("regalloc", |b| {
        b.iter(|| {
            mps::montium::allocate_registers(&adfg, &schedule, Default::default())
                .unwrap()
                .spills
        })
    });
    group.bench_function("replay", |b| {
        b.iter(|| {
            mps::montium::execute(
                &adfg,
                &schedule,
                &patterns,
                mps::montium::TileParams::default(),
            )
            .unwrap()
            .config_loads
        })
    });
    group.finish();
}

fn bench_modulo(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions/modulo");
    for name in ["fir8-chain", "lattice6", "dct8"] {
        let (adfg, eq8) = setup(name);
        group.bench_function(format!("{name}/eq8"), |b| {
            b.iter(|| {
                mps::scheduler::schedule_modulo(&adfg, &eq8, Default::default())
                    .unwrap()
                    .ii
            })
        });
        let tp = mps::select::select_for_throughput(&adfg, 5);
        group.bench_function(format!("{name}/tp"), |b| {
            b.iter(|| {
                mps::scheduler::schedule_modulo(&adfg, &tp, Default::default())
                    .unwrap()
                    .ii
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_beam_width,
    bench_switch_aware,
    bench_anneal,
    bench_regalloc_and_replay,
    bench_modulo
);
criterion_main!(benches);
