//! Performance of the multi-pattern list scheduler: scaling with graph
//! size, pattern count, and comparison against the classic baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mps::prelude::*;
use mps::workloads::{random_layered_dag, RandomDagConfig};

fn patterns_for(adfg: &AnalyzedDfg, pdef: usize) -> PatternSet {
    mps::select::select_patterns(
        adfg,
        &mps::select::SelectConfig {
            pdef,
            span_limit: Some(1),
            parallel: false,
            ..Default::default()
        },
    )
    .patterns
}

fn bench_graph_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling/graph_size");
    for layers in [5usize, 10, 20, 40] {
        let dfg = random_layered_dag(&RandomDagConfig {
            layers,
            width: (4, 8),
            seed: 3,
            ..Default::default()
        });
        let adfg = AnalyzedDfg::new(dfg);
        let patterns = patterns_for(&adfg, 4);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}nodes", adfg.len())),
            &(adfg, patterns),
            |b, (adfg, patterns)| {
                b.iter(|| {
                    schedule_multi_pattern(adfg, patterns, MultiPatternConfig::default())
                        .unwrap()
                        .schedule
                        .len()
                });
            },
        );
    }
    group.finish();
}

fn bench_pattern_count(c: &mut Criterion) {
    let dfg = random_layered_dag(&RandomDagConfig {
        layers: 10,
        width: (4, 8),
        seed: 5,
        ..Default::default()
    });
    let adfg = AnalyzedDfg::new(dfg);
    let mut group = c.benchmark_group("scheduling/pattern_count");
    for pdef in [1usize, 2, 4, 8, 16] {
        let patterns = patterns_for(&adfg, pdef);
        group.bench_with_input(
            BenchmarkId::from_parameter(patterns.len()),
            &patterns,
            |b, patterns| {
                b.iter(|| {
                    schedule_multi_pattern(&adfg, patterns, MultiPatternConfig::default())
                        .unwrap()
                        .schedule
                        .len()
                });
            },
        );
    }
    group.finish();
}

fn bench_vs_baselines(c: &mut Criterion) {
    let adfg = AnalyzedDfg::new(mps::workloads::dft5());
    let patterns = patterns_for(&adfg, 4);
    let mut group = c.benchmark_group("scheduling/vs_baselines");
    group.bench_function("multi_pattern", |b| {
        b.iter(|| {
            schedule_multi_pattern(&adfg, &patterns, MultiPatternConfig::default())
                .unwrap()
                .schedule
                .len()
        });
    });
    group.bench_function("uniform_list", |b| {
        b.iter(|| mps::scheduler::classic::list_schedule_uniform(&adfg, 5).len());
    });
    group.bench_function("asap", |b| {
        b.iter(|| mps::scheduler::classic::asap_schedule(&adfg).len());
    });
    group.bench_function("force_directed", |b| {
        b.iter(|| {
            mps::scheduler::force_directed::force_directed(&adfg, 10)
                .schedule
                .len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_graph_size,
    bench_pattern_count,
    bench_vs_baselines
);
criterion_main!(benches);
