//! Enumeration + classification throughput — the perf trajectory planted
//! by PR 2 (allocation-free enumerator + interned patterns).
//!
//! Measures, on the paper's DFT workload and a complexsig-built FFT:
//!
//! * `enumeration/*` — raw antichains/second of [`for_each_antichain`]
//!   across the Table 5 span limits (0, 1, 2, ∞);
//! * `classify/*` — [`PatternTable::build`] end to end (enumerate +
//!   interned classification), sequential so the comparison is per-core;
//! * `classify_reference/*` — the retained seed path
//!   [`PatternTable::build_reference`], same configs. The ratio
//!   `classify_reference / classify` is the speedup the PR claims
//!   (`scripts/bench_snapshot.sh` records it in `BENCH_2.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mps::prelude::*;

fn graphs() -> Vec<(&'static str, AnalyzedDfg)> {
    vec![
        ("dft5", AnalyzedDfg::new(mps::workloads::dft5())),
        ("fft8", AnalyzedDfg::new(mps::workloads::fft_radix2(8))),
    ]
}

const SPAN_LIMITS: [Option<u32>; 4] = [Some(0), Some(1), Some(2), None];

fn span_label(limit: Option<u32>) -> String {
    match limit {
        Some(l) => format!("span{l}"),
        None => "span_unlimited".to_string(),
    }
}

fn cfg(limit: Option<u32>) -> EnumerateConfig {
    EnumerateConfig {
        capacity: 5,
        span_limit: limit,
        parallel: false,
    }
}

fn bench_enumeration(c: &mut Criterion) {
    for (name, adfg) in graphs() {
        let mut group = c.benchmark_group(format!("enumeration/{name}"));
        for limit in SPAN_LIMITS {
            group.bench_with_input(
                BenchmarkId::from_parameter(span_label(limit)),
                &limit,
                |b, &limit| {
                    b.iter(|| {
                        let mut count = 0u64;
                        mps::patterns::for_each_antichain(&adfg, cfg(limit), |_, _| count += 1);
                        count
                    });
                },
            );
        }
        group.finish();
    }
}

fn bench_classification(c: &mut Criterion) {
    for (name, adfg) in graphs() {
        let mut group = c.benchmark_group(format!("classify/{name}"));
        for limit in SPAN_LIMITS {
            group.bench_with_input(
                BenchmarkId::from_parameter(span_label(limit)),
                &limit,
                |b, &limit| {
                    b.iter(|| PatternTable::build(&adfg, cfg(limit)).len());
                },
            );
        }
        group.finish();
    }
}

fn bench_classification_reference(c: &mut Criterion) {
    for (name, adfg) in graphs() {
        let mut group = c.benchmark_group(format!("classify_reference/{name}"));
        for limit in SPAN_LIMITS {
            group.bench_with_input(
                BenchmarkId::from_parameter(span_label(limit)),
                &limit,
                |b, &limit| {
                    b.iter(|| PatternTable::build_reference(&adfg, cfg(limit)).len());
                },
            );
        }
        group.finish();
    }
}

criterion_group!(
    benches,
    bench_enumeration,
    bench_classification,
    bench_classification_reference
);
criterion_main!(benches);
