//! Runtime cost of the priority-function ablations (quality is reported by
//! `cargo run -p mps-bench --bin ablation`): F1 vs F2 pattern priority,
//! size bonus and balancing toggles, and the span-limit sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mps::prelude::*;

fn bench_pattern_priority(c: &mut Criterion) {
    let adfg = AnalyzedDfg::new(mps::workloads::dft5());
    let patterns = mps::select::select_patterns(
        &adfg,
        &SelectConfig {
            pdef: 4,
            span_limit: Some(1),
            parallel: false,
            ..Default::default()
        },
    )
    .patterns;
    let mut group = c.benchmark_group("ablation/pattern_priority");
    for (name, pp) in [("F1", PatternPriority::F1), ("F2", PatternPriority::F2)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &pp, |b, &pp| {
            let cfg = MultiPatternConfig {
                pattern_priority: pp,
                ..Default::default()
            };
            b.iter(|| {
                schedule_multi_pattern(&adfg, &patterns, cfg)
                    .unwrap()
                    .schedule
                    .len()
            });
        });
    }
    group.finish();
}

fn bench_selection_toggles(c: &mut Criterion) {
    let adfg = AnalyzedDfg::new(mps::workloads::dft5());
    let mut group = c.benchmark_group("ablation/selection_toggles");
    group.sample_size(10);
    let variants: [(&str, SelectConfig); 4] = [
        ("full", SelectConfig::default()),
        (
            "no_size_bonus",
            SelectConfig {
                size_bonus: false,
                ..Default::default()
            },
        ),
        (
            "no_balancing",
            SelectConfig {
                balancing: false,
                ..Default::default()
            },
        ),
        (
            "greedy_count",
            SelectConfig::default(), // measured through coverage_greedy below
        ),
    ];
    for (name, cfg) in variants {
        let cfg = SelectConfig {
            span_limit: Some(2),
            parallel: false,
            ..cfg
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            if name == "greedy_count" {
                b.iter(|| mps::select::coverage_greedy(&adfg, cfg).len());
            } else {
                b.iter(|| mps::select::select_patterns(&adfg, cfg).patterns.len());
            }
        });
    }
    group.finish();
}

fn bench_span_sweep(c: &mut Criterion) {
    let adfg = AnalyzedDfg::new(mps::workloads::dft5());
    let mut group = c.benchmark_group("ablation/span_limit");
    group.sample_size(10);
    for limit in [0u32, 1, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(limit), &limit, |b, &limit| {
            let cfg = SelectConfig {
                pdef: 4,
                span_limit: Some(limit),
                parallel: false,
                ..Default::default()
            };
            b.iter(|| mps::select::select_patterns(&adfg, &cfg).patterns.len());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pattern_priority,
    bench_selection_toggles,
    bench_span_sweep
);
criterion_main!(benches);
