//! Skewed-tree parallel table builds: depth-1 branch splitting vs the
//! one-root-per-work-unit baseline.
//!
//! Groups:
//!
//! * `skew/<graph>/split/<workers>` — [`PatternTable::build_with_workers`]
//!   (the shipping path: heavy roots split into per-branch units,
//!   scheduled via `mps_par::par_fold_irregular`);
//! * `skew/<graph>/root_granular/<workers>` —
//!   [`PatternTable::build_root_granular`] (the pre-splitting
//!   decomposition, same enumerator and classifier).
//!
//! On `star<N>` the hub root owns a combinatorially dominant share of the
//! search volume, so with real cores the split path should win from 2
//! workers up; `broom<N>` stresses scheduling overhead (one moderately
//! heavy hub over hundreds of trivial roots). Worker counts are forced
//! explicitly, so the sweep is meaningful regardless of `MPS_THREADS` —
//! but wall-clock separation of course needs the machine to actually have
//! that many cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mps::prelude::*;

fn graphs() -> Vec<(&'static str, AnalyzedDfg)> {
    vec![
        ("star32", AnalyzedDfg::new(mps::workloads::star(32))),
        ("broom512", AnalyzedDfg::new(mps::workloads::broom(512))),
    ]
}

fn cfg() -> EnumerateConfig {
    EnumerateConfig {
        capacity: 5,
        span_limit: None,
        parallel: false, // worker counts are forced per measurement below
    }
}

fn bench_skew(c: &mut Criterion) {
    for (name, adfg) in graphs() {
        let mut group = c.benchmark_group(format!("skew/{name}"));
        for workers in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new("split", workers),
                &workers,
                |b, &workers| {
                    b.iter(|| PatternTable::build_with_workers(&adfg, cfg(), workers));
                },
            );
            group.bench_with_input(
                BenchmarkId::new("root_granular", workers),
                &workers,
                |b, &workers| {
                    b.iter(|| PatternTable::build_root_granular(&adfg, cfg(), workers));
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_skew);
criterion_main!(benches);
