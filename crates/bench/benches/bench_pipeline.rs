//! End-to-end pipeline performance (enumerate → classify → select →
//! schedule → replay) on the evaluation workloads — what a compiler
//! invocation costs per kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mps::prelude::*;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/end_to_end");
    group.sample_size(10);
    for name in ["fig2", "dft5", "fir16", "dct8", "matmul3", "iir4"] {
        let dfg = mps::workloads::by_name(name).expect("known workload");
        let adfg = AnalyzedDfg::new(dfg);
        group.bench_with_input(BenchmarkId::from_parameter(name), &adfg, |b, adfg| {
            let cfg = PipelineConfig {
                select: SelectConfig {
                    pdef: 4,
                    span_limit: Some(1),
                    parallel: false,
                    ..Default::default()
                },
                sched: MultiPatternConfig::default(),
            };
            b.iter(|| select_and_schedule(adfg, &cfg).unwrap().cycles);
        });
    }
    group.finish();
}

fn bench_with_replay(c: &mut Criterion) {
    let adfg = AnalyzedDfg::new(mps::workloads::fig2());
    let cfg = PipelineConfig {
        select: SelectConfig {
            pdef: 4,
            span_limit: Some(1),
            parallel: false,
            ..Default::default()
        },
        sched: MultiPatternConfig::default(),
    };
    let result = select_and_schedule(&adfg, &cfg).unwrap();
    c.bench_function("pipeline/montium_replay_fig2", |b| {
        b.iter(|| {
            mps::montium::execute(
                &adfg,
                &result.schedule,
                &result.selection.patterns,
                mps::montium::TileParams::default(),
            )
            .unwrap()
            .config_loads
        });
    });
}

fn bench_random_baseline(c: &mut Criterion) {
    let adfg = AnalyzedDfg::new(mps::workloads::fig2());
    let mut group = c.benchmark_group("pipeline/random_baseline");
    group.sample_size(10);
    for trials in [10usize, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(trials), &trials, |b, &t| {
            b.iter(|| random_baseline(&adfg, 4, 5, t, 1, MultiPatternConfig::default()).mean());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_end_to_end,
    bench_with_replay,
    bench_random_baseline
);
criterion_main!(benches);
