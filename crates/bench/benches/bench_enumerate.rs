//! Performance of span-limited antichain enumeration (the Table 5 axis):
//! how the span limitation controls the combinatorial cost, and how
//! enumeration scales with graph size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mps::prelude::*;
use mps::workloads::{random_layered_dag, RandomDagConfig};

fn bench_span_limits(c: &mut Criterion) {
    let adfg = AnalyzedDfg::new(mps::workloads::fig2());
    let mut group = c.benchmark_group("enumerate/fig2_span_limit");
    for limit in [0u32, 1, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(limit), &limit, |b, &limit| {
            let cfg = EnumerateConfig {
                capacity: 5,
                span_limit: Some(limit),
                parallel: false,
            };
            b.iter(|| {
                let mut count = 0u64;
                mps::patterns::for_each_antichain(&adfg, cfg, |_, _| count += 1);
                count
            });
        });
    }
    group.finish();
}

fn bench_graph_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate/random_dag_size");
    group.sample_size(10);
    for layers in [4usize, 6, 8] {
        let dfg = random_layered_dag(&RandomDagConfig {
            layers,
            width: (4, 6),
            seed: 7,
            ..Default::default()
        });
        let adfg = AnalyzedDfg::new(dfg);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}nodes", adfg.len())),
            &adfg,
            |b, adfg| {
                let cfg = EnumerateConfig {
                    capacity: 5,
                    span_limit: Some(1),
                    parallel: false,
                };
                b.iter(|| {
                    let mut count = 0u64;
                    mps::patterns::for_each_antichain(adfg, cfg, |_, _| count += 1);
                    count
                });
            },
        );
    }
    group.finish();
}

fn bench_parallel_vs_sequential(c: &mut Criterion) {
    let dfg = random_layered_dag(&RandomDagConfig {
        layers: 6,
        width: (6, 8),
        seed: 11,
        ..Default::default()
    });
    let adfg = AnalyzedDfg::new(dfg);
    let mut group = c.benchmark_group("enumerate/pattern_table");
    group.sample_size(10);
    for parallel in [false, true] {
        let label = if parallel { "parallel" } else { "sequential" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &parallel, |b, &p| {
            let cfg = EnumerateConfig {
                capacity: 5,
                span_limit: Some(2),
                parallel: p,
            };
            b.iter(|| PatternTable::build(&adfg, cfg).len());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_span_limits,
    bench_graph_size,
    bench_parallel_vs_sequential
);
criterion_main!(benches);
