//! Performance of the §5.2 selection algorithm: table construction vs the
//! greedy selection loop, and scaling in `Pdef`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mps::prelude::*;
use mps::select::SelectConfig;

fn bench_table_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection/table_build");
    for (name, dfg) in [
        ("fig2", mps::workloads::fig2()),
        ("dft5", mps::workloads::dft5()),
        ("dct8", mps::workloads::dct8()),
    ] {
        let adfg = AnalyzedDfg::new(dfg);
        group.bench_with_input(BenchmarkId::from_parameter(name), &adfg, |b, adfg| {
            let cfg = EnumerateConfig {
                capacity: 5,
                span_limit: Some(1),
                parallel: false,
            };
            b.iter(|| PatternTable::build(adfg, cfg).len());
        });
    }
    group.finish();
}

fn bench_selection_loop(c: &mut Criterion) {
    let adfg = AnalyzedDfg::new(mps::workloads::dft5());
    let table = PatternTable::build(
        &adfg,
        EnumerateConfig {
            capacity: 5,
            span_limit: Some(2),
            parallel: false,
        },
    );
    let mut group = c.benchmark_group("selection/greedy_loop");
    for pdef in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(pdef), &pdef, |b, &pdef| {
            let cfg = SelectConfig {
                pdef,
                span_limit: Some(2),
                parallel: false,
                ..Default::default()
            };
            b.iter(|| mps::select::select_patterns(&adfg, &cfg).patterns.len());
        });
    }
    // The loop alone, reusing the table (what Table 7 amortizes).
    group.bench_function("loop_only_pdef4", |b| {
        let cfg = SelectConfig {
            pdef: 4,
            span_limit: Some(2),
            parallel: false,
            ..Default::default()
        };
        b.iter(|| {
            mps::select::select_from_table(&adfg, &table, &cfg)
                .patterns
                .len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_table_build, bench_selection_loop);
criterion_main!(benches);
