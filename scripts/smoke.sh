#!/usr/bin/env bash
# End-to-end smoke test: drives the built `mps` CLI through the pipeline
# the paper describes, plus one table-regeneration binary. Fails on the
# first nonzero exit. CI runs this after the release build; run it
# locally with:  cargo build --release && scripts/smoke.sh
set -euo pipefail

BIN_DIR="${BIN_DIR:-target/release}"

run() {
    echo "== $*"
    "$@" > /dev/null
}

if [[ ! -x "$BIN_DIR/mps" ]]; then
    echo "error: $BIN_DIR/mps not built (run: cargo build --release --workspace)" >&2
    exit 1
fi

# Workload catalogue and graph statistics.
run "$BIN_DIR/mps" list
run "$BIN_DIR/mps" info fig2

# Skewed stress graphs (pinned counts checked below by `throughput
# --smoke`): star16/broom64 estimate below the parallel-work floor and pin
# the sequential fallback, star32 estimates above it and drives the
# depth-1 branch splitter + warmed split scheduling.
run "$BIN_DIR/mps" info star16
run "$BIN_DIR/mps" info star32
run "$BIN_DIR/mps" info broom64

# The paper's selection algorithm on the 5-point DFT with Pdef = 4.
run "$BIN_DIR/mps" select dft5 --pdef 4

# Full pipeline (select + schedule + pipelining analysis) on a 16-tap FIR.
run "$BIN_DIR/mps" pipeline fir16

# One table binary: Table 1 reprints Fig. 2's ASAP/ALAP/height levels.
run "$BIN_DIR/table1"

# Enumeration semantics guard: antichain counts on small graphs must match
# the values pinned in the throughput binary, so perf refactors of the
# enumerator/classifier cannot silently change what is being counted.
run "$BIN_DIR/throughput" --smoke

echo "smoke: all commands exited 0"
