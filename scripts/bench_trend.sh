#!/usr/bin/env bash
# Trend-diff two `throughput --json` snapshots (as produced by
# scripts/bench_snapshot.sh and uploaded by CI as bench-snapshot.json):
# compare every timing row present in both files and emit a GitHub Actions
# `::warning::` annotation for each metric that regressed by more than the
# threshold (default 20%) — end-to-end rows, the selection-stage rows
# (engine and reference sides), and the batch-compile rows alike.
#
# Usage:  scripts/bench_trend.sh PREV.json CURR.json [THRESHOLD_PCT]
#
# Always exits 0 — runner timings are noisy, so the diff annotates the job
# for a human eye instead of gating the build. A missing/unreadable
# previous snapshot is reported and skipped.
set -euo pipefail

PREV="${1:?usage: bench_trend.sh PREV.json CURR.json [THRESHOLD_PCT]}"
CURR="${2:?usage: bench_trend.sh PREV.json CURR.json [THRESHOLD_PCT]}"
PCT="${3:-20}"

if ! command -v jq > /dev/null; then
    echo "bench_trend: jq not available, skipping trend diff"
    exit 0
fi
if [[ ! -r "$PREV" ]] || ! jq -e . "$PREV" > /dev/null 2>&1; then
    echo "bench_trend: no previous snapshot to diff against ($PREV), skipping"
    exit 0
fi
if [[ ! -r "$CURR" ]] || ! jq -e . "$CURR" > /dev/null 2>&1; then
    echo "bench_trend: current snapshot missing or unparseable ($CURR), skipping"
    exit 0
fi

# One "key<TAB>seconds" line per timing metric. Keys carry every row
# discriminator so additions/removals of rows simply don't pair up.
extract() {
    jq -r '
        [
          (.rows[]? | {
              key: "classify/\(.workload)/span=\(.span_limit)",
              sec: .classify_sec
          }),
          (.rows[]? | {
              key: "classify_parallel/\(.workload)/span=\(.span_limit)",
              sec: .classify_parallel_sec
          }),
          (.select_rows[]? | {
              key: "select/\(.workload)/\(.strategy)/\(.config // "default")",
              sec: .select_sec
          }),
          (.select_rows[]? | {
              key: "end_to_end/\(.workload)/\(.strategy)/\(.config // "default")",
              sec: .end_to_end_sec
          }),
          (.skew_rows[]? | {
              key: "skew_split/\(.workload)/workers=\(.workers)",
              sec: .split_sec
          }),
          (.select_rows[]? | {
              key: "select_reference/\(.workload)/\(.strategy)/\(.config // "default")",
              sec: .select_reference_sec
          }),
          (.batch_rows[]? | {
              key: "batch/\(.workload)/workers=\(.workers)",
              sec: .batch_sec
          }),
          # sequential_sec is one measurement repeated on every batch row,
          # so extract it from the first row only (one comparison, one
          # possible warning — not one per worker count).
          ((.batch_rows // [])[0:1][] | {
              key: "batch_sequential/\(.workload)",
              sec: .sequential_sec
          }),
          (.serve_rows[]? | {
              key: "serve_cold/\(.workload)/\(.config // "default")",
              sec: .cold_sec
          }),
          (.serve_rows[]? | {
              key: "serve_warm/\(.workload)/\(.config // "default")",
              sec: .warm_sec
          }),
          # shed_reply_sec can legitimately be 0.0 (no shed observed on a
          # huge runner); the awk pass already skips p <= 0 pairs.
          (.shed_rows[]? | {
              key: "shed_reply/\(.workload)/clients=\(.clients)",
              sec: .shed_reply_sec
          }),
          (.shed_rows[]? | {
              key: "shed_accepted/\(.workload)/clients=\(.clients)",
              sec: .accepted_sec
          }),
          (.shed_rows[]? | {
              key: "shed_warm_unloaded/\(.workload)/clients=\(.clients)",
              sec: .warm_unloaded_sec
          }),
          (.warm_start_rows[]? | {
              key: "warm_start_cold/\(.workload)",
              sec: .cold_sec
          }),
          (.warm_start_rows[]? | {
              key: "warm_start_restart/\(.workload)",
              sec: .restart_warm_sec
          }),
          (.fleet_rows[]? | {
              key: "fleet_forwarded_hit/\(.workload)",
              sec: .forwarded_hit_sec
          }),
          (.fleet_rows[]? | {
              key: "fleet_local_hit/\(.workload)",
              sec: .local_hit_sec
          }),
          (.fleet_rows[]? | {
              key: "fleet_failover_recompute/\(.workload)",
              sec: .failover_recompute_sec
          }),
          (.partition_rows[]? | {
              key: "partition_compile/\(.workload)/fabric=\(.fabric)",
              sec: .compile_sec
          }),
          (.partition_rows[]? | {
              key: "partition_stage/\(.workload)/fabric=\(.fabric)",
              sec: .partition_sec
          })
        ]
        | .[] | select(.sec != null) | "\(.key)\t\(.sec)"
    ' "$1"
}

# Extract each snapshot once and join on the key in a single awk pass;
# regressed iff curr > prev * (1 + PCT/100), float math kept in awk.
prev_tsv="$(mktemp)"
curr_tsv="$(mktemp)"
trap 'rm -f "$prev_tsv" "$curr_tsv"' EXIT
extract "$PREV" > "$prev_tsv"
extract "$CURR" > "$curr_tsv"

awk -F'\t' -v t="$PCT" '
    NR == FNR { prev[$1] = $2; next }
    $1 in prev {
        p = prev[$1] + 0
        c = $2 + 0
        # A 0.0 baseline cannot anchor a percentage: skip the comparison
        # but say so, instead of silently pretending the metric was
        # checked (a snapshot full of zeros used to "pass" every diff).
        if (p <= 0) {
            skipped++
            printf "bench_trend: note: %s skipped (zero-second baseline %s)\n", $1, prev[$1]
            next
        }
        compared++
        if (c > p * (1 + t / 100)) {
            regressions++
            printf "::warning title=bench regression::%s: %ss -> %ss (+%.0f%%)\n", \
                $1, prev[$1], $2, (c / p - 1) * 100
        }
    }
    END {
        printf "bench_trend: compared %d metric(s), %d over the %s%% threshold, %d skipped on zero baselines\n", \
            compared, regressions, t, skipped + 0
    }
' "$prev_tsv" "$curr_tsv"
exit 0
