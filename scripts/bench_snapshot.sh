#!/usr/bin/env bash
# Regenerate the repo's perf-trajectory snapshot: builds the release
# `throughput` binary and writes its JSON report to BENCH_<PR>.json at the
# repo root. Run on an otherwise idle machine; takes a couple of minutes
# (the seed-style reference path is measured too, and it is ~5× slower).
#
# Usage:  scripts/bench_snapshot.sh [PR_NUMBER]     (default: 2)
set -euo pipefail
cd "$(dirname "$0")/.."

PR="${1:-2}"
OUT="BENCH_${PR}.json"

cargo build --release -p mps-bench --bin throughput
./target/release/throughput --smoke
./target/release/throughput --json --pr "$PR" > "$OUT"
echo "wrote $OUT" >&2
